"""Fig. 2 — unfairness of two-app combos + DRAM bandwidth decomposition."""

from repro.harness.experiments import fig2_unfairness
from repro.harness.persist import save_result
from repro.harness.report import render_fig2


def test_fig2_unfairness_and_bandwidth(once, store_record):
    res = once(fig2_unfairness)
    save_result("fig2_unfairness", res)
    store_record("fig2", res.to_dict(), pairs=res.combos)
    print()
    print(render_fig2(res))

    # Shape assertions against the paper's motivation claims:
    # 1. pairing SD with a bandwidth hog is severely unfair (paper: 2.51).
    assert res.unfairness["SD+SB"] > 1.8
    # 2. the SD slowdown exceeds the partner's in the unfair combos.
    sd, partner = res.slowdowns["SD+SB"]
    assert sd > partner
    # 3. SD's shared-run bandwidth share collapses relative to running alone
    #    (paper: 13% shared vs 40.5% alone).
    assert res.breakdown["SD+SB"]["SD"] < res.sd_alone_bw * 0.6
    # 4. decompositions are proper fractions.
    for bd in res.breakdown.values():
        assert abs(sum(bd.values()) - 1.0) < 1e-6
