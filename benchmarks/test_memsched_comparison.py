"""Related-work comparison: FR-FCFS vs application-aware round-robin memory
scheduling (Jog et al. [11], discussed in the paper's §2.2/§3.1).

The paper argues memory-side fairness alone "does not fully address the
fairness problem" — SM allocation (DASE-Fair) is still needed.  This bench
quantifies that: RR narrows the bandwidth starvation but leaves most of the
slowdown gap that SM repartitioning addresses.
"""

from repro.harness import run_workload, scaled_config
from repro.harness.persist import save_result
from repro.harness.report import table

PAIRS = [("SD", "SB"), ("CT", "SB")]


def run_comparison():
    out = {}
    for sched in ("frfcfs", "rr"):
        cfg = scaled_config(mc_scheduler=sched)
        rows = {}
        for pair in PAIRS:
            res = run_workload(list(pair), config=cfg, models=())
            rows["+".join(pair)] = (
                res.actual_unfairness,
                res.actual_hspeedup,
            )
        out[sched] = rows
    return out


def test_memory_scheduler_comparison(once):
    res = once(run_comparison)
    save_result("memsched_comparison", res)
    rows = []
    for key in res["frfcfs"]:
        u_fr, h_fr = res["frfcfs"][key]
        u_rr, h_rr = res["rr"][key]
        rows.append([key, f"{u_fr:.2f}", f"{u_rr:.2f}",
                     f"{h_fr:.3f}", f"{h_rr:.3f}"])
    print()
    print(table(
        ["workload", "unf FR-FCFS", "unf app-RR", "hsp FR-FCFS", "hsp app-RR"],
        rows,
    ))
    # Memory-side fairness helps the starved victim on average ...
    mean_fr = sum(res["frfcfs"][k][0] for k in res["frfcfs"]) / len(PAIRS)
    mean_rr = sum(res["rr"][k][0] for k in res["rr"]) / len(PAIRS)
    assert mean_rr < mean_fr * 1.05
    # ... but does not reach fairness by itself (the paper's argument for
    # SM-allocation-level control).
    assert mean_rr > 1.2
