"""Table 1 — DASE hardware cost (<0.625% of a 64 KB L2 slice at N=4)."""

from repro.config import GPUConfig
from repro.harness.report import table
from repro.hwcost import dase_hardware_cost, table1_rows


def test_table1_hardware_cost(once):
    cfg = GPUConfig()
    cost = once(dase_hardware_cost, cfg, 4)
    print()
    print("Table 1 — major hardware cost for DASE:")
    print(table(["component", "cost"], table1_rows(cfg, 4)))
    print(f"\nPer memory partition (N=4): {cost.per_partition_bytes:.0f} B"
          f" = {100 * cost.fraction_of_l2():.3f}% of a 64 KB L2 slice"
          " (paper: < 0.625%)")
    # Paper's claim: less than 0.4 KB per partition, under 0.625% of 64 KB.
    assert cost.per_partition_bytes < 0.4 * 1024
    assert cost.fraction_of_l2() < 0.00625
    assert cost.per_sm_bits == 32
