"""Fig. 6 — estimation accuracy across four-application workloads.

Paper: DASE 11.4%, MISE 62.6%, ASM 58%.  Key shape: the CPU baselines get
*worse* going from two to four applications (the missing all-SM scaling is
now a 4× factor), while DASE degrades only mildly.
"""

from repro.harness.experiments import fig6_four_app_accuracy
from repro.harness.persist import save_result
from repro.harness.report import render_accuracy


def test_fig6_four_app_estimation_accuracy(once):
    res = once(fig6_four_app_accuracy)
    save_result("fig6_four_app_error", {
        "per_workload": res.per_workload,
        "means": {m: res.mean_error(m) for m in res.errors},
    })
    print()
    print(render_accuracy(res, "Fig 6 — four-application estimation error"))
    dase = res.mean_error("DASE")
    mise = res.mean_error("MISE")
    asm = res.mean_error("ASM")
    print(f"\npaper: DASE 11.4%  MISE 62.6%  ASM 58%")
    assert dase < 0.25, f"DASE error {dase:.1%} exceeds 25%"
    assert dase < mise / 2
    assert dase < asm / 2
    # Four-way sharing hides a 4× alone-speedup from the CPU models.
    assert mise > 0.4
