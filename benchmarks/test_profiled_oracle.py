"""DASE-Fair vs the profile-based oracle (Aguilera et al. [3, 4]).

The paper's §7 argues profile-based policies are impractical (they need
isolated per-kernel profiles, impossible for data-dependent kernels).  In
simulation we *can* build the oracle, so this bench measures how much of
its fairness benefit DASE-Fair captures with zero profiling.
"""

from repro.harness import run_workload, scaled_config
from repro.harness.persist import save_result
from repro.harness.report import table
from repro.policies import DASEFairPolicy, ProfiledFairPolicy, profile_kernel
from repro.workloads import SUITE

PAIRS = [("SD", "SB"), ("QR", "SB")]


def run_comparison():
    config = scaled_config()
    sm_counts = [4, 8, 12, 16]
    profiles = {}

    def get_profile(name, stream_id):
        key = (name, stream_id)
        if key not in profiles:
            profiles[key] = profile_kernel(
                SUITE[name], config, sm_counts=sm_counts, cycles=30_000,
                stream_id=stream_id,
            )
        return profiles[key]

    out = {}
    for pair in PAIRS:
        key = "+".join(pair)
        even = run_workload(list(pair), config=config, models=())
        fair = run_workload(
            list(pair), config=config, models=(),
            policy=DASEFairPolicy(config),
        )
        oracle_policy = ProfiledFairPolicy(
            config, [get_profile(n, i) for i, n in enumerate(pair)]
        )
        oracle = run_workload(
            list(pair), config=config, models=(), policy=oracle_policy
        )
        out[key] = {
            "even": even.actual_unfairness,
            "dase-fair": fair.actual_unfairness,
            "oracle": oracle.actual_unfairness,
        }
    return out


def test_dase_fair_vs_profiled_oracle(once):
    res = once(run_comparison)
    save_result("profiled_oracle", res)
    rows = [
        [k, f"{v['even']:.2f}", f"{v['dase-fair']:.2f}", f"{v['oracle']:.2f}"]
        for k, v in res.items()
    ]
    print()
    print(table(["workload", "even", "DASE-Fair", "profiled oracle"], rows))
    mean = lambda key: sum(v[key] for v in res.values()) / len(res)
    # DASE-Fair must recover most of the oracle's improvement without any
    # profiling.  (The oracle is not strictly optimal: profiles cannot see
    # memory interference, so DASE-Fair may even beat it.)
    assert mean("dase-fair") <= mean("even") + 0.02
    assert mean("dase-fair") <= mean("oracle") * 1.25
