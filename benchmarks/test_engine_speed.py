"""Simulator throughput micro-benchmarks (DESIGN.md §5: the event-driven
design is what makes pure-Python figure sweeps tractable).

Unlike the experiment benchmarks these use normal pytest-benchmark rounds,
since they are genuine micro-benchmarks.

The per-component benchmarks (engine dispatch, SM burst loop, DRAM
dispatch, pair workload) share their workloads with
:mod:`benchmarks.bench_sim`; running this module also writes the
``BENCH_sim.json`` artifact so the perf trajectory is tracked across PRs
(CI's perf-smoke job runs ``bench_sim.py`` directly and gates on the
committed ``benchmarks/BENCH_baseline.json``).
"""

import json
import pathlib
import sys
import time

import pytest

from repro import GPU
from repro.harness import scaled_config
from repro.harness.experiments import DEFAULT_PAIRS, estimation_accuracy
from repro.workloads import SUITE

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import bench_sim  # noqa: E402  (sibling module, not a package)

#: name → best-observed seconds, filled by the component benchmarks below.
_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_artifact():
    """After the module's benchmarks ran, dump ``BENCH_sim.json``."""
    yield
    if not _RESULTS:
        return
    cal = bench_sim.calibrate()
    payload = {
        "schema": 1,
        "calibration_seconds": cal,
        "benches": {
            name: {"seconds": s, "normalized": s / cal}
            for name, s in sorted(_RESULTS.items())
        },
    }
    out = pathlib.Path("BENCH_sim.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _component(benchmark, name):
    """Benchmark one bench_sim component and record its best time."""
    fn = bench_sim.BENCHES[name]
    fn()  # warm-up outside the measured rounds
    result = benchmark.pedantic(fn, rounds=3, iterations=1)
    _RESULTS[name] = min(benchmark.stats.stats.data)
    return result


def test_engine_event_throughput(benchmark):
    """Sparse dispatch: one event per cycle, heap-dominated."""
    assert _component(benchmark, "engine_dispatch_sparse") == 20_000


def test_engine_event_throughput_bursty(benchmark):
    """Bursty dispatch: ~10 events per cycle — the bucket-queue fast path
    real workloads exercise (~3+ events per cycle at DRAM saturation).

    The 10 seed events may still be in flight when the count target is
    reached, so the total overshoots by up to 9.
    """
    assert _component(benchmark, "engine_dispatch_burst") >= 20_000


def test_sm_burst_loop_throughput(benchmark):
    """Compute-bound app alone: SM processor-sharing machinery dominates."""
    assert _component(benchmark, "sm_burst_loop") == 30_000


def test_dram_dispatch_throughput(benchmark):
    """Bandwidth-saturated app alone: DRAM controller dominates."""
    assert _component(benchmark, "dram_dispatch") == 30_000


def test_pair_workload_throughput(benchmark):
    """The acceptance workload: SD+SB shared run."""
    assert _component(benchmark, "pair_workload") == 30_000


def test_sim_cycles_per_second_light(benchmark):
    """Compute-bound workload: SM virtual-time dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["QR"], SUITE["CT"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000


def test_sim_cycles_per_second_saturated(benchmark):
    """Bandwidth-saturated workload: DRAM controller dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["SD"], SUITE["SB"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000


def test_parallel_warm_sweep_beats_serial(tmp_path):
    """Acceptance: a 10-pair error sweep with ``jobs=4`` on a warm
    alone-replay cache finishes in less wall time than the serial
    cache-less seed path, and produces identical numbers.

    The assertion is deliberately loose (strictly faster, no margin):
    worker start-up costs are real, and the point is that fan-out plus
    replay memoisation is a net win, not a precise speed-up factor.
    """
    cfg = scaled_config()
    pairs = DEFAULT_PAIRS[:10]
    cycles = 30_000
    kw = dict(config=cfg, shared_cycles=cycles, models=("DASE",))

    t0 = time.perf_counter()
    serial = estimation_accuracy(pairs, **kw)
    serial_s = time.perf_counter() - t0

    # Warm the on-disk cache, then time the pooled warm-cache sweep.
    estimation_accuracy(pairs, jobs=4, cache_dir=str(tmp_path), **kw)
    t0 = time.perf_counter()
    warm = estimation_accuracy(pairs, jobs=4, cache_dir=str(tmp_path), **kw)
    warm_s = time.perf_counter() - t0

    assert warm.per_workload == serial.per_workload  # determinism contract
    assert warm_s < serial_s, (
        f"warm parallel sweep ({warm_s:.2f}s) not faster than the serial "
        f"seed path ({serial_s:.2f}s)"
    )
