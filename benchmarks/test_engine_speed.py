"""Simulator throughput micro-benchmarks (DESIGN.md §5: the event-driven
design is what makes pure-Python figure sweeps tractable).

Unlike the experiment benchmarks these use normal pytest-benchmark rounds,
since they are genuine micro-benchmarks.
"""

from repro import GPU
from repro.harness import scaled_config
from repro.workloads import SUITE


def test_engine_event_throughput(benchmark):
    from repro.sim.engine import Engine

    def churn():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                eng.schedule(1, tick)

        eng.schedule(0, tick)
        eng.run()
        return count

    assert benchmark(churn) == 20_000


def test_sim_cycles_per_second_light(benchmark):
    """Compute-bound workload: SM virtual-time dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["QR"], SUITE["CT"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000


def test_sim_cycles_per_second_saturated(benchmark):
    """Bandwidth-saturated workload: DRAM controller dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["SD"], SUITE["SB"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000
