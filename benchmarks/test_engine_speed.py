"""Simulator throughput micro-benchmarks (DESIGN.md §5: the event-driven
design is what makes pure-Python figure sweeps tractable).

Unlike the experiment benchmarks these use normal pytest-benchmark rounds,
since they are genuine micro-benchmarks.
"""

import time

from repro import GPU
from repro.harness import scaled_config
from repro.harness.experiments import DEFAULT_PAIRS, estimation_accuracy
from repro.workloads import SUITE


def test_engine_event_throughput(benchmark):
    from repro.sim.engine import Engine

    def churn():
        eng = Engine()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                eng.schedule(1, tick)

        eng.schedule(0, tick)
        eng.run()
        return count

    assert benchmark(churn) == 20_000


def test_sim_cycles_per_second_light(benchmark):
    """Compute-bound workload: SM virtual-time dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["QR"], SUITE["CT"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000


def test_sim_cycles_per_second_saturated(benchmark):
    """Bandwidth-saturated workload: DRAM controller dominates."""
    cfg = scaled_config()

    def run():
        gpu = GPU(cfg, [SUITE["SD"], SUITE["SB"]])
        gpu.run(30_000)
        return gpu.engine.now

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 30_000


def test_parallel_warm_sweep_beats_serial(tmp_path):
    """Acceptance: a 10-pair error sweep with ``jobs=4`` on a warm
    alone-replay cache finishes in less wall time than the serial
    cache-less seed path, and produces identical numbers.

    The assertion is deliberately loose (strictly faster, no margin):
    worker start-up costs are real, and the point is that fan-out plus
    replay memoisation is a net win, not a precise speed-up factor.
    """
    cfg = scaled_config()
    pairs = DEFAULT_PAIRS[:10]
    cycles = 30_000
    kw = dict(config=cfg, shared_cycles=cycles, models=("DASE",))

    t0 = time.perf_counter()
    serial = estimation_accuracy(pairs, **kw)
    serial_s = time.perf_counter() - t0

    # Warm the on-disk cache, then time the pooled warm-cache sweep.
    estimation_accuracy(pairs, jobs=4, cache_dir=str(tmp_path), **kw)
    t0 = time.perf_counter()
    warm = estimation_accuracy(pairs, jobs=4, cache_dir=str(tmp_path), **kw)
    warm_s = time.perf_counter() - t0

    assert warm.per_workload == serial.per_workload  # determinism contract
    assert warm_s < serial_s, (
        f"warm parallel sweep ({warm_s:.2f}s) not faster than the serial "
        f"seed path ({serial_s:.2f}s)"
    )
