"""Fig. 5 — slowdown estimation accuracy across two-application workloads.

Paper: DASE 8.8%, MISE 36.3%, ASM 32.8% mean error.  The reproduction
asserts the *shape*: DASE beats both CPU baselines by a wide margin.
At ``REPRO_FULL=1`` this sweeps all 105 pairs; otherwise a representative
10-pair subset (DESIGN.md §4).
"""

from repro.harness.experiments import fig5_two_app_accuracy
from repro.harness.persist import save_result
from repro.harness.report import render_accuracy


def test_fig5_two_app_estimation_accuracy(once):
    res = once(fig5_two_app_accuracy)
    save_result("fig5_two_app_error", {
        "per_workload": res.per_workload,
        "means": {m: res.mean_error(m) for m in res.errors},
    })
    print()
    print(render_accuracy(res, "Fig 5 — two-application estimation error"))
    dase = res.mean_error("DASE")
    mise = res.mean_error("MISE")
    asm = res.mean_error("ASM")
    print(f"\npaper: DASE 8.8%  MISE 36.3%  ASM 32.8%")
    # Headline claim: DASE is dramatically more accurate.
    assert dase < 0.15, f"DASE error {dase:.1%} exceeds 15%"
    assert dase < mise / 2
    assert dase < asm / 2
    # The baselines are substantially wrong on GPUs.
    assert mise > 0.2
    assert asm > 0.2
