"""Table 3 — per-application DRAM bandwidth utilization running alone."""

from repro import GPU
from repro.harness import default_shared_cycles, scaled_config
from repro.harness.persist import save_result
from repro.harness.report import pct, table
from repro.workloads import SUITE, TABLE3_BW_UTILIZATION


def measure_all() -> dict[str, float]:
    cfg = scaled_config()
    cycles = max(60_000, default_shared_cycles() // 4)
    out = {}
    for name, spec in SUITE.items():
        gpu = GPU(cfg, [spec])
        gpu.run(cycles)
        out[name] = gpu.bandwidth_utilization(0)
    return out


def test_table3_bandwidth_utilization(once):
    measured = once(measure_all)
    save_result("table3_bw_utilization", {
        "paper": TABLE3_BW_UTILIZATION, "measured": measured,
    })
    rows = []
    worst = 0.0
    for name, bw in measured.items():
        target = TABLE3_BW_UTILIZATION[name]
        rows.append([name, pct(target), pct(bw), f"{bw - target:+.2f}"])
        worst = max(worst, abs(bw - target))
    print()
    print("Table 3 — alone DRAM bandwidth utilization:")
    print(table(["app", "paper", "measured", "diff"], rows))
    # Calibration contract: every app within 8 percentage points.
    assert worst <= 0.08, f"worst deviation {worst:.2f}"
    # And the suite must preserve the paper's intensity ordering extremes.
    assert measured["SB"] == max(measured.values())
    assert measured["QR"] <= min(v for k, v in measured.items() if k != "QR") + 0.05
