"""Motivation comparison (paper §2.2): LEFTOVER vs temporal vs spatial
multitasking vs DASE-Fair.

The paper argues current GPUs' LEFTOVER policy "cannot ensure that
different applications will always run simultaneously" and that spatial
multitasking improves utilization and responsiveness; DASE-Fair then fixes
spatial sharing's fairness problem.  This bench puts all four on one axis.
"""

from repro.harness import run_workload, scaled_config
from repro.harness.persist import save_result
from repro.harness.report import table
from repro.policies import DASEFairPolicy, TimeSlicePolicy, leftover_partition
from repro.workloads import SUITE

PAIR = ["SD", "VA"]


def run_modes():
    cfg = scaled_config()
    specs = [SUITE[n] for n in PAIR]
    runs = {
        "leftover": dict(sm_partition=leftover_partition(cfg, specs)),
        "temporal": dict(policy=TimeSlicePolicy(cfg, quantum_intervals=2)),
        "spatial-even": dict(),
        "spatial-DASE-Fair": dict(policy=DASEFairPolicy(cfg)),
    }
    out = {}
    for name, kwargs in runs.items():
        res = run_workload(PAIR, config=cfg, models=(), **kwargs)
        out[name] = (res.actual_unfairness, res.actual_hspeedup,
                     res.actual_slowdowns)
    return out


def test_multitasking_mode_comparison(once):
    res = once(run_modes)
    save_result("multitasking_modes", res)
    rows = [
        [name, f"{unf:.2f}", f"{hsp:.3f}"] + [f"{s:.2f}" for s in slow]
        for name, (unf, hsp, slow) in res.items()
    ]
    print()
    print(table(
        ["mode", "unfairness", "H-speedup", "slowdown SD", "slowdown VA"],
        rows,
    ))
    unf = {k: v[0] for k, v in res.items()}
    hsp = {k: v[1] for k, v in res.items()}
    # DASE-Fair fixes spatial sharing's unfairness ...
    assert unf["spatial-DASE-Fair"] <= unf["spatial-even"] + 0.05
    # ... and beats LEFTOVER, which starves the late-launched application.
    assert unf["spatial-DASE-Fair"] < unf["leftover"]
    slow_leftover = res["leftover"][2]
    slow_even = res["spatial-even"][2]
    assert slow_leftover[1] > slow_even[1] * 1.5
    # Managed spatial sharing sustains at least time-slicing's harmonic
    # speedup (time-slicing is fair by construction but pays switch drains).
    assert hsp["spatial-DASE-Fair"] >= hsp["temporal"] * 0.85
    assert hsp["spatial-DASE-Fair"] >= hsp["leftover"] * 0.95
