"""Fig. 7 — distribution of estimation errors across all workloads.

Paper: 70.2% of DASE's estimates err below 10% and 90.9% below 20%,
against single digits for MISE/ASM below 10%.
"""

from repro.harness.experiments import (
    fig5_two_app_accuracy,
    fig6_four_app_accuracy,
    fig7_error_distribution,
)
from repro.harness.persist import save_result
from repro.harness.report import render_distribution


def run_both():
    # A pooled subset: the distribution shape stabilizes well before the
    # full sweep (REPRO_FULL=1 still pools everything via figs 5/6).
    from repro.harness.runner import full_scale

    two = fig5_two_app_accuracy(limit=None if full_scale() else 6)
    four = fig6_four_app_accuracy(count=None if full_scale() else 2)
    return fig7_error_distribution(two, four)


def test_fig7_error_distribution(once):
    dists = once(run_both)
    save_result("fig7_error_distribution", dists)
    print()
    print(render_distribution(dists))
    print("\npaper: DASE <10%: 70.2%, <20%: 90.9%; "
          "ASM <10%: 6.2%; MISE <10%: 4.2%")
    dase_lt10 = dists["DASE"]["<10%"]
    dase_lt20 = dase_lt10 + dists["DASE"]["10%-20%"]
    assert dase_lt10 > 0.6
    assert dase_lt20 > 0.8
    # DASE's distribution dominates the baselines' at the accurate end.
    assert dase_lt10 > dists["MISE"]["<10%"]
    assert dase_lt10 > dists["ASM"]["<10%"]
