"""Per-component simulator microbenchmarks → ``BENCH_sim.json``.

Measures the hot paths the PR-2 optimisation targeted (event-engine
dispatch, SM burst loop, DRAM controller dispatch) plus the end-to-end
pair workload and a paper-scale warp-stream generation bench, and writes a
machine-readable artifact so the performance trajectory is tracked across
PRs.

Every benchmark is also recorded *normalized* to a fixed pure-Python
calibration loop measured in the same process: absolute seconds differ
wildly between laptops and CI runners, but the ratio benchmark/calibration
is roughly machine-independent for interpreter-bound code, so the
committed baseline (``benchmarks/BENCH_baseline.json``) can gate
regressions on shared runners.

Backend-sensitive benchmarks (everything that runs the simulator core, see
:data:`BACKEND_SENSITIVE`) can be measured per backend with ``--backend
reference,vectorized``; non-reference backends record under bracketed
entry names (``pair_workload[vectorized]``), so each backend gates against
its own baseline entry and the reference entries keep their historical
names.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json
    PYTHONPATH=src python benchmarks/bench_sim.py \
        --out BENCH_sim.json --check benchmarks/BENCH_baseline.json
    PYTHONPATH=src python benchmarks/bench_sim.py \
        --backend reference,vectorized --trajectory

``--trajectory`` appends one record per run to ``BENCH_trajectory.json``
at the repository root (seeded from the committed baseline on first use),
building the cumulative multi-backend perf trajectory across PRs.

Regenerate the baseline after an intentional perf-relevant change with
``--out benchmarks/BENCH_baseline.json`` on a quiet machine and commit the
diff (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

#: Repo root — where the cumulative trajectory artifact lives.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_trajectory.json"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"


# --------------------------------------------------------------- components


def engine_dispatch_sparse() -> int:
    """Event dispatch, one event per cycle (heap-dominated)."""
    from repro.sim.engine import Engine

    eng = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < 120_000:
            eng.schedule(1, tick)

    eng.schedule(0, tick)
    eng.run()
    return count


def engine_dispatch_burst() -> int:
    """Event dispatch, ~10 events per cycle (bucket-FIFO-dominated) —
    the shape real simulated workloads produce."""
    from repro.sim.engine import Engine

    eng = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < 20_000:
            eng.schedule(1 + (count % 10 == 0), tick)

    for _ in range(10):
        eng.schedule(0, tick)
    eng.run()
    return count


def sm_burst_loop(backend: str = "reference") -> int:
    """Compute-bound single app: SM virtual-time/burst machinery dominates."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(backend=backend), [SUITE["QR"]])
    gpu.run(30_000)
    return gpu.engine.now


def dram_dispatch(backend: str = "reference") -> int:
    """Bandwidth-saturated single app: DRAM controller dominates."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(backend=backend), [SUITE["SD"]])
    gpu.run(30_000)
    return gpu.engine.now


def pair_workload(backend: str = "reference") -> int:
    """The acceptance workload: SD+SB shared run (DRAM-saturated pair)."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(backend=backend), [SUITE["SD"], SUITE["SB"]])
    gpu.run(30_000)
    return gpu.engine.now


def warp_gen(backend: str = "reference") -> int:
    """Paper-scale warp-stream generation + consumption, isolated.

    The suite's scaled-down per-warp budgets (hundreds of instructions)
    are too small to amortize vectorized pregeneration, so this bench uses
    the paper-scale budget (thousands of instructions per warp) where bulk
    generation pays off — the regime ``REPRO_FULL=1`` runs in.
    """
    from dataclasses import replace

    from repro.sim.backends import get_backend
    from repro.workloads import SUITE

    be = get_backend(backend)
    steps = 0
    for name in ("SB", "SD", "NN"):
        spec = replace(SUITE[name], insts_per_warp=4000)
        for w in range(24):
            s = be.make_stream(spec, 0, 0, w, 2016, 128)
            while not s.done:
                s.next_compute_burst()
                s.next_mem_access()
                steps += 1
    return steps


BENCHES = {
    "engine_dispatch_sparse": engine_dispatch_sparse,
    "engine_dispatch_burst": engine_dispatch_burst,
    "sm_burst_loop": sm_burst_loop,
    "dram_dispatch": dram_dispatch,
    "pair_workload": pair_workload,
    "warp_gen": warp_gen,
}

#: Benchmarks that exercise the simulator core and therefore vary with
#: ``GPUConfig.backend``.  The engine benches do not touch the core.
BACKEND_SENSITIVE = frozenset(
    {"sm_burst_loop", "dram_dispatch", "pair_workload", "warp_gen"}
)


def entry_name(bench: str, backend: str) -> str:
    """Artifact entry key: reference keeps the historical plain name."""
    if backend == "reference" or bench not in BACKEND_SENSITIVE:
        return bench
    return f"{bench}[{backend}]"


def calibrate() -> float:
    """Fixed interpreter-bound spin; the normalization denominator."""

    def spin() -> int:
        x = 0
        for i in range(2_000_000):
            x = (x + i) & 0xFFFFFFFF
        return x

    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return best


def time_best_of(fn, reps: int = 5) -> float:
    """Best-of-``reps`` wall time — robust to scheduler noise."""
    fn()  # warm imports, caches, pyc
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(
    reps: int = 5,
    only: list[str] | None = None,
    backends: tuple[str, ...] = ("reference",),
) -> dict:
    cal = calibrate()
    benches = {}
    for name, fn in BENCHES.items():
        if only is not None and name not in only:
            continue
        if name in BACKEND_SENSITIVE:
            runs = [(entry_name(name, b), lambda b=b: fn(backend=b))
                    for b in backends]
        else:
            # Backend-independent: measured once, under the plain name.
            runs = [(name, fn)]
        for entry, run in runs:
            seconds = time_best_of(run, reps)
            benches[entry] = {
                "seconds": seconds,
                "normalized": seconds / cal,
            }
            print(f"  {entry:28s} {seconds * 1e3:8.1f} ms "
                  f"(x{seconds / cal:.2f} of calibration)", file=sys.stderr)
    return {
        "schema": 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_seconds": cal,
        "only": sorted(only) if only is not None else None,
        "backends": sorted(backends),
        "benches": benches,
    }


def check(result: dict, baseline: dict, tolerance: float) -> list[str]:
    """Normalized-time regressions beyond ``tolerance`` vs the baseline.

    Only benchmarks present in the current run are compared, so a
    ``--only``- or ``--backend``-restricted run checks just what it
    measured.  Each failure names the entry and states the measured vs
    baseline normalized times plus their ratio, so a CI log identifies the
    regressing benchmark without re-running anything.
    """
    failures = []
    measured = result["benches"]
    restricted = (
        result.get("only") is not None
        or result.get("backends", ["reference"]) != sorted(
            baseline.get("backends", ["reference"])
        )
    )
    for name, base in baseline.get("benches", {}).items():
        if name not in measured:
            if not restricted:
                failures.append(f"{name}: missing from current run")
            continue
        got = measured[name]
        ratio = got["normalized"] / base["normalized"]
        limit = base["normalized"] * (1.0 + tolerance)
        if got["normalized"] > limit:
            failures.append(
                f"{name}: measured normalized {got['normalized']:.3f} vs "
                f"baseline {base['normalized']:.3f} "
                f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)"
            )
    return failures


# --------------------------------------------------------------- trajectory


def seed_trajectory(path: pathlib.Path) -> dict:
    """Load the trajectory artifact, seeding it from the baseline.

    The committed baseline is the trajectory's origin: on first use its
    entries become record zero (labelled as such), so every later record
    reads as a delta against the same committed reference point.
    """
    if path.exists():
        with path.open() as fh:
            return json.load(fh)
    traj = {"schema": 1, "records": []}
    if BASELINE_PATH.exists():
        with BASELINE_PATH.open() as fh:
            base = json.load(fh)
        traj["records"].append({
            "label": "baseline",
            "source": "benchmarks/BENCH_baseline.json",
            "python": base.get("python"),
            "calibration_seconds": base.get("calibration_seconds"),
            "benches": base.get("benches", {}),
        })
    return traj


def append_trajectory(result: dict, path: pathlib.Path) -> dict:
    """Append this run's entries as one trajectory record and rewrite."""
    traj = seed_trajectory(path)
    traj["records"].append({
        "label": f"run-{len(traj['records'])}",
        "python": result["python"],
        "calibration_seconds": result["calibration_seconds"],
        "backends": result.get("backends", ["reference"]),
        "benches": result["benches"],
    })
    with path.open("w") as fh:
        json.dump(traj, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return traj


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_sim.json",
                   help="artifact path (default: BENCH_sim.json)")
    p.add_argument("--reps", type=int, default=5,
                   help="repetitions per benchmark (best-of)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="fail on regression vs this committed baseline")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed normalized-time regression (default 0.30)")
    p.add_argument("--only", default=None, metavar="NAME[,NAME]",
                   help="measure only these benchmarks (comma-separated); "
                        f"choices: {','.join(BENCHES)}")
    p.add_argument("--backend", default="reference",
                   metavar="NAME[,NAME]",
                   help="backends to measure the core benchmarks under "
                        "(comma-separated; default: reference)")
    p.add_argument("--trajectory", action="store_true",
                   help="append this run to BENCH_trajectory.json at the "
                        "repo root (seeded from the committed baseline)")
    args = p.parse_args(argv)

    only = None
    if args.only:
        only = [n for n in args.only.split(",") if n]
        unknown = [n for n in only if n not in BENCHES]
        if unknown:
            p.error(f"unknown benchmark(s) {','.join(unknown)}; "
                    f"choices: {','.join(BENCHES)}")

    backends = tuple(b for b in args.backend.split(",") if b)
    from repro.sim.backends import KNOWN_BACKENDS, backend_available

    bad = [b for b in backends if b not in KNOWN_BACKENDS]
    if bad:
        p.error(f"unknown backend(s) {','.join(bad)}; "
                f"choices: {','.join(KNOWN_BACKENDS)}")
    unavailable = [b for b in backends if not backend_available(b)]
    if unavailable:
        p.error(f"backend(s) {','.join(unavailable)} not available here "
                "(vectorized needs NumPy)")

    result = measure(reps=args.reps, only=only, backends=backends)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)

    if args.trajectory:
        traj = append_trajectory(result, TRAJECTORY_PATH)
        print(f"appended record {len(traj['records']) - 1} to "
              f"{TRAJECTORY_PATH}", file=sys.stderr)

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check(result, baseline, args.tolerance)
        if failures:
            print("perf regression detected:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
