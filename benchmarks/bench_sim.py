"""Per-component simulator microbenchmarks → ``BENCH_sim.json``.

Measures the three hot paths the PR-2 optimisation targeted (event-engine
dispatch, SM burst loop, DRAM controller dispatch) plus the end-to-end
pair workload, and writes a machine-readable artifact so the performance
trajectory is tracked across PRs.

Every benchmark is also recorded *normalized* to a fixed pure-Python
calibration loop measured in the same process: absolute seconds differ
wildly between laptops and CI runners, but the ratio benchmark/calibration
is roughly machine-independent for interpreter-bound code, so the
committed baseline (``benchmarks/BENCH_baseline.json``) can gate
regressions on shared runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_sim.py --out BENCH_sim.json
    PYTHONPATH=src python benchmarks/bench_sim.py \
        --out BENCH_sim.json --check benchmarks/BENCH_baseline.json

Regenerate the baseline after an intentional perf-relevant change with
``--out benchmarks/BENCH_baseline.json`` on a quiet machine and commit the
diff (see docs/performance.md).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time


# --------------------------------------------------------------- components


def engine_dispatch_sparse() -> int:
    """Event dispatch, one event per cycle (heap-dominated)."""
    from repro.sim.engine import Engine

    eng = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < 20_000:
            eng.schedule(1, tick)

    eng.schedule(0, tick)
    eng.run()
    return count


def engine_dispatch_burst() -> int:
    """Event dispatch, ~10 events per cycle (bucket-FIFO-dominated) —
    the shape real simulated workloads produce."""
    from repro.sim.engine import Engine

    eng = Engine()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < 20_000:
            eng.schedule(1 + (count % 10 == 0), tick)

    for _ in range(10):
        eng.schedule(0, tick)
    eng.run()
    return count


def sm_burst_loop() -> int:
    """Compute-bound single app: SM virtual-time/burst machinery dominates."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(), [SUITE["QR"]])
    gpu.run(30_000)
    return gpu.engine.now


def dram_dispatch() -> int:
    """Bandwidth-saturated single app: DRAM controller dominates."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(), [SUITE["SD"]])
    gpu.run(30_000)
    return gpu.engine.now


def pair_workload() -> int:
    """The acceptance workload: SD+SB shared run (DRAM-saturated pair)."""
    from repro import GPU
    from repro.harness import scaled_config
    from repro.workloads import SUITE

    gpu = GPU(scaled_config(), [SUITE["SD"], SUITE["SB"]])
    gpu.run(30_000)
    return gpu.engine.now


BENCHES = {
    "engine_dispatch_sparse": engine_dispatch_sparse,
    "engine_dispatch_burst": engine_dispatch_burst,
    "sm_burst_loop": sm_burst_loop,
    "dram_dispatch": dram_dispatch,
    "pair_workload": pair_workload,
}


def calibrate() -> float:
    """Fixed interpreter-bound spin; the normalization denominator."""

    def spin() -> int:
        x = 0
        for i in range(2_000_000):
            x = (x + i) & 0xFFFFFFFF
        return x

    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        spin()
        best = min(best, time.perf_counter() - t0)
    return best


def time_best_of(fn, reps: int = 5) -> float:
    """Best-of-``reps`` wall time — robust to scheduler noise."""
    fn()  # warm imports, caches, pyc
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(reps: int = 5, only: list[str] | None = None) -> dict:
    cal = calibrate()
    benches = {}
    for name, fn in BENCHES.items():
        if only is not None and name not in only:
            continue
        seconds = time_best_of(fn, reps)
        benches[name] = {
            "seconds": seconds,
            "normalized": seconds / cal,
        }
        print(f"  {name:24s} {seconds * 1e3:8.1f} ms "
              f"(x{seconds / cal:.2f} of calibration)", file=sys.stderr)
    return {
        "schema": 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "calibration_seconds": cal,
        "only": sorted(only) if only is not None else None,
        "benches": benches,
    }


def check(result: dict, baseline: dict, tolerance: float) -> list[str]:
    """Normalized-time regressions beyond ``tolerance`` vs the baseline.

    Only benchmarks present in the current run are compared, so a
    ``--only``-restricted run checks just what it measured.
    """
    failures = []
    measured = result["benches"]
    restricted = result.get("only") is not None
    for name, base in baseline.get("benches", {}).items():
        if name not in measured:
            if not restricted:
                failures.append(f"{name}: missing from current run")
            continue
        got = measured[name]
        limit = base["normalized"] * (1.0 + tolerance)
        if got["normalized"] > limit:
            failures.append(
                f"{name}: normalized {got['normalized']:.2f} exceeds "
                f"baseline {base['normalized']:.2f} by more than "
                f"{tolerance:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", default="BENCH_sim.json",
                   help="artifact path (default: BENCH_sim.json)")
    p.add_argument("--reps", type=int, default=5,
                   help="repetitions per benchmark (best-of)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="fail on regression vs this committed baseline")
    p.add_argument("--tolerance", type=float, default=0.30,
                   help="allowed normalized-time regression (default 0.30)")
    p.add_argument("--only", default=None, metavar="NAME[,NAME]",
                   help="measure only these benchmarks (comma-separated); "
                        f"choices: {','.join(BENCHES)}")
    args = p.parse_args(argv)

    only = None
    if args.only:
        only = [n for n in args.only.split(",") if n]
        unknown = [n for n in only if n not in BENCHES]
        if unknown:
            p.error(f"unknown benchmark(s) {','.join(unknown)}; "
                    f"choices: {','.join(BENCHES)}")

    result = measure(reps=args.reps, only=only)
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)

    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check(result, baseline, args.tolerance)
        if failures:
            print("perf regression detected:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print(f"no regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
