"""Ablations of DASE design choices (DESIGN.md §5).

Not in the paper as figures, but each corresponds to a design decision the
paper makes and justifies in prose:

* the α→1 refinement (§4.2.1: "setting α to 1 makes DASE more accurate
  when α is large");
* the BLP divisor in Eq. 14 ("increasing all interference cycles is not
  accurate, because multiple banks can execute multiple requests
  simultaneously");
* the 0.6 empirical factor in Requestmax (Eq. 20);
* the all-SM extension (Eqs. 23-25) — precisely what MISE/ASM lack;
* set-sampled ATD vs paper default (8 sets, §4.4/§6).
"""

from repro.config import GPUConfig
from repro.core import DASE
from repro.harness import run_workload, scaled_config
from repro.harness.report import pct, table

PAIRS = [("SD", "SB"), ("SD", "SA")]


def sweep(config) -> float:
    """Mean DASE error over the ablation pairs under a modified config.

    DASE reads its knobs (alpha_clamp, reqmax_factor, atd_sample_sets)
    from the config, so each variant is a fresh set of runs.
    """
    errs = []
    for pair in PAIRS:
        res = run_workload(list(pair), config=config, models=("DASE",))
        errs.extend(res.errors("DASE"))
    return sum(errs) / len(errs)


def run_variants(variants: dict[str, GPUConfig]) -> dict[str, float]:
    return {name: sweep(cfg) for name, cfg in variants.items()}


def test_ablation_alpha_clamp(once):
    variants = {
        "clamp@0.3 (default)": scaled_config(alpha_clamp=0.3),
        "clamp@0.85": scaled_config(alpha_clamp=0.85),
        "no clamp": scaled_config(alpha_clamp=1.01),
    }
    errors = once(run_variants, variants)
    print()
    print(table(["α→1 threshold", "DASE error"],
                [[k, pct(v)] for k, v in errors.items()]))
    default = errors["clamp@0.3 (default)"]
    assert default < 0.15
    # The paper's refinement must not hurt: default ≤ unclamped variant.
    assert default <= errors["no clamp"] + 0.02


def test_ablation_reqmax_factor(once):
    variants = {
        "0.4": scaled_config(reqmax_factor=0.4),
        "0.6 (paper)": scaled_config(reqmax_factor=0.6),
        "0.9": scaled_config(reqmax_factor=0.9),
    }
    errors = once(run_variants, variants)
    print()
    print(table(["Requestmax factor", "DASE error"],
                [[k, pct(v)] for k, v in errors.items()]))
    assert errors["0.6 (paper)"] < 0.15
    # 0.9 over-trusts the bus peak: MBB classification starves and the BW
    # cap loosens; it must not beat the paper's value by much.
    assert errors["0.6 (paper)"] <= errors["0.9"] + 0.03


def test_ablation_all_sm_extension(once):
    """Without Eqs. 23-25, DASE collapses to an assigned-SM estimator and
    inherits the CPU models' flaw."""
    from repro.sim.gpu import GPU, LaunchedKernel
    from repro.workloads import SUITE

    config = scaled_config()

    def run_variant(scale: bool) -> float:
        errs = []
        for pair in PAIRS:
            kernels = [
                LaunchedKernel(SUITE[n], stream_id=i)
                for i, n in enumerate(pair)
            ]
            gpu = GPU(config, kernels)
            model = DASE(config, scale_to_all_sms=scale)
            model.attach(gpu)
            gpu.run(240_000)
            insts = [p.instructions for p in gpu.progress]
            for i, n in enumerate(pair):
                alone = GPU(config, [LaunchedKernel(SUITE[n], stream_id=i)])
                alone.run_until_instructions(0, insts[i], max_cycles=2_000_000)
                actual = 240_000 / alone.engine.now
                est = model.mean_estimate(i)
                if est is not None:
                    errs.append(abs(est - actual) / actual)
        return sum(errs) / len(errs)

    result = once(lambda: {"with": run_variant(True), "without": run_variant(False)})
    print()
    print(table(["all-SM extension", "DASE error"],
                [["enabled (paper)", pct(result["with"])],
                 ["disabled", pct(result["without"])]]))
    assert result["with"] < result["without"]
    # Disabling it costs roughly the SM-scaling factor on NMBB apps (MBB
    # apps never scale, diluting the mean): a clearly large error.
    assert result["without"] > 0.15
    assert result["without"] > 2.5 * result["with"]


def test_ablation_atd_sampling(once):
    variants = {
        "2 sets": scaled_config(atd_sample_sets=2),
        "8 sets (paper)": scaled_config(atd_sample_sets=8),
        "64 sets": scaled_config(atd_sample_sets=64),
    }
    errors = once(run_variants, variants)
    print()
    print(table(["ATD sampled sets", "DASE error"],
                [[k, pct(v)] for k, v in errors.items()]))
    # Set sampling is cheap and adequate: paper default within 5pp of the
    # oversampled variant.
    assert abs(errors["8 sets (paper)"] - errors["64 sets"]) < 0.05
