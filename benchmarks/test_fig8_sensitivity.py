"""Fig. 8 — DASE accuracy is robust to the SM allocation and the SM count."""

from repro.harness.experiments import (
    fig8a_sm_allocation_sensitivity,
    fig8b_sm_count_sensitivity,
)
from repro.harness.persist import save_result
from repro.harness.report import render_sensitivity


def test_fig8a_sm_allocation_sensitivity(once):
    res = once(fig8a_sm_allocation_sensitivity)
    save_result("fig8a_split_sensitivity", res)
    print()
    print(render_sensitivity(res, "Fig 8a — error vs launch-time SM split"))
    for label, err in res.dase_errors.items():
        assert err < 0.25, f"split {label}: DASE error {err:.1%}"
    spread = max(res.dase_errors.values()) - min(res.dase_errors.values())
    assert spread < 0.15, f"error varies too much across splits ({spread:.1%})"


def test_fig8b_sm_count_sensitivity(once):
    res = once(fig8b_sm_count_sensitivity)
    save_result("fig8b_count_sensitivity", res)
    print()
    print(render_sensitivity(res, "Fig 8b — error vs GPU SM count"))
    for label, err in res.dase_errors.items():
        assert err < 0.25, f"{label}: DASE error {err:.1%}"
