"""Fig. 3 — performance is proportional to the memory request service rate."""

from repro.harness.experiments import fig3_service_rate
from repro.harness.persist import save_result
from repro.harness.report import render_fig3


def test_fig3_performance_vs_service_rate(once, store_record):
    res = once(fig3_service_rate)
    save_result("fig3_service_rate", res)
    store_record("fig3", res.to_dict())
    print()
    print(render_fig3(res))
    # The paper's observation: for a memory-intensive kernel, performance
    # is directly proportional to the request service rate.
    assert res.correlation > 0.98
    # And monotone (within noise — saturated sweep points nearly tie).
    pts = sorted(res.points)
    assert all(a[1] <= b[1] * 1.03 for a, b in zip(pts, pts[1:]))
