"""Fig. 9 — DASE-Fair vs the even SM split.

Paper: unfairness improves by >16.1% on average and harmonic speedup by
>3.7%.  Shape asserted here: DASE-Fair reduces mean unfairness without
sacrificing harmonic speedup, and never makes an already-fair workload
dramatically worse.
"""

from repro.harness import full_scale
from repro.harness.experiments import fig9_dase_fair, pair_list
from repro.harness.persist import save_result
from repro.harness.report import render_fig9


def run():
    pairs = [p for p in pair_list() if "BG" not in p]
    if not full_scale():
        # Focus the scaled-down run on the unfair half of the subset, as the
        # interesting workloads are the ones the policy can help.
        pairs = pairs[:4]
    return fig9_dase_fair(pairs)


def test_fig9_fairness_policy(once):
    res = once(run)
    save_result("fig9_dase_fair", res)
    print()
    print(render_fig9(res))
    print("\npaper: unfairness improvement >16.1%, H-speedup >3.7%")
    assert res.mean_unfairness_improvement > 0.0
    # The policy must substantially help the unfair workloads ...
    unfair = [k for k in res.workloads if res.unfairness_even[k] > 1.5]
    if unfair:
        gains = [
            1 - res.unfairness_fair[k] / res.unfairness_even[k] for k in unfair
        ]
        assert max(gains) > 0.10
    # ... and not tank overall performance.
    assert res.mean_hspeedup_improvement > -0.05
    for k in res.workloads:
        assert res.unfairness_fair[k] < res.unfairness_even[k] * 1.25
