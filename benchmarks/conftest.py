"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): these are reproduction experiments, not micro-benchmarks, and a
single run already takes seconds to minutes.  Set ``REPRO_FULL=1`` for
paper-scale cycle budgets and full workload sweeps.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a thunk once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
