"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): these are reproduction experiments, not micro-benchmarks, and a
single run already takes seconds to minutes.  Set ``REPRO_FULL=1`` for
paper-scale cycle budgets and full workload sweeps.
"""

import os

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a thunk once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture()
def store_record():
    """Also record the benchmark's typed payload into the longitudinal
    results store when ``REPRO_STORE_DIR`` is set (no-op otherwise) —
    the ``save_result`` artifacts stay point-in-time files, the store
    accumulates the cross-run trajectory (docs/results-store.md)."""

    def recorder(figure, payload, **scenario_kwargs):
        store_dir = os.environ.get("REPRO_STORE_DIR")
        if not store_dir:
            return None
        from repro.store import PAYLOAD_SCHEMAS, ResultStore, scenario_for

        spec = scenario_for(figure, **scenario_kwargs)
        return ResultStore(store_dir).record(
            spec, payload, PAYLOAD_SCHEMAS[figure]
        )

    return recorder
