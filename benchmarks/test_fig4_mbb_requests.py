"""Fig. 4 — MBB request conservation: SB alone ≈ SB + partner shared sum."""

from repro.harness.experiments import fig4_mbb_requests
from repro.harness.persist import save_result
from repro.harness.report import render_fig4


def test_fig4_request_conservation(once):
    res = once(fig4_mbb_requests)
    save_result("fig4_mbb_requests", res)
    print()
    print(render_fig4(res))
    assert res.alone_rate > 0
    for partner, (sb, other) in res.shared_rates.items():
        total = sb + other
        # Paper's Fig. 4: 420 alone vs 439 shared sum (≈5%).  Allow 25%:
        # with a compute-bound partner SB runs latency-limited on its half
        # of the SMs and the pooled rate dips slightly below saturation.
        assert abs(total - res.alone_rate) / res.alone_rate < 0.25, (
            f"SB+{partner}: shared sum {total:.0f} vs alone {res.alone_rate:.0f}"
        )
        # SB is throttled by the partner, never accelerated.
        assert sb < res.alone_rate
