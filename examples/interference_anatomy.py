#!/usr/bin/env python3
"""Anatomy of inter-application interference (the Fig. 2 study).

    python examples/interference_anatomy.py

Takes ~1-2 min.  Reproduces the motivation section: pair the sensitive SD
kernel with different co-runners, measure each application's slowdown and
unfairness, and decompose DRAM bandwidth into per-application data, wasted
(timing-constraint), and idle portions.  Also prints the DASE interference
breakdown (bank / row-buffer / cache terms) for the worst pair.
"""

from repro import GPU, GPUConfig
from repro.core import DASE
from repro.harness import scaled_config
from repro.harness.experiments import fig2_unfairness
from repro.harness.report import pct, render_fig2
from repro.workloads import SUITE


def main() -> None:
    res = fig2_unfairness()
    print(render_fig2(res))

    # Zoom into the worst combo with the DASE diagnostic breakdown.
    worst = max(res.unfairness, key=res.unfairness.get)
    names = worst.split("+")
    print(f"\nDASE interference breakdown for {worst} "
          "(per interval, victim app):")
    config = scaled_config()
    gpu = GPU(config, [SUITE[n] for n in names])
    dase = DASE(config)
    dase.attach(gpu)
    gpu.run(100_000)
    print(f"{'interval':>8} {'bank':>12} {'rowbuf':>12} {'cache':>12} "
          f"{'alpha':>6} {'est':>6}")
    for i, row in enumerate(dase.breakdowns):
        bd = row[0]
        if bd.mbb:
            print(f"{i:>8}  (classified MBB; request-ratio path)")
            continue
        print(f"{i:>8} {bd.time_bank:>12.0f} {bd.time_rowbuf:>12.0f} "
              f"{bd.time_cache:>12.0f} {bd.alpha:>6.2f} {bd.slowdown_all:>6.2f}")


if __name__ == "__main__":
    main()
