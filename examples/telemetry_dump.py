#!/usr/bin/env python3
"""Record a full run's telemetry and dump it as CSV.

    python examples/telemetry_dump.py [out.csv]

Takes ~1-2 min.  Attaches DASE and the telemetry recorder to a three-way
workload, runs it, prints a per-interval summary for the victim app and
writes the complete per-interval, per-application time series (IPC, α,
request rate, bandwidth share, cache behaviour, estimates, SM counts) to
CSV — ready for any plotting tool.
"""

import sys

from repro import GPU, LaunchedKernel
from repro.core import DASE
from repro.harness import scaled_config
from repro.obs import Telemetry
from repro.policies import DASEFairPolicy
from repro.workloads import SUITE


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "telemetry.csv"
    config = scaled_config()
    names = ["SD", "SB", "QR"]
    kernels = [LaunchedKernel(SUITE[n], stream_id=i) for i, n in enumerate(names)]

    gpu = GPU(config, kernels)
    dase = DASE(config)
    dase.attach(gpu)
    policy = DASEFairPolicy(config, estimator=dase)
    policy.attach(gpu)
    tel = Telemetry({"DASE": dase})
    tel.attach(gpu)

    gpu.run(240_000)

    print(f"Workload {'+'.join(names)} under DASE-Fair, "
          f"{len(gpu.interval_history)} intervals\n")
    print(f"{'cycle':>8} {'SMs':>4} {'IPC':>6} {'alpha':>6} "
          f"{'req/kcyc':>9} {'bw%':>6} {'DASE est':>9}")
    for s in tel.samples:
        if s.app != 0:  # narrate the victim (SD)
            continue
        est = s.estimates["DASE"]
        print(f"{s.cycle:>8} {s.sm_count:>4} {s.ipc:>6.2f} {s.alpha:>6.2f} "
              f"{s.requests_per_kcycle:>9.0f} {100 * s.bw_share:>6.1f} "
              f"{'-' if est is None else f'{est:>9.2f}'}")

    with open(out_path, "w") as fh:
        fh.write(tel.to_csv())
    print(f"\nSM reallocation decisions: {policy.decisions or 'none'}")
    print(f"Full telemetry ({len(tel.samples)} samples) written to {out_path}")


if __name__ == "__main__":
    main()
