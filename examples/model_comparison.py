#!/usr/bin/env python3
"""Compare DASE against the MISE and ASM baselines on a mix of workloads
(the Fig. 5 experiment, on a small sample).

    python examples/model_comparison.py [pair ...]

e.g. ``python examples/model_comparison.py SD+SB QR+SB NN+VA``.
Takes ~2-3 min with the defaults.
"""

import sys

from repro.harness import run_workload
from repro.harness.report import pct, table
from repro.workloads import APP_NAMES


def parse_pairs(args: list[str]) -> list[tuple[str, str]]:
    if not args:
        return [("SD", "SB"), ("QR", "SB"), ("NN", "VA"), ("CT", "QR")]
    pairs = []
    for a in args:
        parts = tuple(a.split("+"))
        if len(parts) != 2 or any(p not in APP_NAMES for p in parts):
            raise SystemExit(
                f"bad workload {a!r}; use NAME+NAME with names from {APP_NAMES}"
            )
        pairs.append(parts)
    return pairs


def main() -> None:
    pairs = parse_pairs(sys.argv[1:])
    models = ("DASE", "MISE", "ASM")
    rows = []
    errors = {m: [] for m in models}
    for pair in pairs:
        res = run_workload(list(pair), models=models)
        for i, name in enumerate(res.names):
            row = [f"{name} (in {'+'.join(pair)})",
                   f"{res.actual_slowdowns[i]:.2f}"]
            for m in models:
                e = res.estimates[m][i]
                row.append("-" if e is None else f"{e:.2f}")
            rows.append(row)
        for m in models:
            errors[m].extend(res.errors(m))
        print(f"done {'+'.join(pair)}", flush=True)

    print()
    print(table(["application", "actual"] + [f"{m} est" for m in models], rows))
    print()
    for m in models:
        mean_err = sum(errors[m]) / len(errors[m])
        print(f"{m:5s} mean estimation error: {pct(mean_err)}")
    print("\nPaper reference (full 105-pair sweep, GPGPU-Sim): "
          "DASE 8.8%, MISE 36.3%, ASM 32.8%")


if __name__ == "__main__":
    main()
