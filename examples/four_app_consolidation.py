#!/usr/bin/env python3
"""Four-application consolidation (the paper's Fig. 6 setting).

    python examples/four_app_consolidation.py [APP APP APP APP]

Takes ~1-2 min.  Consolidates four applications onto one GPU — the
datacenter scenario the paper's introduction motivates — and shows:

* actual slowdowns via the matched-instruction methodology;
* how DASE tracks them while MISE/ASM (missing the 4× all-SM factor)
  collapse toward 1-2×;
* what DASE-Fair does with the 4-way SM partition.
"""

import sys

from repro.harness import run_workload, scaled_config
from repro.harness.report import pct, table
from repro.policies import DASEFairPolicy
from repro.workloads import APP_NAMES


def main() -> None:
    names = sys.argv[1:5] if len(sys.argv) >= 5 else ["SD", "SB", "QR", "CT"]
    for n in names:
        if n not in APP_NAMES:
            raise SystemExit(f"unknown app {n!r}; choose from {APP_NAMES}")
    config = scaled_config()

    print(f"Consolidating {'+'.join(names)} on {config.n_sms} SMs "
          f"(even split: 4 each)\n")
    res = run_workload(names, config=config)

    models = ("DASE", "MISE", "ASM")
    rows = []
    for i, name in enumerate(names):
        row = [name, f"{res.actual_slowdowns[i]:.2f}"]
        for m in models:
            e = res.estimates[m][i]
            row.append("-" if e is None else f"{e:.2f}")
        rows.append(row)
    print(table(["app", "actual"] + [f"{m}" for m in models], rows))
    for m in models:
        print(f"{m:5s} mean error: {pct(res.mean_error(m))}")
    print(f"\nunfairness {res.actual_unfairness:.2f}   "
          f"H-speedup {res.actual_hspeedup:.3f}")
    print("paper reference (30 four-app workloads): "
          "DASE 11.4%, MISE 62.6%, ASM 58%")

    print("\nNow with DASE-Fair managing the partition ...")
    policy = DASEFairPolicy(config)
    fair = run_workload(names, config=config, models=(), policy=policy)
    print(f"final SM partition: {fair.final_sm_partition}  "
          f"(decisions: {len(policy.decisions)})")
    print(f"unfairness {fair.actual_unfairness:.2f}  "
          f"(was {res.actual_unfairness:.2f})   "
          f"H-speedup {fair.actual_hspeedup:.3f} "
          f"(was {res.actual_hspeedup:.3f})")


if __name__ == "__main__":
    main()
