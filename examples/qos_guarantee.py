#!/usr/bin/env python3
"""QoS guarantees with DASE (the paper's future-work scenario).

    python examples/qos_guarantee.py [BOUND]

Takes ~2 min.  A latency-critical application (SD) shares the GPU with a
bandwidth hog (SB).  DASE-QoS watches SD's estimated slowdown every
interval and trades SMs to keep it under the bound (default 2.5×).
"""

import sys

from repro import GPU, LaunchedKernel
from repro.core import DASE
from repro.harness import scaled_config
from repro.policies import DASEQoSPolicy
from repro.workloads import SUITE


def main() -> None:
    bound = float(sys.argv[1]) if len(sys.argv) > 1 else 2.5
    config = scaled_config()
    kernels = [
        LaunchedKernel(SUITE["SD"], stream_id=0),  # the QoS target
        LaunchedKernel(SUITE["SB"], stream_id=1),  # the aggressor
    ]

    def run(policy):
        gpu = GPU(config, kernels)
        est = DASE(config)
        est.attach(gpu)
        if policy is not None:
            pol = policy(est)
            pol.attach(gpu)
        else:
            pol = None
        gpu.run(240_000)
        return gpu, est, pol

    gpu0, est0, _ = run(None)
    base = est0.mean_estimates()[0]
    print(f"Even split, no policy: SD estimated slowdown {base:.2f}× "
          f"(bound {bound:.2f}×)")

    gpu1, est1, pol = run(
        lambda est: DASEQoSPolicy(config, target_app=0, max_slowdown=bound,
                                  estimator=est)
    )
    final = est1.mean_estimates()[0]
    print(f"With DASE-QoS:        SD estimated slowdown {final:.2f}×")
    print(f"Final SM partition:   {gpu1.sm_counts()}  (started [8, 8])")
    print(f"Bound violations:     {pol.violations()} of "
          f"{len(est1.history)} intervals")
    print("\nSM trades (cycle, action, from app, to app):")
    for action in pol.actions:
        print(f"  {action}")
    if final <= bound:
        print(f"\nQoS bound met: {final:.2f} <= {bound:.2f}")
    else:
        print(f"\nQoS bound NOT met ({final:.2f} > {bound:.2f}) — "
              "the aggressor saturates shared DRAM; SMs alone cannot fix it.")


if __name__ == "__main__":
    main()
