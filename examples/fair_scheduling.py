#!/usr/bin/env python3
"""DASE-Fair in action: watch the SM partition adapt to an unfair workload.

    python examples/fair_scheduling.py

Takes ~2 min.  Runs the paper's motivating pair (SD, the interference-
sensitive victim, against SB, the bandwidth hog) under the even SM split and
under DASE-Fair, and prints the allocation trace plus the final fairness and
harmonic-speedup comparison (the Fig. 9 experiment on one workload).
"""

from repro.harness import run_workload, scaled_config
from repro.policies import DASEFairPolicy


def main() -> None:
    config = scaled_config()
    pair = ["SD", "SB"]

    print(f"Workload: {'+'.join(pair)} on {config.n_sms} SMs\n")

    even = run_workload(pair, config=config, models=())
    print("Even split  : SMs", even.sm_partition,
          " slowdowns", [f"{s:.2f}" for s in even.actual_slowdowns],
          f" unfairness {even.actual_unfairness:.2f}",
          f" H-speedup {even.actual_hspeedup:.3f}")

    policy = DASEFairPolicy(config)
    fair = run_workload(pair, config=config, models=(), policy=policy)
    print("DASE-Fair   : SMs", fair.final_sm_partition,
          " slowdowns", [f"{s:.2f}" for s in fair.actual_slowdowns],
          f" unfairness {fair.actual_unfairness:.2f}",
          f" H-speedup {fair.actual_hspeedup:.3f}")

    print("\nReallocation decisions (cycle → target SM partition):")
    if not policy.decisions:
        print("  (none: the estimator judged the current split fair)")
    for cycle, target in policy.decisions:
        print(f"  cycle {cycle:>8,d} → {list(target)}")

    gain = 1.0 - fair.actual_unfairness / even.actual_unfairness
    hsp = fair.actual_hspeedup / even.actual_hspeedup - 1.0
    print(f"\nUnfairness improvement: {100 * gain:+.1f}%"
          f"   (paper reports >16.1% on average)")
    print(f"H-speedup improvement:  {100 * hsp:+.1f}%"
          f"   (paper reports >3.7% on average)")


if __name__ == "__main__":
    main()
