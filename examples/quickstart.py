#!/usr/bin/env python3
"""Quickstart: run two applications on one simulated GPU and estimate their
slowdowns with DASE at run time.

    python examples/quickstart.py

Takes ~1 min.  What it shows:

1. build a GPU with the paper's baseline configuration (Table 2),
2. launch two kernels from the benchmark suite side by side (spatial
   multitasking, even SM split),
3. attach the DASE estimator and read per-interval slowdown estimates,
4. verify them against ground truth via the matched-instruction methodology.
"""

from repro import GPU, unfairness
from repro.core import DASE
from repro.harness import run_workload, scaled_config
from repro.workloads import SUITE


def main() -> None:
    config = scaled_config()

    # --- 1. run-time estimation on a live GPU ---------------------------
    gpu = GPU(config, [SUITE["SD"], SUITE["SB"]])  # victim + bandwidth hog
    dase = DASE(config)
    dase.attach(gpu)
    gpu.run(120_000)

    print("Per-interval DASE slowdown estimates (SD, SB):")
    for i, row in enumerate(dase.history):
        cells = ", ".join("  -  " if v is None else f"{v:5.2f}" for v in row)
        print(f"  interval {i:2d}: {cells}")

    est = dase.mean_estimates()
    print(f"\nRun-level estimates: SD={est[0]:.2f}×  SB={est[1]:.2f}×")

    # --- 2. ground truth via the paper's methodology --------------------
    print("\nValidating against matched-instruction alone replays ...")
    res = run_workload(["SD", "SB"], config=config, models=("DASE",))
    print(f"Actual slowdowns:    SD={res.actual_slowdowns[0]:.2f}×"
          f"  SB={res.actual_slowdowns[1]:.2f}×")
    print(f"DASE estimates:      SD={res.estimates['DASE'][0]:.2f}×"
          f"  SB={res.estimates['DASE'][1]:.2f}×")
    print(f"Estimation error:    {100 * res.mean_error('DASE'):.1f}%")
    print(f"System unfairness:   {unfairness(res.actual_slowdowns):.2f}"
          "  (1.0 = perfectly fair)")


if __name__ == "__main__":
    main()
