"""MBB / NMBB classification (paper §4.2.3, Eqs. 19-22).

A Memory-Bandwidth-Bound application is one whose performance is limited by
memory bandwidth even without co-runners.  The paper's run-time test: the
memory system is saturated (Eq. 19), this application holds at least its
proportional share of it (Eq. 21), and the application would still saturate
the memory system if its stall time were converted into served requests
(Eq. 22).
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.sim.stats import IntervalRecord


def request_max(cycles: int, config: GPUConfig) -> float:
    """Eq. 20: maximum requests the DRAM can serve in ``cycles``.

    ``T_perReq`` is the data-bus time of one request; the whole memory
    system has ``n_partitions`` buses working in parallel.  The empirical
    0.6 factor (``config.reqmax_factor``) accounts for bandwidth lost to
    DRAM timing constraints.
    """
    peak = cycles * config.n_partitions / config.time_per_request
    return peak * config.reqmax_factor


def shared_requests(rec: IntervalRecord) -> float:
    """Eq. 17: served requests minus contention-induced extra misses."""
    return max(1.0, rec.mem.requests_served - rec.ellc_miss)


def is_mbb(
    rec: IntervalRecord,
    records: list[IntervalRecord],
    config: GPUConfig,
) -> bool:
    """Classify one application given all applications' interval records."""
    cycles = rec.cycles
    if cycles <= 0 or rec.mem.requests_served == 0:
        return False
    rmax = request_max(cycles, config)
    # Eq. 19: total served requests saturate the DRAM.
    total = sum(r.mem.requests_served for r in records)
    if total < rmax:
        return False
    # Eq. 21: this app consumes at least its proportional share.
    req_shared = shared_requests(rec)
    if req_shared / rmax < 1.0 / len(records):
        return False
    # Eq. 22: converting stall time into requests would exceed the maximum.
    alpha = rec.sm.alpha
    if alpha >= 1.0 - 1e-9:
        return True
    return req_shared / (1.0 - alpha) >= rmax
