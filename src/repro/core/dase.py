"""DASE — Dynamical Application Slowdown Estimation (paper §4).

Per interval and per application, DASE estimates the slowdown relative to
running alone on *all* SMs, from hardware counters only:

* **NMBB path** (Eqs. 7-15): reconstruct the alone execution time by
  subtracting the inter-application interference cycles — bank conflicts
  (Eq. 9), row-buffer interference (Eq. 10), and shared-cache contention
  (Eq. 11) — normalized by the application's bank-level parallelism
  (Eq. 14), and damp the whole effect by the stall fraction α (Eq. 15)
  because TLP hides memory time that never reached the critical path.
* **MBB path** (Eqs. 16-18): for bandwidth-bound applications the request
  count is the performance proxy; running alone the application would have
  absorbed the *entire* served-request stream (Fig. 4's observation), so
  the slowdown is Σ requests / own (contention-corrected) requests.
* **All-SM extension** (Eqs. 23-25): scale the assigned-SM estimate by
  SM_all / SM_assigned, capped by thread-block supply (Eq. 24) and by the
  memory-bandwidth ceiling (Eq. 25); MBB kernels do not scale at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.core.base import SlowdownEstimator
from repro.core.classify import is_mbb, request_max, shared_requests
from repro.obs.audit import ModelAudit
from repro.sim.stats import IntervalRecord


@dataclass
class DASEBreakdown:
    """Diagnostic decomposition of one interval estimate (for tests/docs)."""

    mbb: bool
    time_bank: float = 0.0
    time_rowbuf: float = 0.0
    time_cache: float = 0.0
    time_interference: float = 0.0
    blp: float = 0.0
    blp_access: float = 0.0
    alpha: float = 0.0
    slowdown_assigned: float = 1.0
    slowdown_all: float = 1.0


class DASE(SlowdownEstimator):
    """The paper's estimator.  Attach to a GPU and read per-interval or
    run-level slowdown estimates.

    ``scale_to_all_sms=False`` disables the Eq. 23-25 extension (used by the
    ablation bench to show why CPU-style assigned-SM estimates fail on GPUs).
    """

    name = "DASE"

    def __init__(
        self,
        config: GPUConfig,
        scale_to_all_sms: bool = True,
        use_blp_divisor: bool = True,
    ) -> None:
        super().__init__(config)
        self.scale_to_all_sms = scale_to_all_sms
        self.use_blp_divisor = use_blp_divisor
        self.breakdowns: list[list[DASEBreakdown]] = []

    # ------------------------------------------------------------ interval

    def estimate_interval(
        self, records: list[IntervalRecord]
    ) -> list[float | None]:
        out: list[float | None] = []
        rows: list[DASEBreakdown] = []
        audit = self._audit
        interval = len(self.history)
        for rec in records:
            est, bd = self._estimate_app(rec, records)
            out.append(est)
            rows.append(bd)
            if audit is not None:
                audit.record_model(self._model_audit(rec, est, bd, interval))
        self.breakdowns.append(rows)
        return out

    def _model_audit(
        self, rec: IntervalRecord, est: float | None, bd: DASEBreakdown,
        interval: int,
    ) -> ModelAudit:
        """Decompose one interval estimate into its inputs and terms."""
        inputs = {
            "cycles": rec.cycles,
            "alpha": rec.sm.alpha,
            "blp": bd.blp,
            "blp_access": bd.blp_access,
            "erb_miss": rec.mem.erb_miss,
            "ellc_miss": rec.ellc_miss,
            "requests_served": rec.mem.requests_served,
            "time_request": rec.mem.time_request,
            "sm_count": rec.sm_count,
            "sm_total": rec.sm_total,
            "tb_running": rec.tb_running,
            "tb_unfinished": rec.tb_unfinished,
        }
        fault = rec.extra.get("fault")
        if fault:
            # Perturbed delivery (repro.faults) — name the fault kinds so a
            # surprising estimate in the audit stream explains itself.
            inputs["fault"] = "+".join(fault)
        terms = {
            "mbb": bd.mbb,
            "time_bank": bd.time_bank,
            "time_rowbuf": bd.time_rowbuf,
            "time_cache": bd.time_cache,
            "time_interference": bd.time_interference,
            "alpha_effective": bd.alpha,
            "slowdown_assigned": bd.slowdown_assigned,
            "slowdown_all": bd.slowdown_all,
        }
        return ModelAudit(
            model=self.name,
            app=rec.app,
            interval=interval,
            cycle=rec.end,
            estimate=est,
            reciprocal=None if est is None else 1.0 / max(est, 1.0),
            inputs=inputs,
            terms=terms,
            skip_reason=(
                None
                if est is not None
                else ("not-resident" if rec.sm_count == 0 else "degenerate-interval")
            ),
        )

    def _estimate_app(
        self, rec: IntervalRecord, records: list[IntervalRecord]
    ) -> tuple[float | None, DASEBreakdown]:
        cycles = rec.cycles
        if cycles <= 0 or rec.sm_count == 0:
            return None, DASEBreakdown(mbb=False)
        if is_mbb(rec, records, self.config):
            return self._estimate_mbb(rec, records)
        return self._estimate_nmbb(rec, records)

    # ---------------------------------------------------------------- MBB

    def _estimate_mbb(
        self, rec: IntervalRecord, records: list[IntervalRecord]
    ) -> tuple[float, DASEBreakdown]:
        req_shared = shared_requests(rec)  # Eq. 17
        req_alone = float(sum(r.mem.requests_served for r in records))  # Eq. 18
        slowdown = max(1.0, req_alone / req_shared)  # Eq. 16
        bd = DASEBreakdown(
            mbb=True, slowdown_assigned=slowdown, slowdown_all=slowdown,
            alpha=rec.sm.alpha,
        )
        # §4.3: MBB kernels gain nothing from extra SMs — no scaling.
        return slowdown, bd

    # --------------------------------------------------------------- NMBB

    def _estimate_nmbb(
        self, rec: IntervalRecord, records: list[IntervalRecord]
    ) -> tuple[float, DASEBreakdown]:
        cfg = self.config
        cycles = rec.cycles
        mem = rec.mem
        out_time = mem.outstanding_time
        if out_time > 0:
            blp = mem.demanded_bank_integral / out_time
            blp_access = mem.executing_bank_integral / out_time
        else:
            blp = blp_access = 0.0

        # Eq. 9 — bank interference: banks this app demands but that are
        # not executing its requests (they are busy with co-runners, or the
        # controller is busy issuing co-runners' requests).
        time_bank = cycles * max(0.0, blp - blp_access)
        # Eq. 10 — row-buffer interference.
        penalty = cfg.dram_cycles_to_core(cfg.dram.row_miss_penalty)
        time_rowbuf = mem.erb_miss * penalty
        # Eqs. 11-13 — shared-cache contention.
        if mem.requests_served > 0:
            time_avg = mem.time_request / mem.requests_served  # Eq. 12
        else:
            time_avg = 0.0
        time_cache = rec.ellc_miss * time_avg
        # Eq. 14 — multiple banks absorb interference in parallel.
        total = time_bank + time_rowbuf + time_cache
        if self.use_blp_divisor and blp > 1.0:
            t_interference = total / blp
        else:
            t_interference = total
        # Interference can only lengthen the critical path while the SM
        # pipeline is actually stalled: queueing time beyond the observed
        # stall time was hidden by TLP/MLP and must not be charged.
        alpha_raw = rec.sm.alpha
        t_interference = min(t_interference, alpha_raw * cycles, cycles * 0.95)

        t_alone = cycles - t_interference  # Eq. 8
        ratio = cycles / t_alone if t_alone > 0 else 1.0
        # Eq. 15, with the paper's "α→1 when α is large" refinement.
        alpha = 1.0 if alpha_raw > cfg.alpha_clamp else alpha_raw
        slowdown_assigned = max(1.0, 1.0 - alpha + alpha * ratio)

        slowdown_all = slowdown_assigned
        if self.scale_to_all_sms and rec.sm_count > 0:
            # Eq. 23 — alone, the application would use every SM.
            slowdown_all = slowdown_assigned * rec.sm_total / rec.sm_count
            # Eq. 24 — thread-block supply limits the scaling.
            if rec.tb_running > 0:
                tlp_cap = slowdown_assigned * rec.tb_unfinished / rec.tb_running
                slowdown_all = min(slowdown_all, tlp_cap)
            # Eq. 25 — memory bandwidth demand limits the scaling.
            rmax = request_max(cycles, cfg)
            bw_cap = rmax / shared_requests(rec)
            slowdown_all = min(slowdown_all, max(1.0, bw_cap))
            slowdown_all = max(slowdown_all, 1.0)

        bd = DASEBreakdown(
            mbb=False,
            time_bank=time_bank,
            time_rowbuf=time_rowbuf,
            time_cache=time_cache,
            time_interference=t_interference,
            blp=blp,
            blp_access=blp_access,
            alpha=alpha,
            slowdown_assigned=slowdown_assigned,
            slowdown_all=slowdown_all,
        )
        return slowdown_all, bd

    # -------------------------------------------------------- DASE-Fair API

    def latest_reciprocals(self) -> list[float | None]:
        """Reciprocal slowdowns (Eq. 28) from the latest interval."""
        return [
            None if s is None else 1.0 / max(s, 1.0) for s in self.latest()
        ]
