"""MISE — Memory-interference Induced Slowdown Estimation [23], on a GPU.

MISE's model, ported faithfully:

* slowdown of a memory-intensive application = ARSR / SRSR, where ARSR is
  the request service rate measured while the application holds highest
  memory priority and SRSR the rate during plain shared execution;
* for non-intensive applications the ratio is damped by the stall
  fraction α: slowdown = 1 − α + α · ARSR/SRSR.

The paper's point (§6) is that this is inaccurate on GPUs: (1) priority
does not come close to eliminating interference when request counts are
GPU-scale, and (2) the estimate is relative to alone execution on the
*assigned* SMs, whereas a GPU application alone would use all SMs.  We
implement MISE as published — without all-SM scaling — so those failure
modes are visible.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.core.base import SlowdownEstimator
from repro.core.sampling import PriorityRotator, RateAccumulators
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class MISE(SlowdownEstimator):
    """MISE [HPCA'13] ported to the GPU — see the module docstring."""

    name = "MISE"

    def __init__(
        self,
        config: GPUConfig,
        rotator: PriorityRotator,
        intensive_alpha: float = 0.3,
    ) -> None:
        super().__init__(config)
        self.rotator = rotator
        self.intensive_alpha = intensive_alpha
        self._acc_snap: RateAccumulators | None = None

    def attach(self, gpu: GPU) -> None:
        if self.rotator.gpu is None:
            self.rotator.attach(gpu)
        elif self.rotator.gpu is not gpu:
            raise RuntimeError("rotator attached to a different GPU")
        self._acc_snap = self.rotator.acc.snapshot()
        super().attach(gpu)

    def estimate_interval(
        self, records: list[IntervalRecord]
    ) -> list[float | None]:
        acc_now = self.rotator.acc.snapshot()
        d = acc_now.delta(self._acc_snap)
        self._acc_snap = acc_now
        out: list[float | None] = []
        for rec in records:
            out.append(self._estimate_app(rec, d))
        return out

    def _estimate_app(
        self, rec: IntervalRecord, d: RateAccumulators
    ) -> float | None:
        i = rec.app
        if d.prio_time[i] <= 0 or d.shared_time[i] <= 0:
            return None
        if d.prio_requests[i] <= 0 or d.shared_requests[i] <= 0:
            # No memory traffic → no memory interference to model.
            return 1.0
        arsr = d.prio_requests[i] / d.prio_time[i]
        srsr = d.shared_requests[i] / d.shared_time[i]
        ratio = max(1.0, arsr / srsr)
        alpha = rec.sm.alpha
        if alpha >= self.intensive_alpha:
            return ratio
        return 1.0 - alpha + alpha * ratio
