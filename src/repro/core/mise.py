"""MISE — Memory-interference Induced Slowdown Estimation [23], on a GPU.

MISE's model, ported faithfully:

* slowdown of a memory-intensive application = ARSR / SRSR, where ARSR is
  the request service rate measured while the application holds highest
  memory priority and SRSR the rate during plain shared execution;
* for non-intensive applications the ratio is damped by the stall
  fraction α: slowdown = 1 − α + α · ARSR/SRSR.

The paper's point (§6) is that this is inaccurate on GPUs: (1) priority
does not come close to eliminating interference when request counts are
GPU-scale, and (2) the estimate is relative to alone execution on the
*assigned* SMs, whereas a GPU application alone would use all SMs.  We
implement MISE as published — without all-SM scaling — so those failure
modes are visible.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.core.base import SlowdownEstimator
from repro.core.sampling import PriorityRotator, RateAccumulators
from repro.obs.audit import AuditLog, ModelAudit
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class MISE(SlowdownEstimator):
    """MISE [HPCA'13] ported to the GPU — see the module docstring."""

    name = "MISE"

    def __init__(
        self,
        config: GPUConfig,
        rotator: PriorityRotator,
        intensive_alpha: float = 0.3,
    ) -> None:
        super().__init__(config)
        self.rotator = rotator
        self.intensive_alpha = intensive_alpha
        self._acc_snap: RateAccumulators | None = None

    def attach(self, gpu: GPU) -> None:
        if self.rotator.gpu is None:
            self.rotator.attach(gpu)
        elif self.rotator.gpu is not gpu:
            raise RuntimeError("rotator attached to a different GPU")
        self._acc_snap = self.rotator.acc.snapshot()
        super().attach(gpu)

    def estimate_interval(
        self, records: list[IntervalRecord]
    ) -> list[float | None]:
        acc_now = self.rotator.acc.snapshot()
        d = acc_now.delta(self._acc_snap)
        self._acc_snap = acc_now
        audit = self._audit
        interval = len(self.history)
        out: list[float | None] = []
        for rec in records:
            out.append(self._estimate_app(rec, d, audit, interval))
        return out

    def _estimate_app(
        self,
        rec: IntervalRecord,
        d: RateAccumulators,
        audit: AuditLog | None = None,
        interval: int = 0,
    ) -> float | None:
        i = rec.app
        est: float | None
        skip: str | None = None
        terms: dict[str, float] = {}
        if rec.sm_count == 0:
            # Open-system runs: the app is not resident this interval, so
            # the rotator's rates say nothing about it.
            est, skip = None, "not-resident"
        elif d.prio_time[i] <= 0 or d.shared_time[i] <= 0:
            est, skip = None, "no-priority-epoch"
        elif d.prio_requests[i] <= 0 or d.shared_requests[i] <= 0:
            # No memory traffic → no memory interference to model.
            est = 1.0
            terms = {"no_memory_traffic": True}
        else:
            arsr = d.prio_requests[i] / d.prio_time[i]
            srsr = d.shared_requests[i] / d.shared_time[i]
            ratio = max(1.0, arsr / srsr)
            alpha = rec.sm.alpha
            intensive = alpha >= self.intensive_alpha
            if intensive:
                est = ratio
            else:
                est = 1.0 - alpha + alpha * ratio
            terms = {
                "arsr": arsr,
                "srsr": srsr,
                "ratio": ratio,
                "intensive": intensive,
            }
        if audit is not None:
            inputs = {
                "alpha": rec.sm.alpha,
                "prio_requests": d.prio_requests[i],
                "prio_time": d.prio_time[i],
                "shared_requests": d.shared_requests[i],
                "shared_time": d.shared_time[i],
                "intensive_alpha": self.intensive_alpha,
            }
            fault = rec.extra.get("fault")
            if fault:
                inputs["fault"] = "+".join(fault)
            audit.record_model(ModelAudit(
                model=self.name,
                app=i,
                interval=interval,
                cycle=rec.end,
                estimate=est,
                reciprocal=None if est is None else 1.0 / max(est, 1.0),
                inputs=inputs,
                terms=terms,
                skip_reason=skip,
            ))
        return est
