"""Priority-epoch sampling shared by the MISE and ASM baselines.

Both CPU models rest on the premise that giving one application's requests
the *highest priority* at the memory controller approximates its alone
behaviour.  The rotator implements that mechanism: it cycles through
``[priority(app 0)] [no priority] [priority(app 1)] [no priority] …``
epochs, accumulating per-application served-request and L2-access counts
separately for "own-priority" time and "no-priority" (shared) time.

Estimators snapshot the monotonic accumulators at interval boundaries and
difference them, so one rotator can serve several estimators on one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.sim.gpu import GPU


@dataclass
class RateAccumulators:
    """Monotonic per-app accumulators split by epoch kind."""

    prio_time: list[float]
    prio_requests: list[float]
    prio_accesses: list[float]  # L2 accesses (hits + misses), for ASM's CAR
    shared_time: list[float]
    shared_requests: list[float]
    shared_accesses: list[float]

    @classmethod
    def zeros(cls, n: int) -> "RateAccumulators":
        return cls(*[[0.0] * n for _ in range(6)])

    def snapshot(self) -> "RateAccumulators":
        return RateAccumulators(**{k: list(v) for k, v in vars(self).items()})

    def delta(self, earlier: "RateAccumulators") -> "RateAccumulators":
        return RateAccumulators(
            **{
                k: [a - b for a, b in zip(getattr(self, k), getattr(earlier, k))]
                for k in vars(self)
            }
        )


class PriorityRotator:
    """Drives the priority epochs and owns the rate accumulators."""

    def __init__(
        self,
        config: GPUConfig,
        epoch_cycles: int | None = None,
        gap_ratio: int = 3,
    ) -> None:
        """``epoch_cycles``: length of one priority epoch; each is followed
        by a no-priority gap ``gap_ratio`` times as long (MISE keeps the
        perturbing priority epochs short relative to normal execution)."""
        if gap_ratio < 1:
            raise ValueError("gap_ratio must be >= 1")
        self.config = config
        # Default: each app gets priority for 5% of an interval, padded by
        # longer no-priority gaps used to measure the shared service rate.
        self.epoch_cycles = epoch_cycles or max(500, config.interval_cycles // 20)
        self.gap_ratio = gap_ratio
        self.gpu: GPU | None = None
        self.acc: RateAccumulators | None = None
        self._phase = 0  # even: priority epoch; odd: no-priority gap
        self._applied_prio: int | None = None  # what set_priority_app last saw
        self._req_snap: list[int] = []
        self._acc_snap: list[int] = []

    def attach(self, gpu: GPU) -> None:
        if self.gpu is not None:
            raise RuntimeError("rotator already attached")
        self.gpu = gpu
        n = gpu.n_apps
        self.acc = RateAccumulators.zeros(n)
        self._req_snap = [0] * n
        self._acc_snap = [0] * n
        self._apply_phase()
        gpu.engine.schedule(self._phase_length(), self._on_epoch_end)

    # ------------------------------------------------------------ internals

    def _phase_length(self) -> int:
        if self._phase % 2 == 0:
            return self.epoch_cycles
        return self.epoch_cycles * self.gap_ratio

    def _current_priority(self) -> int | None:
        if self._phase % 2 == 1:
            return None
        n = self.gpu.n_apps
        start = (self._phase // 2) % n
        # Open-system runs: skip non-resident apps (their priority epoch
        # would measure nothing).  Closed systems keep every app active, so
        # this returns ``start`` unchanged.
        for k in range(n):
            i = (start + k) % n
            if self.gpu.app_active[i]:
                return i
        return None

    def _apply_phase(self) -> None:
        # Remember what was actually applied: epoch-end attribution must use
        # this, not a re-evaluation — app_active may have changed mid-epoch.
        self._applied_prio = self._current_priority()
        self.gpu.set_priority_app(self._applied_prio)

    def _collect(self) -> tuple[list[int], list[int]]:
        """Per-app (Δrequests, ΔL2 accesses) since the last epoch boundary."""
        apps = self.gpu.mem_stats.apps
        dreq, dacc = [], []
        for i, a in enumerate(apps):
            req = a.requests_served
            acc = a.l2_hits + a.l2_misses
            dreq.append(req - self._req_snap[i])
            dacc.append(acc - self._acc_snap[i])
            self._req_snap[i] = req
            self._acc_snap[i] = acc
        return dreq, dacc

    def _on_epoch_end(self) -> None:
        prio = self._applied_prio
        dreq, dacc = self._collect()
        dt = float(self._phase_length())
        acc = self.acc
        for i in range(self.gpu.n_apps):
            if prio is None:
                acc.shared_time[i] += dt
                acc.shared_requests[i] += dreq[i]
                acc.shared_accesses[i] += dacc[i]
            elif prio == i:
                acc.prio_time[i] += dt
                acc.prio_requests[i] += dreq[i]
                acc.prio_accesses[i] += dacc[i]
            # Epochs where *another* app has priority measure neither the
            # alone nor the representative shared behaviour — discarded,
            # exactly as in MISE.
        self._phase += 1
        self._apply_phase()
        self.gpu.engine.schedule(self._phase_length(), self._on_epoch_end)
