"""ASM — the Application Slowdown Model [22], on a GPU.

ASM refines MISE by moving the performance proxy from the *memory service
rate* to the *cache access rate* (CAR) and by explicitly correcting for
shared-cache interference: contention misses (detected with a sampled
auxiliary tag directory) both inflate the application's memory traffic and
deflate its alone-time estimate.

Our port: slowdown = CAR_alone / CAR_shared, with

* CAR_shared measured during no-priority epochs;
* CAR_alone measured during the application's highest-priority epochs, with
  the epoch time shrunk by the estimated cost of contention misses (each
  contention miss would have been a cache hit alone, saving the average
  DRAM residency time of this application's requests).

Like MISE — and this is the paper's key criticism — ASM estimates relative
to alone execution on the assigned SMs only.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.core.base import SlowdownEstimator
from repro.core.sampling import PriorityRotator, RateAccumulators
from repro.obs.audit import AuditLog, ModelAudit
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class ASM(SlowdownEstimator):
    """ASM [MICRO'15] ported to the GPU — see the module docstring."""

    name = "ASM"

    def __init__(self, config: GPUConfig, rotator: PriorityRotator) -> None:
        super().__init__(config)
        self.rotator = rotator
        self._acc_snap: RateAccumulators | None = None

    def attach(self, gpu: GPU) -> None:
        if self.rotator.gpu is None:
            self.rotator.attach(gpu)
        elif self.rotator.gpu is not gpu:
            raise RuntimeError("rotator attached to a different GPU")
        self._acc_snap = self.rotator.acc.snapshot()
        super().attach(gpu)

    def estimate_interval(
        self, records: list[IntervalRecord]
    ) -> list[float | None]:
        acc_now = self.rotator.acc.snapshot()
        d = acc_now.delta(self._acc_snap)
        self._acc_snap = acc_now
        audit = self._audit
        interval = len(self.history)
        return [
            self._estimate_app(rec, d, audit, interval) for rec in records
        ]

    def _estimate_app(
        self,
        rec: IntervalRecord,
        d: RateAccumulators,
        audit: AuditLog | None = None,
        interval: int = 0,
    ) -> float | None:
        i = rec.app
        est: float | None
        skip: str | None = None
        terms: dict[str, float] = {}
        if rec.sm_count == 0:
            # Open-system runs: the app is not resident this interval, so
            # the rotator's rates say nothing about it.
            est, skip = None, "not-resident"
        elif d.prio_time[i] <= 0 or d.shared_time[i] <= 0:
            est, skip = None, "no-priority-epoch"
        elif d.prio_accesses[i] <= 0 or d.shared_accesses[i] <= 0:
            est = 1.0
            terms = {"no_cache_traffic": True}
        else:
            car_shared = d.shared_accesses[i] / d.shared_time[i]

            # Contention-miss correction: estimate how much of the
            # priority-epoch time was wasted on misses that would have been
            # hits alone, and remove it from the alone-time denominator.
            cycles = max(1, rec.cycles)
            ellc_rate = rec.ellc_miss / cycles  # contention misses per cycle
            # Cost of one avoidable miss = the DRAM service time it adds (row
            # activation + column access + burst); queueing delay is excluded
            # because the alone run would not have experienced today's queues.
            d_cfg = self.config.dram
            miss_cost = self.config.dram_cycles_to_core(
                d_cfg.tRP + d_cfg.tRCD + d_cfg.tCL + d_cfg.tBurst
            )
            wasted = min(
                ellc_rate * d.prio_time[i] * miss_cost, 0.5 * d.prio_time[i]
            )
            car_alone = d.prio_accesses[i] / (d.prio_time[i] - wasted)
            est = max(1.0, car_alone / car_shared)
            terms = {
                "car_shared": car_shared,
                "car_alone": car_alone,
                "ellc_rate": ellc_rate,
                "miss_cost": miss_cost,
                "wasted_prio_time": wasted,
            }
        if audit is not None:
            inputs = {
                "alpha": rec.sm.alpha,
                "ellc_miss": rec.ellc_miss,
                "prio_accesses": d.prio_accesses[i],
                "prio_time": d.prio_time[i],
                "shared_accesses": d.shared_accesses[i],
                "shared_time": d.shared_time[i],
            }
            fault = rec.extra.get("fault")
            if fault:
                inputs["fault"] = "+".join(fault)
            audit.record_model(ModelAudit(
                model=self.name,
                app=i,
                interval=interval,
                cycle=rec.end,
                estimate=est,
                reciprocal=None if est is None else 1.0 / max(est, 1.0),
                inputs=inputs,
                terms=terms,
                skip_reason=skip,
            ))
        return est
