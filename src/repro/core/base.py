"""Common estimator plumbing.

An estimator attaches to a :class:`~repro.sim.gpu.GPU`, receives one
:class:`~repro.sim.stats.IntervalRecord` per application at every interval
boundary (paper: 50K cycles), produces a per-application slowdown estimate
for that interval, and exposes the run-level estimate as the mean over
intervals — the paper's "sampled by averaging it over a period of time".
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.inject import FaultInjector
    from repro.obs.audit import AuditLog


class SlowdownEstimator(abc.ABC):
    """Base class for run-time slowdown estimators."""

    name: str = "base"

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.gpu: GPU | None = None
        #: One entry per interval: list of per-app estimates (None = no
        #: estimate possible this interval, e.g. degenerate counters).
        self.history: list[list[float | None]] = []
        #: Audit sink (repro.obs.audit), resolved once at attach time —
        #: None keeps the unaudited path to a single attribute check.
        self._audit: "AuditLog | None" = None
        #: Fault injector (repro.faults), or None for the exact-counter
        #: path — same zero-overhead shape as ``_audit``: the unfaulted
        #: run pays one attribute check per interval, nothing more.
        self._faults: "FaultInjector | None" = None

    def attach(self, gpu: GPU) -> None:
        if self.gpu is not None:
            raise RuntimeError(f"{self.name} is already attached")
        self.gpu = gpu
        if gpu.obs is not None:
            self._audit = gpu.obs.audit
        gpu.add_interval_listener(self._on_interval)

    def inject_faults(self, injector: "FaultInjector | None") -> None:
        """Route this estimator's interval inputs through ``injector``.

        Must be called before the run starts; pass None to restore the
        exact-counter path.  All consumers of one run should share a
        single injector so they agree on the delivered view.
        """
        self._faults = injector

    def _on_interval(self, records: list[IntervalRecord]) -> None:
        inj = self._faults
        if inj is None:
            self.history.append(self.estimate_interval(records))
            return
        # gpu.interval_history gains the record list *before* listeners
        # fire, so the current interval index is len - 1.
        view = inj.deliver(len(self.gpu.interval_history) - 1, records)
        row = self.estimate_interval(view.records)
        if view.skipped:
            # Nothing arrived for these apps this interval: no estimate.
            row = [
                None if app in view.skipped else est
                for app, est in enumerate(row)
            ]
        self.history.append(row)

    @abc.abstractmethod
    def estimate_interval(
        self, records: list[IntervalRecord]
    ) -> list[float | None]:
        """Per-application slowdown estimates for one interval."""

    def latest(self) -> list[float | None]:
        """Most recent interval's estimates (empty history → empty list)."""
        return list(self.history[-1]) if self.history else []

    def mean_estimate(self, app: int, warmup_intervals: int = 1) -> float | None:
        """Run-level estimate: mean over intervals, skipping warmup.

        Returns None when no interval produced an estimate for ``app``.
        """
        vals = [
            row[app]
            for row in self.history[warmup_intervals:]
            if row[app] is not None
        ]
        if not vals:
            vals = [row[app] for row in self.history if row[app] is not None]
        if not vals:
            return None
        return sum(vals) / len(vals)

    def mean_estimates(self, warmup_intervals: int = 1) -> list[float | None]:
        if not self.history:
            return []
        n = len(self.history[0])
        return [self.mean_estimate(a, warmup_intervals) for a in range(n)]
