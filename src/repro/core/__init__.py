"""Slowdown estimation models: DASE (the paper's contribution) and the two
CPU state-of-the-art baselines it compares against, MISE [23] and ASM [22]."""

from repro.core.base import SlowdownEstimator
from repro.core.classify import is_mbb, request_max
from repro.core.dase import DASE
from repro.core.sampling import PriorityRotator
from repro.core.mise import MISE
from repro.core.asm import ASM

__all__ = [
    "SlowdownEstimator",
    "DASE",
    "MISE",
    "ASM",
    "PriorityRotator",
    "is_mbb",
    "request_max",
]
