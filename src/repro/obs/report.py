"""Self-contained HTML run report.

One file, no external assets, no JavaScript: inline SVG time-series charts
(per-app IPC, α, slowdown estimates per model vs the measured slowdown,
SM-partition timeline), a DRAM bank-heat matrix, the event taxonomy, and a
plain table view of every series.  Light and dark mode are both styled via
CSS custom properties (the dark values are selected steps of the same
hues, not an automatic flip).

Charts follow the repo's charting conventions: one categorical hue per
*application* in fixed slot order everywhere (an app keeps its color
across every chart; models are distinguished by small multiples, not
hues), a single y axis per chart, thin 2px lines with hoverable sample
markers, recessive grid, legends plus direct end-labels, and a sequential
one-hue ramp for the bank-heat magnitudes.
"""

from __future__ import annotations

import html as _html
import os
from string import Template
from typing import TYPE_CHECKING, Sequence

from repro.obs.export import bank_heat, trace_summary
from repro.obs.tracer import EventTracer

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.harness.experiments import DegradationResult
    from repro.harness.runner import WorkloadResult
    from repro.opensys.churn import ChurnResult
    from repro.obs.audit import AuditLog, DecisionAudit
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import Telemetry

# Categorical app colors — fixed slot order, light / dark steps of the same
# hues (validated order: adjacent pairs clear CVD and normal-vision gates).
_APP_COLORS_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100")
_APP_COLORS_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500")

# Sequential blue ramp (light→dark) for the bank-heat magnitudes.
_SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_W, _H = 640, 230
_ML, _MR, _MT, _MB = 52, 110, 14, 30  # right margin hosts direct labels


def _esc(s: object) -> str:
    return _html.escape(str(s))


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e6:
        return str(int(v))
    return f"{v:.3g}" if abs(v) >= 0.01 else f"{v:.2e}"


def _ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    if hi <= lo:
        hi = lo + 1.0
    step = (hi - lo) / n
    return [lo + i * step for i in range(n + 1)]


def _line_chart(
    title: str,
    series: Sequence[dict],
    y_label: str = "",
    x_label: str = "cycle",
) -> str:
    """One SVG line chart.

    ``series``: dicts with ``label``, ``slot`` (app color slot), ``points``
    (list of (x, y)), optional ``dash`` (True → dashed reference series).
    """
    pts_all = [p for s in series for p in s["points"]]
    if not pts_all:
        return ""
    xs = [p[0] for p in pts_all]
    ys = [p[1] for p in pts_all]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if y1 <= y0:
        y1 = y0 + 1.0
    pad = 0.08 * (y1 - y0)
    y0 = min(y0, 0.0) if y0 >= 0 and y0 < 0.25 * y1 else y0 - pad
    y1 = y1 + pad
    if x1 <= x0:
        x1 = x0 + 1
    iw = _W - _ML - _MR
    ih = _H - _MT - _MB

    def sx(x: float) -> float:
        return _ML + (x - x0) / (x1 - x0) * iw

    def sy(y: float) -> float:
        return _MT + ih - (y - y0) / (y1 - y0) * ih

    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{_esc(title)}">'
    ]
    # Recessive grid + y ticks.
    for ty in _ticks(y0, y1):
        gy = sy(ty)
        parts.append(
            f'<line x1="{_ML}" y1="{gy:.1f}" x2="{_W - _MR}" y2="{gy:.1f}" '
            f'class="grid"/>'
            f'<text x="{_ML - 6}" y="{gy + 3.5:.1f}" class="tick" '
            f'text-anchor="end">{_fmt(ty)}</text>'
        )
    for tx in _ticks(x0, x1):
        gx = sx(tx)
        parts.append(
            f'<text x="{gx:.1f}" y="{_H - 8}" class="tick" '
            f'text-anchor="middle">{_fmt(tx)}</text>'
        )
    parts.append(
        f'<line x1="{_ML}" y1="{_MT + ih}" x2="{_W - _MR}" '
        f'y2="{_MT + ih}" class="axis"/>'
    )
    # Series lines, markers, direct end-labels (nudged apart).
    ends: list[tuple[float, int]] = []
    for i, s in enumerate(series):
        pts = s["points"]
        if not pts:
            continue
        color = f"var(--series-{s['slot'] % len(_APP_COLORS_LIGHT) + 1})"
        dash = ' stroke-dasharray="5 4"' if s.get("dash") else ""
        poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(
            f'<polyline points="{poly}" fill="none" stroke="{color}" '
            f'stroke-width="2"{dash}/>'
        )
        if not s.get("dash"):
            for x, y in pts:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2.6" '
                    f'fill="{color}"><title>{_esc(s["label"])} @ '
                    f'{_fmt(x)}: {_fmt(y)}</title></circle>'
                )
        ends.append((sy(pts[-1][1]), i))
    ends.sort()
    prev = -1e9
    for ey, i in ends:
        s = series[i]
        ly = max(ey, prev + 12)
        prev = ly
        parts.append(
            f'<text x="{_W - _MR + 6}" y="{ly + 3.5:.1f}" '
            f'class="dlabel">{_esc(s["label"])}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="{_ML}" y="{_MT - 2}" class="tick">{_esc(y_label)}'
            "</text>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="chip"><span class="swatch" style="background:'
        f'var(--series-{s["slot"] % len(_APP_COLORS_LIGHT) + 1})'
        f'{";border-radius:0;height:2px;margin-bottom:4px" if s.get("dash") else ""}'
        f'"></span>{_esc(s["label"])}</span>'
        for s in series
        if s["points"]
    )
    return (
        f'<figure><figcaption>{_esc(title)}</figcaption>'
        f"{''.join(parts)}<div class=\"legend\">{legend}</div></figure>"
    )


def _summary_table(result: "WorkloadResult") -> str:
    models = sorted(result.estimates)
    head = "".join(
        f"<th>{_esc(h)}</th>"
        for h in ["app", "SMs", "actual slowdown"] + [f"{m} est." for m in models]
    )
    rows = []
    for i, name in enumerate(result.names):
        act = result.actual_slowdowns[i]
        cells = [
            f"<td>{_esc(name)}</td>",
            f"<td>{result.sm_partition[i]}</td>",
            f"<td>{'—' if act is None else f'{act:.3f}'}</td>",
        ]
        for m in models:
            e = result.estimates[m][i]
            cells.append(f"<td>{'—' if e is None else f'{e:.3f}'}</td>")
        rows.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        f"<p class='note'>shared window {result.shared_cycles} cycles · "
        f"unfairness {result.actual_unfairness:.3f} · harmonic speedup "
        f"{result.actual_hspeedup:.4f}</p>"
    )


def _bank_heat_section(tracer: EventTracer) -> str:
    heat = bank_heat(tracer)
    if not heat:
        return ""
    n_parts = max(p for p, _ in heat) + 1
    n_banks = max(b for _, b in heat) + 1
    peak = max(heat.values())
    rows = []
    for p in range(n_parts):
        cells = [f'<th scope="row">part{p}</th>']
        for b in range(n_banks):
            v = heat.get((p, b), 0)
            idx = 0 if peak == 0 else round(v / peak * (len(_SEQ_RAMP) - 1))
            fg = "#ffffff" if idx >= 7 else "#0b0b0b"
            cells.append(
                f'<td style="background:{_SEQ_RAMP[idx]};color:{fg}" '
                f'title="part{p}/bank{b}: {v} requests">{v}</td>'
            )
        rows.append("<tr>" + "".join(cells) + "</tr>")
    head = "<th></th>" + "".join(f"<th>b{b}</th>" for b in range(n_banks))
    note = (
        "serviced DRAM requests per (partition, bank) — from the "
        "<code>dram.service</code> events retained in the trace ring"
    )
    if tracer.dropped:
        note += f" ({tracer.dropped} oldest events overwritten)"
    return (
        "<h2>DRAM bank heat</h2>"
        f'<table class="heat"><thead><tr>{head}</tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>"
        f"<p class='note'>{note}</p>"
    )


def _taxonomy_section(tracer: EventTracer) -> str:
    summary = trace_summary(tracer)
    rows = "".join(
        f"<tr><td><code>{_esc(n)}</code></td><td>{c}</td></tr>"
        for n, c in summary["by_name"].items()
    )
    return (
        "<h2>Recorded events</h2>"
        "<table><thead><tr><th>event</th><th>retained</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>"
        f"<p class='note'>{summary['events_emitted']} emitted · "
        f"{summary['events_retained']} retained · "
        f"{summary['events_dropped']} dropped (ring capacity "
        f"{summary['capacity']}) · engine dispatched "
        f"{summary['engine']['events_dispatched']} events</p>"
    )


def _table_view(telemetry: "Telemetry") -> str:
    """Accessible table view of every plotted series."""
    csv_text = telemetry.to_csv()
    lines = csv_text.strip().splitlines()
    if len(lines) < 2:
        return ""
    head = "".join(f"<th>{_esc(c)}</th>" for c in lines[0].split(","))
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in ln.split(",")) + "</tr>"
        for ln in lines[1:]
    )
    return (
        "<details><summary>Table view (all interval samples)</summary>"
        f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
        "</details>"
    )


def _error_section(
    audit: "AuditLog", result: "WorkloadResult", label
) -> str:
    """Per-model estimate-vs-actual relative-error timelines."""
    charts: list[str] = []
    for model in audit.models():
        series = []
        for a in range(len(result.names)):
            pts = audit.error_series(model, a, result.actual_slowdowns[a])
            series.append({"label": label(a), "slot": a, "points": pts})
        chart = _line_chart(
            f"{model} relative error per interval", series,
            y_label="|est − actual| / actual",
        )
        if chart:
            charts.append(chart)
    if not charts:
        return ""
    return (
        "<h2>Estimate-vs-actual error</h2>"
        "<p class='note'>per-interval estimate against the run-level "
        "measured slowdown (matched-instruction alone replay) — from the "
        "<code>audit.model</code> records</p>" + "".join(charts)
    )


def _fmt_part(part: Sequence[int] | None) -> str:
    return "—" if part is None else "+".join(str(p) for p in part)


def _candidate_details(d: "DecisionAudit", label) -> str:
    """Expandable candidate-score table for one scored decision."""
    ranked = sorted(d.candidates, key=lambda cu: cu[1])
    shown = ranked[:15]
    rows = []
    for part, unf in shown:
        mark = " ←" if part == d.target else ""
        rows.append(
            f"<tr><td>{_fmt_part(part)}</td><td>{unf:.4f}{mark}</td></tr>"
        )
    more = (
        f"<p class='note'>… {len(ranked) - len(shown)} more candidates "
        "omitted (full list in audit.json)</p>"
        if len(ranked) > len(shown) else ""
    )
    interp = ""
    if d.interpolation and d.reciprocals:
        cells = "".join(
            f"<tr><td>{label(a)}</td><td>{d.reciprocals[a]:.4f}</td>"
            f"<td>{d.interpolation[a][d.target[a] - 1]:.4f}</td></tr>"
            for a in range(len(d.interpolation))
        )
        interp = (
            "<table><thead><tr><th>app</th><th>reciprocal (Eq. 28)</th>"
            "<th>predicted at target (Eqs. 29-30)</th></tr></thead>"
            f"<tbody>{cells}</tbody></table>"
        )
    return (
        f"<details><summary>cycle {d.cycle}: {len(ranked)} candidate "
        f"partitions scored — chosen {_fmt_part(d.target)} "
        f"(predicted unfairness {d.predicted_unfairness:.4f})</summary>"
        f"{interp}"
        "<table><thead><tr><th>partition</th><th>predicted unfairness</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>{more}"
        "</details>"
    )


def _decision_section(audit: "AuditLog", label) -> str:
    """DASE-Fair decision timeline: every evaluation, with its scores."""
    decisions = audit.decision_audits
    if not decisions:
        return ""
    body: list[str] = ["<h2>DASE-Fair decision timeline</h2>"]
    # Unfairness trajectory: measured-now vs predicted-at-target.
    cur_pts = [
        (d.cycle, d.current_unfairness)
        for d in decisions if d.current_unfairness is not None
    ]
    pred_pts = [
        (d.cycle, d.predicted_unfairness)
        for d in decisions if d.predicted_unfairness is not None
    ]
    chart = _line_chart(
        "Estimated unfairness at each decision",
        [
            {"label": "current partition", "slot": 0, "points": cur_pts},
            {"label": "best candidate", "slot": 1, "points": pred_pts},
        ],
        y_label="unfairness",
    )
    if chart:
        body.append(chart)
    head = "".join(
        f"<th>{h}</th>"
        for h in ["cycle", "action", "reason", "partition", "target",
                  "unfairness", "predicted", "plan"]
    )
    rows = []
    for d in decisions:
        plan = (
            "—" if not d.plan else "; ".join(
                f"{label(f)}→{label(t)}×{k}" for f, t, k in d.plan
            )
        )
        rows.append(
            "<tr>"
            f"<td>{d.cycle}</td><td>{_esc(d.action)}</td>"
            f"<td>{_esc(d.reason)}</td>"
            f"<td>{_fmt_part(d.current)}</td><td>{_fmt_part(d.target)}</td>"
            f"<td>{'—' if d.current_unfairness is None else f'{d.current_unfairness:.4f}'}</td>"
            f"<td>{'—' if d.predicted_unfairness is None else f'{d.predicted_unfairness:.4f}'}</td>"
            f"<td>{_esc(plan)}</td>"
            "</tr>"
        )
    body.append(
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
        "<p class='note'>one row per interval evaluation; "
        "<code>recommend</code> = dry-run (shadow) decision that did not "
        "move SMs</p>"
    )
    for d in decisions:
        if d.candidates:
            body.append(_candidate_details(d, label))
    return "".join(body)


_PAGE = Template("""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>${title}</title>
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e8e7e3;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
body { margin: 0; }
.viz-root {
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  max-width: 880px; margin: 0 auto; padding: 24px 16px 64px;
}
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
figure { margin: 20px 0 8px; }
figcaption { font-weight: 600; margin-bottom: 6px; }
svg { width: 100%; height: auto; display: block; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--text-secondary); stroke-width: 1; }
svg .tick { fill: var(--text-secondary); font-size: 10px; }
svg .dlabel { fill: var(--text-secondary); font-size: 11px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin-top: 4px;
  color: var(--text-secondary); font-size: 12px; }
.chip { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 10px; height: 10px; border-radius: 3px;
  display: inline-block; }
table { border-collapse: collapse; margin: 8px 0; font-size: 13px; }
th, td { padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; }
table.heat td { text-align: center; padding: 3px 6px; min-width: 30px; }
.note { color: var(--text-secondary); font-size: 12px; }
code { font-size: 12px; }
details summary { cursor: pointer; margin-top: 20px;
  color: var(--text-secondary); }
</style>
</head>
<body><div class="viz-root">
<h1>${title}</h1>
<p class="note">${subtitle}</p>
${body}
</div></body>
</html>
""")


def line_chart(
    title: str,
    series: Sequence[dict],
    y_label: str = "",
    x_label: str = "cycle",
) -> str:
    """Public entry to the repo's standard SVG line chart (see
    :func:`_line_chart` for the series dict shape) — used by the store's
    trajectory dashboard so every scope shares one charting idiom."""
    return _line_chart(title, series, y_label=y_label, x_label=x_label)


def render_page(title: str, subtitle: str, body: str) -> str:
    """Wrap pre-built ``body`` HTML in the repo's standard self-contained
    page shell (inline CSS, light/dark via custom properties, no JS)."""
    return _PAGE.substitute(title=_esc(title), subtitle=_esc(subtitle),
                            body=body)


def render_html_report(
    result: "WorkloadResult | None" = None,
    telemetry: "Telemetry | None" = None,
    tracer: EventTracer | None = None,
    registry: "MetricsRegistry | None" = None,
    audit: "AuditLog | None" = None,
    title: str = "repro run report",
) -> str:
    """Build the full report; every argument is optional and independent."""
    body: list[str] = []
    app_names: list[str] = []
    if result is not None:
        app_names = list(result.names)
        body.append("<h2>Run summary</h2>")
        body.append(_summary_table(result))
    elif tracer is not None:
        app_names = list(tracer.topology.get("app_names", []))

    def label(a: int) -> str:
        return app_names[a] if a < len(app_names) else f"app{a}"

    if telemetry is not None and telemetry.samples:
        apps = sorted({s.app for s in telemetry.samples})

        def app_series(fieldname: str) -> list[dict]:
            return [
                {
                    "label": label(a),
                    "slot": a,
                    "points": list(
                        zip(telemetry.cycles_of(a), telemetry.series(a, fieldname))
                    ),
                }
                for a in apps
            ]

        body.append("<h2>Per-application time series</h2>")
        body.append(_line_chart("IPC per interval", app_series("ipc"),
                                y_label="IPC"))
        body.append(_line_chart(
            "Memory-stall fraction α", app_series("alpha"), y_label="α"))
        est_names = sorted(telemetry.estimators)
        if est_names:
            body.append("<h2>Slowdown estimates (solid) vs measured "
                        "slowdown (dashed)</h2>")
        for model in est_names:
            series: list[dict] = []
            for a in apps:
                pts = [
                    (c, v)
                    for c, v in zip(
                        telemetry.cycles_of(a), telemetry.series(a, model)
                    )
                    if v is not None
                ]
                series.append(
                    {"label": label(a), "slot": a, "points": pts}
                )
                if result is not None and pts:
                    actual = result.actual_slowdowns[a]
                    series.append({
                        "label": f"{label(a)} actual",
                        "slot": a,
                        "dash": True,
                        "points": [
                            (pts[0][0], actual), (pts[-1][0], actual)
                        ],
                    })
            body.append(_line_chart(
                f"{model} slowdown estimate", series, y_label="slowdown"))
        body.append(_line_chart(
            "SM partition timeline", app_series("sm_count"), y_label="SMs"))

    if audit is not None:
        if result is not None and audit.model_audits:
            body.append(_error_section(audit, result, label))
        body.append(_decision_section(audit, label))

    if tracer is not None:
        body.append(_bank_heat_section(tracer))
        body.append(_taxonomy_section(tracer))

    if registry is not None and len(registry):
        rows = "".join(
            f"<tr><td><code>{_esc(n)}</code></td><td>{_esc(inst.kind)}</td>"
            f"<td>{_fmt(inst.value) if hasattr(inst, 'value') else _fmt(inst.mean)}"
            "</td></tr>"
            for n, inst in sorted(registry.subtree("run").items())
        )
        if rows:
            body.append(
                "<h2>Run metrics</h2>"
                "<table><thead><tr><th>metric</th><th>type</th>"
                f"<th>value</th></tr></thead><tbody>{rows}</tbody></table>"
            )

    if telemetry is not None and telemetry.samples:
        body.append(_table_view(telemetry))

    subtitle = "generated by repro.obs — interval telemetry + event trace"
    if result is not None:
        subtitle = (
            " + ".join(_esc(n) for n in result.names) + " · " + subtitle
        )
    return _PAGE.substitute(
        title=_esc(title), subtitle=subtitle, body="\n".join(body)
    )


def export_html_report(path: str | os.PathLike, **kw) -> str:
    html = render_html_report(**kw)
    with open(path, "w") as fh:
        fh.write(html)
    return html


def _sweep_gantt(trace_payload: dict) -> str:
    """Per-worker gantt of job slices from a sweep Chrome-trace payload."""
    slices = [
        ev for ev in trace_payload.get("traceEvents", [])
        if ev.get("ph") == "X" and ev.get("tid") == 0
    ]
    if not slices:
        return ""
    pids = sorted({ev["pid"] for ev in slices})
    t_hi = max(ev["ts"] + ev.get("dur", 0.0) for ev in slices) or 1.0
    row_h, gap, left = 26, 6, 110
    width = 760
    height = len(pids) * (row_h + gap) + 24
    iw = width - left - 12
    parts = [
        f'<svg viewBox="0 0 {width} {height}" role="img" '
        f'aria-label="per-worker job timeline">'
    ]
    for row, pid in enumerate(pids):
        y = row * (row_h + gap)
        parts.append(
            f'<text x="{left - 8}" y="{y + row_h / 2 + 4:.1f}" '
            f'class="tick" text-anchor="end">worker {pid}</text>'
        )
        for ev in slices:
            if ev["pid"] != pid:
                continue
            x = left + ev["ts"] / t_hi * iw
            w = max(1.5, ev.get("dur", 0.0) / t_hi * iw)
            ok = (ev.get("args") or {}).get("ok", True)
            color = "var(--series-1)" if ok else "var(--series-2)"
            dur_s = ev.get("dur", 0.0) / 1e6
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h}" rx="3" fill="{color}" opacity="0.85">'
                f'<title>{_esc(ev.get("name", "?"))}: {dur_s:.2f}s</title>'
                "</rect>"
            )
    parts.append(
        f'<text x="{left}" y="{height - 6}" class="tick">0s</text>'
        f'<text x="{width - 12}" y="{height - 6}" class="tick" '
        f'text-anchor="end">{t_hi / 1e6:.1f}s</text>'
    )
    parts.append("</svg>")
    return (
        "<figure><figcaption>Per-worker job timeline "
        "(red = failed slice)</figcaption>" + "".join(parts) + "</figure>"
    )


def render_sweep_report(
    stats: dict,
    trace_payload: dict | None = None,
    profile_rows: "Sequence[Sequence[str]] | None" = None,
    title: str = "repro sweep report",
) -> str:
    """Sweep-scope HTML report from a ``sweep.json`` stats payload
    (:meth:`repro.obs.bus.SweepStats.to_dict`), optionally with the sweep
    Chrome-trace payload (per-worker gantt) and a merged-profile table.
    """
    body: list[str] = []
    body.append("<h2>Sweep summary</h2>")
    lat = stats.get("latency") or {}
    body.append(
        "<table><thead><tr><th>jobs</th><th>ok</th><th>failed</th>"
        "<th>resumed</th><th>wall</th><th>busy</th><th>cpu</th>"
        "<th>workers</th><th>efficiency</th></tr></thead><tbody><tr>"
        f"<td>{stats.get('n_jobs', 0)}</td><td>{stats.get('ok', 0)}</td>"
        f"<td>{stats.get('failed', 0)}</td>"
        f"<td>{stats.get('resumed', 0)}</td>"
        f"<td>{stats.get('wall_s', 0.0):.1f}s</td>"
        f"<td>{stats.get('busy_s', 0.0):.1f}s</td>"
        f"<td>{stats.get('cpu_s', 0.0):.1f}s</td>"
        f"<td>{len(stats.get('workers') or {})}</td>"
        f"<td>{stats.get('parallel_efficiency', 0.0):.0%}</td>"
        "</tr></tbody></table>"
    )
    if lat:
        cells = "".join(
            f"<td>{lat[k]:.2f}s</td>"
            for k in ("p50", "p95", "p99", "mean", "max") if k in lat
        )
        heads = "".join(
            f"<th>{k}</th>"
            for k in ("p50", "p95", "p99", "mean", "max") if k in lat
        )
        body.append(
            "<h2>Job latency</h2>"
            f"<table><thead><tr>{heads}</tr></thead>"
            f"<tbody><tr>{cells}</tr></tbody></table>"
        )
    if trace_payload is not None:
        gantt = _sweep_gantt(trace_payload)
        if gantt:
            body.append("<h2>Worker timeline</h2>")
            body.append(gantt)
    phases = stats.get("phases") or {}
    if phases:
        rows = "".join(
            f"<tr><td><code>{_esc(n)}</code></td>"
            f"<td>{int(row.get('count', 0))}</td>"
            f"<td>{row.get('total_s', 0.0):.2f}s</td></tr>"
            for n, row in sorted(
                phases.items(), key=lambda kv: -kv[1].get("total_s", 0)
            )
        )
        body.append(
            "<h2>Phase breakdown</h2>"
            "<table><thead><tr><th>phase</th><th>count</th>"
            f"<th>total</th></tr></thead><tbody>{rows}</tbody></table>"
        )
    cache = stats.get("cache") or {}
    if cache:
        body.append(
            "<h2>Replay-cache economics</h2>"
            f"<p class='note'>{cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(hit rate {cache.get('hit_rate', 0.0):.0%}) — "
            f"≈{cache.get('est_saved_s', 0.0):.1f}s of alone-replay time "
            "saved (hits × mean uncached replay − time spent on cached "
            "probes)</p>"
        )
    backends = stats.get("backends") or {}
    if backends:
        rows = "".join(
            f"<tr><td><code>{_esc(n)}</code></td>"
            f"<td>{int(row.get('jobs', 0))}</td>"
            f"<td>{row.get('total_s', 0.0):.2f}s</td></tr>"
            for n, row in sorted(backends.items())
        )
        body.append(
            "<h2>Per-backend split</h2>"
            "<table><thead><tr><th>backend</th><th>jobs</th>"
            f"<th>total</th></tr></thead><tbody>{rows}</tbody></table>"
        )
    workers = stats.get("workers") or {}
    if workers:
        rows = "".join(
            f"<tr><td>{_esc(pid)}</td><td>{int(w.get('jobs', 0))}</td>"
            f"<td>{w.get('busy_s', 0.0):.2f}s</td>"
            f"<td>{w.get('cpu_s', 0.0):.2f}s</td>"
            f"<td>{int(w.get('rss_peak_kb', 0))}</td></tr>"
            for pid, w in sorted(workers.items())
        )
        body.append(
            "<h2>Workers</h2>"
            "<table><thead><tr><th>pid</th><th>jobs</th><th>busy</th>"
            f"<th>cpu</th><th>peak RSS (kB)</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    stragglers = stats.get("stragglers") or []
    if stragglers:
        rows = "".join(
            f"<tr><td>{s.get('job')}</td><td>{_esc(s.get('key', '?'))}</td>"
            f"<td>{s.get('dur_s', 0.0):.2f}s</td>"
            f"<td>{s.get('ratio', 0.0):.1f}×</td>"
            f"<td><code>{_esc(s.get('dominant_phase', '?'))}</code> "
            f"({s.get('phase_s', 0.0):.2f}s)</td></tr>"
            for s in stragglers
        )
        body.append(
            "<h2>Stragglers (&gt; 2× p50)</h2>"
            "<table><thead><tr><th>job</th><th>key</th><th>duration</th>"
            f"<th>× p50</th><th>dominant phase</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    failures = stats.get("failures") or []
    if failures:
        rows = "".join(
            f"<tr><td>{f.get('job')}</td><td>{_esc(f.get('key', '?'))}</td>"
            f"<td>{_esc(f.get('kind', '?'))}</td>"
            f"<td>{f.get('attempts', 1)}</td></tr>"
            for f in failures
        )
        body.append(
            "<h2>Failures</h2>"
            "<table><thead><tr><th>job</th><th>key</th><th>kind</th>"
            f"<th>attempts</th></tr></thead><tbody>{rows}</tbody></table>"
        )
    if profile_rows:
        rows = "".join(
            "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in r) + "</tr>"
            for r in profile_rows
        )
        body.append(
            "<h2>Sweep-wide hot functions (merged cProfile)</h2>"
            "<table><thead><tr><th>calls</th><th>tottime</th>"
            f"<th>cumtime</th><th>function</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    return _PAGE.substitute(
        title=_esc(title),
        subtitle="generated by repro.obs.bus — cross-worker sweep telemetry",
        body="\n".join(body),
    )


def export_sweep_report(
    path: str | os.PathLike,
    stats: dict,
    trace_payload: dict | None = None,
    profile_rows: "Sequence[Sequence[str]] | None" = None,
    title: str = "repro sweep report",
) -> str:
    html = render_sweep_report(
        stats, trace_payload=trace_payload, profile_rows=profile_rows,
        title=title,
    )
    with open(path, "w") as fh:
        fh.write(html)
    return html


def render_degradation_report(result: "DegradationResult") -> str:
    """Degradation panel: DASE error and DASE-Fair unfairness vs noise σ.

    Charts the two curves of a :class:`~repro.harness.experiments.
    DegradationResult` — estimation error from the policy-free runs and
    achieved unfairness from the DASE-Fair runs — against the injected
    counter-noise intensity, plus a point table and the monotonicity
    verdict the chaos suite enforces.
    """
    body: list[str] = []
    pair = "+".join(result.pair)
    body.append("<h2>Estimation accuracy under counter faults</h2>")
    err = result.error_curve()
    if err:
        body.append(_line_chart(
            f"DASE mean relative error vs noise σ ({pair})",
            [{"label": "DASE error", "slot": 0, "points": err}],
            y_label="mean |est − actual| / actual", x_label="noise σ",
        ))
    unf = result.unfairness_curve()
    if unf:
        body.append(_line_chart(
            f"DASE-Fair achieved unfairness vs noise σ ({pair})",
            [{"label": "unfairness", "slot": 1, "points": unf}],
            y_label="unfairness", x_label="noise σ",
        ))
    rows = "".join(
        f"<tr><td>{_fmt(s)}</td>"
        f"<td>{_fmt(result.dase_error[s]) if s in result.dase_error else '-'}"
        "</td>"
        f"<td>{_fmt(result.unfairness[s]) if s in result.unfairness else '-'}"
        "</td></tr>"
        for s in result.sigmas
    )
    body.append(
        "<table><thead><tr><th>σ</th><th>DASE error</th>"
        f"<th>unfairness</th></tr></thead><tbody>{rows}</tbody></table>"
    )
    verdict = (
        "error curve is monotone non-decreasing in σ"
        if result.error_is_monotone()
        else "error curve is NOT monotone in σ"
    )
    body.append(f"<p class=\"note\">{_esc(verdict)} · seed "
                f"{result.seed} · same seed at every σ (common random "
                "numbers), so points differ only in intensity.</p>")
    if result.failures:
        items = "".join(
            f"<tr><td><code>{_esc(k)}</code></td><td>{_esc(v)}</td></tr>"
            for k, v in sorted(result.failures.items())
        )
        body.append(
            "<h2>Failed runs</h2><table><thead><tr><th>run</th>"
            f"<th>error</th></tr></thead><tbody>{items}</tbody></table>"
        )
    return _PAGE.substitute(
        title=_esc(f"fault degradation — {pair}"),
        subtitle="generated by repro fig-degradation — "
                 "repro.faults counter-noise sweep",
        body="\n".join(body),
    )


def export_degradation_report(
    path: str | os.PathLike, result: "DegradationResult"
) -> str:
    html = render_degradation_report(result)
    with open(path, "w") as fh:
        fh.write(html)
    return html


def render_churn_report(result: "ChurnResult") -> str:
    """Churn panels: DASE error and the fairness readout vs arrival rate.

    Three views of a :class:`~repro.opensys.churn.ChurnResult`: estimator
    error per policy, each fairness metric's even/fair ratio (so the five
    metrics share one axis), and the per-rate verdict table with
    disagreements called out — the chart the nonstationarity test layer
    pins (docs/model.md on why the metrics may disagree).
    """
    body: list[str] = []
    base = "+".join(result.base)
    rates = result.rates
    body.append("<h2>Estimation accuracy under churn</h2>")
    err_series = []
    for slot, label in enumerate(("even", "fair")):
        curve = result.dase_error.get(label, {})
        pts = [(r, curve[r]) for r in rates if r in curve]
        if pts:
            err_series.append({"label": label, "slot": slot, "points": pts})
    if err_series:
        body.append(_line_chart(
            f"DASE mean relative error vs arrival rate ({base})",
            err_series,
            y_label="mean |est − actual| / actual",
            x_label="arrivals per kilocycle",
        ))

    body.append("<h2>Fairness metrics vs arrival rate</h2>")
    metric_names = ("unfairness", "jain", "p95", "p99", "gini_wait")
    ratio_series = []
    for slot, name in enumerate(metric_names):
        pts = []
        for r in rates:
            even = result.metrics.get("even", {}).get(r, {})
            fair = result.metrics.get("fair", {}).get(r, {})
            if name in even and name in fair and even[name] != 0:
                pts.append((r, fair[name] / even[name]))
        if pts:
            ratio_series.append({"label": name, "slot": slot, "points": pts})
    if ratio_series:
        body.append(_line_chart(
            f"DASE-Fair / even ratio per metric ({base})",
            ratio_series,
            y_label="fair ÷ even (1.0 = no difference)",
            x_label="arrivals per kilocycle",
        ))
        body.append(
            "<p class=\"note\">Below 1.0 DASE-Fair improved the metric for "
            "lower-is-fairer metrics (unfairness, p95, p99, gini_wait); for "
            "Jain's index <em>above</em> 1.0 is the improvement.</p>"
        )

    verdicts = result.verdicts()
    disagree_rates = {d["rate"] for d in result.disagreements()}
    rows = []
    for r in rates:
        row = verdicts.get(r, {})
        cells = "".join(
            f"<td>{_esc(row.get(name, '-'))}</td>" for name in metric_names
        )
        mark = " ⚠ disagree" if r in disagree_rates else ""
        rows.append(f"<tr><td>{_fmt(r)}{_esc(mark)}</td>{cells}</tr>")
    heads = "".join(f"<th>{_esc(n)}</th>" for n in metric_names)
    body.append(
        "<h2>Which policy is fairer, per metric</h2>"
        f"<table><thead><tr><th>rate</th>{heads}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    if disagree_rates:
        body.append(
            "<p class=\"note\">Rates marked ⚠ are scenarios where the "
            "fairness metrics pick opposite winners — the readout is "
            "multi-metric precisely because no single scalar captures "
            "open-system fairness (docs/model.md).</p>"
        )
    if result.failures:
        items = "".join(
            f"<tr><td><code>{_esc(k)}</code></td><td>{_esc(v)}</td></tr>"
            for k, v in sorted(result.failures.items())
        )
        body.append(
            "<h2>Failed runs</h2><table><thead><tr><th>run</th>"
            f"<th>error</th></tr></thead><tbody>{items}</tbody></table>"
        )
    body.append(
        f"<p class=\"note\">seed {result.seed} · pool "
        f"{_esc('+'.join(result.pool))} · mean lifetime "
        f"{result.mean_lifetime} cycles · window {result.shared_cycles} "
        "cycles · each rate replays one schedule under both policies.</p>"
    )
    return _PAGE.substitute(
        title=_esc(f"open-system churn — {base}"),
        subtitle="generated by repro fig-churn — repro.opensys arrival-rate "
                 "sweep",
        body="\n".join(body),
    )


def export_churn_report(path: str | os.PathLike, result: "ChurnResult") -> str:
    html = render_churn_report(result)
    with open(path, "w") as fh:
        fh.write(html)
    return html
