"""Structured event tracer: a bounded ring buffer of simulator events.

The tracer records the per-event story the interval counters average away:
DRAM request lifecycles (enqueue → bank issue → row hit/miss → reply), L2
probe outcomes, SM stall slices, interconnect packets, interval boundaries
and SM migrations.  Events live in a fixed-capacity ring, so a trace of an
arbitrarily long run is bounded memory — once the ring wraps, the oldest
events are overwritten and counted in :attr:`EventTracer.dropped`.

Emission is designed for the simulator's hot path: each instrumented site
holds a direct reference to the tracer (or ``None`` when tracing is off),
so the *disabled* path is a single ``is not None`` check — no dict lookup,
no call, no allocation.  The tracer itself never touches simulator state,
RNG, or counters: with tracing enabled the simulation is bit-identical to
a run without it.

Event model (mirrors the Chrome ``trace_event`` phases the exporter emits):

* ``instant``  — a point event (``ph="i"``): enqueues, replies, markers;
* ``complete`` — a slice with a duration (``ph="X"``): DRAM service, SM
  stall windows, interconnect packet transfers;
* ``counter``  — a named numeric series sample (``ph="C"``): IPC, α,
  slowdown estimates, SM counts at interval boundaries.

Timestamps are simulated core cycles (exported as microseconds, 1 cycle =
1 µs, so Perfetto renders cycle counts directly).  ``pid`` identifies the
emitting entity — application index for per-app events, or one of the
:data:`PID_SIM`/:data:`PID_ICNT_REQUEST`/:data:`PID_ICNT_REPLY` pseudo
processes — and ``tid`` the sub-entity (SM id, partition, bank track).
See ``docs/observability.md`` for the full taxonomy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.obs.audit import AuditLog
    from repro.obs.registry import MetricsRegistry
    from repro.obs.telemetry import Telemetry

#: Default ring capacity (events). ~7 tuple slots per event keeps even a
#: full ring in the tens of MB.
DEFAULT_CAPACITY = 1 << 18

# Pseudo process ids (application events use the app index as pid).
PID_SIM = 4096  #: global simulator events: intervals, migrations
PID_ICNT_REQUEST = 4097  #: SM→partition crossbar
PID_ICNT_REPLY = 4098  #: partition→SM crossbar

# Thread-id bases, per pid namespace (documented in docs/observability.md):
TID_SM_BASE = 0  #: tid = SM id for sm.* events
TID_PART_BASE = 500  #: tid = 500 + partition for L2/queue-level events
TID_BANK_BASE = 1000  #: tid = 1000 + partition * n_banks + bank


class EventTracer:
    """Fixed-capacity event ring with drop accounting.

    Events are stored as plain tuples ``(ts, ph, name, pid, tid, dur,
    args)`` — scalars only, never references into live simulator objects
    (several hot-path objects are recycled through free-lists).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buf: list[tuple] = []
        self._head = 0  # oldest slot once the ring has wrapped
        self.dropped = 0  # events overwritten after the ring filled
        self.n_emitted = 0
        # Engine dispatch statistics (bumped by the traced run loop).
        self.engine_events = 0
        self.engine_max_bucket = 0
        # Topology metadata for exporters (set by the GPU on attach).
        self.topology: dict = {}

    # ------------------------------------------------------------- emission

    def _put(self, ev: tuple) -> None:
        self.n_emitted += 1
        buf = self._buf
        if len(buf) < self.capacity:
            buf.append(ev)
            return
        head = self._head
        buf[head] = ev
        self._head = head + 1 if head + 1 < self.capacity else 0
        self.dropped += 1

    def instant(
        self, name: str, ts: int, pid: int, tid: int, args: dict | None = None
    ) -> None:
        self._put((ts, "i", name, pid, tid, 0, args))

    def complete(
        self,
        name: str,
        ts: int,
        dur: int,
        pid: int,
        tid: int,
        args: dict | None = None,
    ) -> None:
        self._put((ts, "X", name, pid, tid, dur, args))

    def counter(self, name: str, ts: int, pid: int, args: dict) -> None:
        self._put((ts, "C", name, pid, 0, 0, args))

    # ------------------------------------------------------------- metadata

    def set_topology(self, **kw) -> None:
        """Record sim topology (n_apps, n_sms, n_partitions, n_banks,
        app_names) so exporters can name processes and threads."""
        self.topology.update(kw)

    # ----------------------------------------------------------------- reads

    def __len__(self) -> int:
        return len(self._buf)

    def events(self) -> list[tuple]:
        """Retained events in emission order (oldest surviving first)."""
        buf = self._buf
        head = self._head
        if head == 0:
            return list(buf)
        return buf[head:] + buf[:head]

    def counts_by_name(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self._buf:
            name = ev[2]
            out[name] = out.get(name, 0) + 1
        return dict(sorted(out.items()))

    def span(self) -> tuple[int, int]:
        """(first, last) timestamp among retained events (0, 0 if empty)."""
        if not self._buf:
            return (0, 0)
        evs = self.events()
        return (evs[0][0], max(ev[0] + ev[5] for ev in evs))

    def clear(self) -> None:
        self._buf.clear()
        self._head = 0
        self.dropped = 0
        self.n_emitted = 0
        self.engine_events = 0
        self.engine_max_bucket = 0


class Observation:
    """One run's observability bundle: registry + tracer (+ telemetry).

    Pass an ``Observation`` to :class:`repro.sim.gpu.GPU` (``obs=``) or
    :func:`repro.harness.run_workload` (``trace=``) to record a run; the
    harness wires a :class:`repro.obs.telemetry.Telemetry` onto it so the
    interval-granularity view and the event trace come from one recording.
    """

    def __init__(
        self,
        trace_capacity: int = DEFAULT_CAPACITY,
        registry: "MetricsRegistry | None" = None,
        tracer: EventTracer | None = None,
        telemetry: "Telemetry | None" = None,
        audit: "AuditLog | bool | None" = None,
    ) -> None:
        if registry is None:
            from repro.obs.registry import MetricsRegistry

            registry = MetricsRegistry()
        self.registry = registry
        # Explicit None check: an *empty* EventTracer is falsy (__len__).
        self.tracer = tracer if tracer is not None else EventTracer(trace_capacity)
        self.telemetry = telemetry
        # Model/decision auditing (repro.obs.audit): off unless requested.
        # ``audit=True`` builds a log mirrored into this bundle's tracer.
        if audit is True:
            from repro.obs.audit import AuditLog

            audit = AuditLog(tracer=self.tracer)
        elif audit is not None and audit is not False and audit.tracer is None:
            audit.tracer = self.tracer
        self.audit = audit if audit is not False else None

    def finalize_run(self, gpu) -> None:
        """Publish end-of-run gauges readable only from the whole GPU."""
        reg = self.registry
        now = gpu.engine.now
        reg.gauge("run/cycles").set(now)
        reg.gauge("run/engine/events_dispatched").set(self.tracer.engine_events)
        reg.gauge("run/engine/max_bucket").set(self.tracer.engine_max_bucket)
        reg.gauge("run/trace/events_emitted").set(self.tracer.n_emitted)
        reg.gauge("run/trace/events_dropped").set(self.tracer.dropped)
        if self.audit is not None:
            reg.gauge("run/audit/model_records").set(
                len(self.audit.model_audits)
            )
            reg.gauge("run/audit/decision_records").set(
                len(self.audit.decision_audits)
            )
        reg.gauge("run/icnt/request_utilization").set(
            gpu.xbar_request.utilization(now)
        )
        reg.gauge("run/icnt/reply_utilization").set(
            gpu.xbar_reply.utilization(now)
        )
        for p in gpu.partitions:
            pre = f"run/part{p.pid}"
            reg.gauge(f"{pre}/busy_fraction").set(
                p.busy_time / now if now else 0.0
            )
            reg.gauge(f"{pre}/queue_length").set(p.queue_length())
        for app in range(gpu.n_apps):
            reg.gauge(f"run/app{app}/ipc").set(gpu.ipc(app))
            reg.gauge(f"run/app{app}/bandwidth_share").set(
                gpu.bandwidth_utilization(app)
            )
