"""Trace exporters: Chrome ``trace_event`` JSON and CSV.

The Chrome exporter emits the JSON-object format (``{"traceEvents":
[...]}``) that Perfetto and ``chrome://tracing`` load directly: instant
events (``ph="i"``), complete slices (``ph="X"`` with ``dur``), counter
tracks (``ph="C"``), plus ``process_name``/``thread_name`` metadata
derived from the tracer's recorded topology so the timeline reads
"app0 (SD) / SM 3" instead of raw ids.  Timestamps are simulated core
cycles exported as microseconds (1 cycle = 1 µs), sorted ascending as the
viewers expect.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any

from repro.obs.tracer import (
    EventTracer,
    PID_ICNT_REPLY,
    PID_ICNT_REQUEST,
    PID_SIM,
    TID_BANK_BASE,
    TID_PART_BASE,
)

#: Phases the exporter may legally emit (structural-validation contract).
CHROME_PHASES = frozenset({"i", "X", "C", "M"})


def _process_names(topology: dict, pids: set[int]) -> dict[int, str]:
    app_names = topology.get("app_names") or []
    names: dict[int, str] = {}
    for pid in pids:
        if pid == PID_SIM:
            names[pid] = "sim"
        elif pid == PID_ICNT_REQUEST:
            names[pid] = "icnt.request"
        elif pid == PID_ICNT_REPLY:
            names[pid] = "icnt.reply"
        elif pid < len(app_names):
            names[pid] = f"app{pid} ({app_names[pid]})"
        else:
            names[pid] = f"app{pid}"
    return names


def _thread_name(pid: int, tid: int, topology: dict) -> str | None:
    if pid in (PID_ICNT_REQUEST, PID_ICNT_REPLY):
        return f"port {tid}"
    n_banks = topology.get("n_banks")
    if tid >= TID_BANK_BASE and n_banks:
        part, bank = divmod(tid - TID_BANK_BASE, n_banks)
        return f"part{part}/bank{bank}"
    if tid >= TID_PART_BASE:
        return f"part{tid - TID_PART_BASE}"
    if pid < TID_PART_BASE:  # app pid, SM-track tid
        return f"SM {tid}"
    return None


def chrome_trace_events(tracer: EventTracer) -> list[dict[str, Any]]:
    """The ``traceEvents`` array: metadata first, then events by ts."""
    events = sorted(tracer.events(), key=lambda ev: ev[0])
    topology = tracer.topology
    pids: set[int] = set()
    threads: set[tuple[int, int]] = set()
    out: list[dict[str, Any]] = []
    for ts, ph, name, pid, tid, dur, args in events:
        ev: dict[str, Any] = {
            "name": name,
            "ph": ph,
            "ts": float(ts),
            "pid": pid,
            "tid": tid,
        }
        if ph == "X":
            ev["dur"] = float(dur)
        if ph == "C":
            ev["args"] = args or {}
        elif args:
            ev["args"] = args
        out.append(ev)
        pids.add(pid)
        if ph != "C":
            threads.add((pid, tid))
    meta: list[dict[str, Any]] = []
    for pid, pname in sorted(_process_names(topology, pids).items()):
        meta.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0, "args": {"name": pname},
        })
    for pid, tid in sorted(threads):
        tname = _thread_name(pid, tid, topology)
        if tname is not None:
            meta.append({
                "name": "thread_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": tid, "args": {"name": tname},
            })
    return meta + out


def to_chrome_trace(tracer: EventTracer) -> dict[str, Any]:
    """Full Chrome/Perfetto JSON-object payload."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated core cycles (1 cycle = 1 us)",
            "events_emitted": tracer.n_emitted,
            "events_dropped": tracer.dropped,
            "topology": dict(tracer.topology),
        },
    }


def export_chrome_trace(
    tracer: EventTracer, path: str | os.PathLike
) -> dict[str, Any]:
    """Write the Chrome trace JSON to ``path``; returns the payload."""
    payload = to_chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")
    return payload


# -------------------------------------------------------------- sweep trace


def export_sweep_trace(
    source, path: str | os.PathLike
) -> dict[str, Any]:
    """Write a sweep-level Chrome trace (one track per pool worker, one
    slice per job) from a telemetry-bus recording to ``path``.

    ``source`` is a bus directory or an already-read record list (see
    :func:`repro.obs.bus.read_bus`); returns the validated payload.
    """
    from repro.obs import bus

    records = source if isinstance(source, list) else bus.read_bus(source)
    payload = bus.sweep_chrome_trace(records)
    bus.validate_sweep_trace(payload)
    with open(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))
        fh.write("\n")
    return payload


# --------------------------------------------------------------------- CSV

CSV_HEADER = ("ts", "ph", "name", "pid", "tid", "dur", "args")


def events_csv(tracer: EventTracer) -> str:
    """All retained events as CSV text (args JSON-encoded in one column)."""
    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(CSV_HEADER)
    for ts, ph, name, pid, tid, dur, args in sorted(
        tracer.events(), key=lambda ev: ev[0]
    ):
        w.writerow([
            ts, ph, name, pid, tid, dur,
            json.dumps(args, sort_keys=True) if args else "",
        ])
    return buf.getvalue()


def export_events_csv(tracer: EventTracer, path: str | os.PathLike) -> None:
    with open(path, "w") as fh:
        fh.write(events_csv(tracer))


# ----------------------------------------------------------------- summary


def trace_summary(tracer: EventTracer) -> dict[str, Any]:
    """JSON-safe digest of a recording (for ``run.json`` / ``inspect``)."""
    t0, t1 = tracer.span()
    return {
        "events_retained": len(tracer),
        "events_emitted": tracer.n_emitted,
        "events_dropped": tracer.dropped,
        "capacity": tracer.capacity,
        "span_cycles": [t0, t1],
        "by_name": tracer.counts_by_name(),
        "engine": {
            "events_dispatched": tracer.engine_events,
            "max_bucket": tracer.engine_max_bucket,
        },
        "topology": dict(tracer.topology),
    }


def bank_heat(tracer: EventTracer) -> dict[tuple[int, int], int]:
    """(partition, bank) → serviced-request count, from ``dram.service``
    events retained in the ring."""
    n_banks = tracer.topology.get("n_banks", 0)
    heat: dict[tuple[int, int], int] = {}
    for ts, ph, name, pid, tid, dur, args in tracer.events():
        if name != "dram.service" or not args:
            continue
        key = (args["part"], args["bank"])
        heat[key] = heat.get(key, 0) + 1
    if not heat and n_banks:
        return {}
    return heat
