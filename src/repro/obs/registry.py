"""Metrics registry: named, hierarchical counters, gauges and histograms.

Instrument names are ``/``-separated paths (``sim/app0/ipc``), which gives
the registry a cheap hierarchy: :meth:`MetricsRegistry.subtree` returns
every instrument under a prefix, and exporters group rows by their leading
path components.  Instruments are created on first use and cached, so hot
callers hold a direct reference to the instrument object and pay one
attribute store per update — the registry dict is only touched at
get-or-create time.

The registry never mutates simulator state: it is a pure sink.  The
simulator publishes into it at interval boundaries (see
:meth:`repro.sim.gpu.GPU._publish_interval`), not on the per-event hot
path, so enabling metrics costs nothing between intervals.
"""

from __future__ import annotations

import io
from bisect import bisect_right
from typing import Iterator

#: Default histogram bucket upper bounds: powers of two spanning the
#: cycle/count magnitudes the simulator produces.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(2.0**i for i in range(-4, 24, 2))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins value (instantaneous level)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket distribution (bucket upper bounds + overflow).

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts overflow.  Mean/min/max are tracked exactly.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    kind = "histogram"

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds)) if bounds else DEFAULT_BOUNDS
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.vmax
        return self.vmax

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "buckets": {
                str(b): c for b, c in zip(self.bounds, self.counts) if c
            },
            "overflow": self.counts[-1],
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of named instruments.

    A name resolves to exactly one instrument; asking for an existing name
    with a different kind is an error (it would silently split a series).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}

    def _get_or_create(self, name: str, cls, *args) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, *args)
        elif not isinstance(inst, cls):
            raise TypeError(
                f"instrument {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    # ---------------------------------------------------------------- reads

    def get(self, name: str) -> Instrument | None:
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def subtree(self, prefix: str) -> dict[str, Instrument]:
        """All instruments whose name is ``prefix`` or lies under it."""
        prefix = prefix.rstrip("/")
        head = prefix + "/"
        return {
            n: inst
            for n, inst in sorted(self._instruments.items())
            if n == prefix or n.startswith(head)
        }

    def snapshot(self) -> dict[str, dict]:
        """JSON-safe dump of every instrument, sorted by name."""
        return {n: self._instruments[n].snapshot() for n in self.names()}

    def to_csv(self) -> str:
        """Flat ``name,type,value`` rows (histograms report count/mean)."""
        buf = io.StringIO()
        buf.write("name,type,value\n")
        for name in self.names():
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                value = f"count={inst.count};mean={inst.mean:.6g}"
            else:
                value = f"{inst.value:.6g}" if isinstance(
                    inst.value, float) else str(inst.value)
            buf.write(f"{name},{inst.kind},{value}\n")
        return buf.getvalue()
