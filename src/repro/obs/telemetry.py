"""Run telemetry: per-interval time series of everything observable.

Attach a :class:`Telemetry` to a GPU and it records, per interval and per
application, the counters, derived rates, estimator outputs, and the SM
partition — the data behind every time-series plot one would make of a
run.  Export as dicts or CSV text.

Telemetry is the *interval-granularity view* of the observability layer:
construct it with a :class:`~repro.obs.registry.MetricsRegistry` and/or an
:class:`~repro.obs.tracer.EventTracer` and every sample is also published
as registry gauges/histograms and Chrome counter events, so the HTML run
report, the Perfetto counter tracks, and the CSV export all describe the
same recording.

(Moved here from ``repro.harness.telemetry``; the deprecated import shim
has been removed — ``repro.harness`` still re-exports both names.)
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.base import SlowdownEstimator
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import EventTracer
    from repro.sim.gpu import GPU
    from repro.sim.stats import IntervalRecord


@dataclass
class Sample:
    """One application's telemetry for one interval."""

    cycle: int
    app: int
    ipc: float
    alpha: float
    requests_per_kcycle: float
    bw_share: float
    l2_hit_rate: float
    erb_miss: int
    ellc_miss: float
    sm_count: int
    estimates: dict[str, float | None] = field(default_factory=dict)


class Telemetry:
    """Interval-by-interval recorder for one GPU run.

    A recorder can be detached (:meth:`detach`) and re-attached — to the
    same GPU or a fresh one — without leaking the interval listener on the
    old GPU; samples accumulate across attachments.
    """

    def __init__(
        self,
        estimators: "dict[str, SlowdownEstimator] | None" = None,
        registry: "MetricsRegistry | None" = None,
        tracer: "EventTracer | None" = None,
    ):
        self.estimators = estimators or {}
        self.samples: list[Sample] = []
        self.gpu: "GPU | None" = None
        self.registry = registry
        self.tracer = tracer

    def attach(self, gpu: "GPU") -> None:
        if self.gpu is not None:
            raise RuntimeError(
                "telemetry already attached; call detach() first"
            )
        self.gpu = gpu
        # Attach after estimators so their latest() reflects this interval.
        gpu.add_interval_listener(self._on_interval)

    def detach(self) -> None:
        """Remove the interval listener; the recorder can attach again."""
        if self.gpu is None:
            return
        self.gpu.remove_interval_listener(self._on_interval)
        self.gpu = None

    @property
    def attached(self) -> bool:
        return self.gpu is not None

    def _on_interval(self, records: "list[IntervalRecord]") -> None:
        cfg = self.gpu.config
        tracer = self.tracer
        registry = self.registry
        for rec in records:
            cycles = max(1, rec.cycles)
            accesses = rec.mem.l2_hits + rec.mem.l2_misses
            ests = {}
            for name, est in self.estimators.items():
                latest = est.latest()
                ests[name] = latest[rec.app] if latest else None
            sample = Sample(
                cycle=rec.end,
                app=rec.app,
                ipc=rec.sm.instructions / cycles,
                alpha=rec.sm.alpha,
                requests_per_kcycle=rec.mem.requests_served / cycles * 1000,
                bw_share=rec.mem.data_bus_time
                / (cycles * cfg.n_partitions),
                l2_hit_rate=rec.mem.l2_hits / accesses if accesses else 0.0,
                erb_miss=rec.mem.erb_miss,
                ellc_miss=rec.ellc_miss,
                sm_count=rec.sm_count,
                estimates=ests,
            )
            self.samples.append(sample)
            if tracer is not None:
                self._emit_trace_counters(tracer, sample)
            if registry is not None:
                self._publish_registry(registry, sample)

    # ------------------------------------------------------ obs publication

    @staticmethod
    def _emit_trace_counters(tracer: "EventTracer", s: Sample) -> None:
        """Chrome counter tracks: one series per quantity, per app pid."""
        ts, pid = s.cycle, s.app
        tracer.counter("ipc", ts, pid, {"ipc": round(s.ipc, 6)})
        tracer.counter("alpha", ts, pid, {"alpha": round(s.alpha, 6)})
        tracer.counter("sm_count", ts, pid, {"sms": s.sm_count})
        tracer.counter(
            "bw_share", ts, pid, {"bw_share": round(s.bw_share, 6)}
        )
        for name, est in s.estimates.items():
            if est is not None:
                tracer.counter(
                    f"est.{name}", ts, pid, {name: round(est, 6)}
                )

    def _publish_registry(self, reg: "MetricsRegistry", s: Sample) -> None:
        pre = f"telemetry/app{s.app}"
        reg.gauge(f"{pre}/ipc").set(s.ipc)
        reg.gauge(f"{pre}/alpha").set(s.alpha)
        reg.gauge(f"{pre}/l2_hit_rate").set(s.l2_hit_rate)
        reg.gauge(f"{pre}/sm_count").set(s.sm_count)
        reg.counter(f"{pre}/erb_miss").inc(s.erb_miss)
        reg.histogram(f"{pre}/interval_ipc").observe(s.ipc)
        for name, est in s.estimates.items():
            if est is not None:
                reg.gauge(f"{pre}/est/{name}").set(est)

    # ------------------------------------------------------------- exports

    def series(self, app: int, fieldname: str) -> list[float]:
        """Time series of one field for one application."""
        out = []
        for s in self.samples:
            if s.app != app:
                continue
            if fieldname in s.estimates:
                out.append(s.estimates[fieldname])
            else:
                out.append(getattr(s, fieldname))
        return out

    def cycles_of(self, app: int) -> list[int]:
        """Interval-end cycle of each of ``app``'s samples (the x axis)."""
        return [s.cycle for s in self.samples if s.app == app]

    def to_csv(self) -> str:
        """All samples as CSV text (one row per app per interval)."""
        buf = io.StringIO()
        est_names = sorted(self.estimators)
        header = [
            "cycle", "app", "ipc", "alpha", "requests_per_kcycle",
            "bw_share", "l2_hit_rate", "erb_miss", "ellc_miss", "sm_count",
        ] + [f"est_{n}" for n in est_names]
        buf.write(",".join(header) + "\n")
        for s in self.samples:
            row = [
                str(s.cycle), str(s.app), f"{s.ipc:.4f}", f"{s.alpha:.4f}",
                f"{s.requests_per_kcycle:.2f}", f"{s.bw_share:.4f}",
                f"{s.l2_hit_rate:.4f}", str(s.erb_miss),
                f"{s.ellc_miss:.1f}", str(s.sm_count),
            ]
            for n in est_names:
                v = s.estimates.get(n)
                row.append("" if v is None else f"{v:.4f}")
            buf.write(",".join(row) + "\n")
        return buf.getvalue()
