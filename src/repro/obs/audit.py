"""Model & decision audit records: why an estimate or a migration happened.

The interval counters say *what* each estimator produced; the audit layer
records *why*.  Every ``estimate_interval`` call on DASE/MISE/ASM emits one
:class:`ModelAudit` per application — the counter inputs the model read
(α, BLP, extra row-buffer misses, ATD-sampled extra LLC misses, priority-
epoch rates) and every intermediate term on the way to the final slowdown
(the MBB/NMBB split, interference cycle decomposition, ARSR/SRSR or CAR
ratios).  Every :class:`~repro.policies.sm_alloc.DASEFairPolicy` interval
evaluation emits one :class:`DecisionAudit` — the Eq. 28 reciprocals, the
Eq. 29-30 interpolation table, every candidate partition's predicted
unfairness from the exhaustive search, the chosen target, and the
migration/drain plan (or the reason the policy held still).

Auditing follows the tracer's zero-overhead contract: each emitting site
holds a direct ``self._audit`` reference resolved at attach time (``None``
when auditing is off), so the disabled path is a single ``is not None``
check, and the audit sink never touches simulator state, RNG, or counters
— an audited run is bit-identical to an unaudited one (enforced by
``tests/test_obs_golden.py``).

Enable by constructing the run's :class:`~repro.obs.tracer.Observation`
with ``audit=True`` (or an explicit :class:`AuditLog`), or from the CLI
with ``repro trace SD SB --audit``.
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from repro.obs.tracer import PID_SIM

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.tracer import EventTracer

#: Schema tag for :meth:`AuditLog.to_dict` payloads (``audit.json``).
AUDIT_SCHEMA = "repro.obs.audit/1"


@dataclass
class ModelAudit:
    """One estimator's story for one application in one interval."""

    model: str  #: estimator name ("DASE", "MISE", "ASM")
    app: int
    interval: int  #: 0-based interval index
    cycle: int  #: interval-end cycle the estimate was produced at
    estimate: float | None  #: the slowdown estimate (None = no estimate)
    #: 1 / max(estimate, 1) — the Eq. 28 reciprocal DASE-Fair consumes.
    reciprocal: float | None
    #: Raw counter inputs the model read (per-model key set; see
    #: docs/observability.md#model-audit-taxonomy).
    inputs: dict[str, float] = field(default_factory=dict)
    #: Intermediate terms between inputs and estimate (per-model key set).
    terms: dict[str, float] = field(default_factory=dict)
    #: Why no estimate was produced (only set when ``estimate`` is None).
    skip_reason: str | None = None


@dataclass
class DecisionAudit:
    """One DASE-Fair interval evaluation: scores, verdict, and plan."""

    policy: str
    interval: int
    cycle: int
    current: tuple[int, ...]  #: SM partition when the policy ran
    #: "migrate" (SMs moved), "recommend" (dry-run: would have moved), or
    #: "hold" (no action — see ``reason``).
    action: str
    #: "improvement" for migrate/recommend; for holds one of
    #: "migration-draining", "too-few-thread-blocks", "no-estimate",
    #: "app-without-sm", "already-optimal", "hysteresis".
    reason: str
    reciprocals: list[float | None] | None = None  #: Eq. 28 inputs
    target: tuple[int, ...] | None = None  #: chosen partition (scored holds too)
    current_unfairness: float | None = None
    predicted_unfairness: float | None = None
    #: ``interpolation[app][t-1]`` = predicted reciprocal at ``t`` SMs
    #: (Eqs. 29-30), for t in 1..total_sms.
    interpolation: list[list[float]] | None = None
    #: Every candidate partition with its predicted unfairness, in search
    #: order (the chosen target is the first minimum).
    candidates: list[tuple[tuple[int, ...], float]] | None = None
    #: Migration/drain plan: (donor_app, taker_app, sm_count) triples in
    #: the order ``GPU.migrate_sms`` is invoked.
    plan: list[tuple[int, int, int]] | None = None


def _fmt_partition(part: Sequence[int] | None) -> str:
    return "-" if part is None else "+".join(str(p) for p in part)


class AuditLog:
    """In-memory audit sink, optionally mirrored into an event tracer.

    The log is a pure sink (append-only, never read by the simulator).
    When a tracer is linked, each record also lands in the Chrome trace as
    a compact instant event — ``audit.model`` on the application's process
    track, ``policy.decision`` on the ``sim`` track — so Perfetto shows
    estimates and decisions in-line with the hardware events that caused
    them; the full input/term/candidate payloads stay here.
    """

    def __init__(self, tracer: "EventTracer | None" = None) -> None:
        self.tracer = tracer
        self.model_audits: list[ModelAudit] = []
        self.decision_audits: list[DecisionAudit] = []
        #: Fault-injection events (repro.faults): one dict per perturbed
        #: (interval, app) delivery — {"interval", "cycle", "app", "kinds"}.
        self.fault_events: list[dict[str, Any]] = []

    # ------------------------------------------------------------ recording

    def record_model(self, audit: ModelAudit) -> None:
        self.model_audits.append(audit)
        tracer = self.tracer
        if tracer is not None:
            args: dict[str, Any] = {"model": audit.model}
            if audit.estimate is not None:
                args["est"] = round(audit.estimate, 6)
            else:
                args["skip"] = audit.skip_reason
            tracer.instant("audit.model", audit.cycle, audit.app, 0, args)

    def record_decision(self, audit: DecisionAudit) -> None:
        self.decision_audits.append(audit)
        tracer = self.tracer
        if tracer is not None:
            args: dict[str, Any] = {
                "action": audit.action,
                "reason": audit.reason,
                "current": _fmt_partition(audit.current),
            }
            if audit.target is not None:
                args["target"] = _fmt_partition(audit.target)
            if audit.predicted_unfairness is not None:
                args["predicted"] = round(audit.predicted_unfairness, 6)
            if audit.current_unfairness is not None:
                args["unfairness"] = round(audit.current_unfairness, 6)
            tracer.instant("policy.decision", audit.cycle, PID_SIM, 0, args)

    def record_fault(self, event: dict[str, Any]) -> None:
        """One fault-injection delivery event (see :mod:`repro.faults`).

        Keeps the audit stream able to explain perturbed estimates: a
        surprising ``ModelAudit`` row pairs with the fault event of the
        same (interval, app).
        """
        self.fault_events.append(event)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "fault.inject",
                event.get("cycle", 0),
                event.get("app", 0),
                0,
                {"kinds": "+".join(event.get("kinds", []))},
            )

    # ---------------------------------------------------------------- reads

    def models(self) -> list[str]:
        """Model names with at least one audit record, in first-seen order."""
        seen: dict[str, None] = {}
        for a in self.model_audits:
            seen.setdefault(a.model, None)
        return list(seen)

    def series(self, model: str, app: int) -> list[tuple[int, float | None]]:
        """(cycle, estimate) samples for one model and application."""
        return [
            (a.cycle, a.estimate)
            for a in self.model_audits
            if a.model == model and a.app == app
        ]

    def error_series(
        self, model: str, app: int, actual: float
    ) -> list[tuple[int, float]]:
        """(cycle, |estimate − actual| / actual) — the per-interval
        relative-error timeline against the run's measured slowdown."""
        if actual <= 0:
            return []
        return [
            (cycle, abs(est - actual) / actual)
            for cycle, est in self.series(model, app)
            if est is not None
        ]

    def migrations(self) -> list[DecisionAudit]:
        """Decisions that moved (or, dry-run, would have moved) SMs."""
        return [
            d for d in self.decision_audits
            if d.action in ("migrate", "recommend")
        ]

    # -------------------------------------------------------------- exports

    def summary(self) -> dict[str, Any]:
        """Small JSON-safe digest for ``run.json`` / ``repro inspect``."""
        per_model: dict[str, dict[str, int]] = {}
        for a in self.model_audits:
            row = per_model.setdefault(a.model, {"records": 0, "skipped": 0})
            row["records"] += 1
            if a.estimate is None:
                row["skipped"] += 1
        actions: dict[str, int] = {}
        reasons: dict[str, int] = {}
        for d in self.decision_audits:
            actions[d.action] = actions.get(d.action, 0) + 1
            reasons[d.reason] = reasons.get(d.reason, 0) + 1
        out = {
            "model_records": len(self.model_audits),
            "decision_records": len(self.decision_audits),
            "per_model": dict(sorted(per_model.items())),
            "decision_actions": dict(sorted(actions.items())),
            "decision_reasons": dict(sorted(reasons.items())),
        }
        if self.fault_events:
            kinds: dict[str, int] = {}
            for ev in self.fault_events:
                for k in ev.get("kinds", []):
                    kinds[k] = kinds.get(k, 0) + 1
            out["fault_events"] = len(self.fault_events)
            out["fault_kinds"] = dict(sorted(kinds.items()))
        return out

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-safe dump (``audit.json``)."""
        return {
            "schema": AUDIT_SCHEMA,
            "summary": self.summary(),
            "faults": list(self.fault_events),
            "models": [asdict(a) for a in self.model_audits],
            "decisions": [
                {
                    **asdict(d),
                    "current": list(d.current),
                    "target": None if d.target is None else list(d.target),
                    "candidates": None if d.candidates is None else [
                        {"partition": list(p), "unfairness": u}
                        for p, u in d.candidates
                    ],
                    "plan": None if d.plan is None else [list(s) for s in d.plan],
                }
                for d in self.decision_audits
            ],
        }

    def model_audits_csv(self) -> str:
        """Flat CSV of every model audit (inputs/terms JSON-encoded)."""
        buf = io.StringIO()
        w = csv.writer(buf, lineterminator="\n")
        w.writerow([
            "model", "interval", "cycle", "app", "estimate", "reciprocal",
            "skip_reason", "inputs", "terms",
        ])
        for a in self.model_audits:
            w.writerow([
                a.model, a.interval, a.cycle, a.app,
                "" if a.estimate is None else f"{a.estimate:.6f}",
                "" if a.reciprocal is None else f"{a.reciprocal:.6f}",
                a.skip_reason or "",
                json.dumps(a.inputs, sort_keys=True),
                json.dumps(a.terms, sort_keys=True),
            ])
        return buf.getvalue()

    def decision_audits_csv(self) -> str:
        """Flat CSV of every policy decision (one row per evaluation)."""
        buf = io.StringIO()
        w = csv.writer(buf, lineterminator="\n")
        w.writerow([
            "policy", "interval", "cycle", "action", "reason", "current",
            "target", "current_unfairness", "predicted_unfairness",
            "n_candidates", "plan",
        ])
        for d in self.decision_audits:
            w.writerow([
                d.policy, d.interval, d.cycle, d.action, d.reason,
                _fmt_partition(d.current), _fmt_partition(d.target),
                "" if d.current_unfairness is None
                else f"{d.current_unfairness:.6f}",
                "" if d.predicted_unfairness is None
                else f"{d.predicted_unfairness:.6f}",
                "" if d.candidates is None else len(d.candidates),
                "" if d.plan is None else json.dumps(
                    [list(s) for s in d.plan]
                ),
            ])
        return buf.getvalue()


def export_audit_json(log: AuditLog, path: str | os.PathLike) -> dict:
    """Write the full audit dump to ``path``; returns the payload."""
    payload = log.to_dict()
    with open(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")
    return payload
