"""Artifact inspection: summarize any recorded artifact without re-running.

:func:`inspect_path` auto-detects what a path holds from its embedded
``schema`` tag and renders the matching summary — no kind flags needed:

* ``run.json`` manifest (``repro.obs.run/1``), or a directory holding one;
* ``sweep.json`` sweep stats (``repro.obs.sweep/1``); ``--sweep`` only
  breaks the tie when a directory holds both a run and a sweep recording;
* ``audit.json`` model/decision audit dump (``repro.obs.audit/1``);
* a saved diff verdict (``repro.obs.diff/1``);
* a telemetry-bus channel (``bus-*.jsonl``) or a bus directory;
* a results-store record, index, or store directory
  (``repro.store.record/1`` / ``repro.store.index/1``);
* a raw Chrome trace JSON (``{"traceEvents": [...]}``).

Anything else — including a JSON document with an unrecognized ``schema``
— raises a one-line :class:`ValueError` (``repro inspect`` turns it into
a one-line error and exit 1, never a traceback).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Sequence

from repro.obs.bus import BUS_SCHEMA, SWEEP_SCHEMA

RUN_SCHEMA = "repro.obs.run/1"

#: Store schema tags, kept as literals: importing them from
#: :mod:`repro.store` would cycle back into :mod:`repro.obs`.
_STORE_RECORD_SCHEMA = "repro.store.record/1"
_STORE_INDEX_SCHEMA = "repro.store.index/1"
_DIFF_SCHEMA = "repro.obs.diff/1"
_AUDIT_SCHEMA = "repro.obs.audit/1"


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def summarize_run(manifest: dict[str, Any]) -> str:
    """Summary of a ``run.json`` manifest."""
    out: list[str] = []
    wl = manifest.get("workload") or {}
    if wl:
        names = wl.get("names", [])
        slowdowns = wl.get("actual_slowdowns", [])
        parts = wl.get("sm_partition", [])
        estimates = wl.get("estimates", {})
        models = sorted(estimates)
        rows = []
        for i, name in enumerate(names):
            row = [
                name,
                parts[i] if i < len(parts) else "-",
                f"{slowdowns[i]:.3f}" if i < len(slowdowns) else "-",
            ]
            for m in models:
                e = estimates[m][i]
                row.append("-" if e is None else f"{e:.3f}")
            rows.append(row)
        out.append("workload: " + "+".join(names))
        out.append(
            _table(["app", "SMs", "actual"] + models, rows)
        )
        out.append(f"shared cycles: {wl.get('shared_cycles')}")
    trace = manifest.get("trace") or {}
    if trace:
        out.append("")
        out.append(
            f"trace: {trace.get('events_emitted', 0)} events emitted, "
            f"{trace.get('events_retained', 0)} retained, "
            f"{trace.get('events_dropped', 0)} dropped "
            f"(capacity {trace.get('capacity', '?')})"
        )
        span = trace.get("span_cycles")
        if span:
            out.append(f"span: cycles {span[0]} .. {span[1]}")
        by_name = trace.get("by_name") or {}
        if by_name:
            out.append(_table(
                ["event", "retained"],
                sorted(by_name.items(), key=lambda kv: -kv[1]),
            ))
        engine = trace.get("engine") or {}
        if engine.get("events_dispatched"):
            out.append(
                f"engine: {engine['events_dispatched']} events dispatched, "
                f"largest cycle bucket {engine.get('max_bucket', 0)}"
            )
    audit = manifest.get("audit") or {}
    if audit:
        out.append("")
        out.append(
            f"audit: {audit.get('model_records', 0)} model records, "
            f"{audit.get('decision_records', 0)} decision records"
        )
        per_model = audit.get("per_model") or {}
        if per_model:
            out.append(_table(
                ["model", "records", "skipped"],
                [
                    [m, row.get("records", 0), row.get("skipped", 0)]
                    for m, row in sorted(per_model.items())
                ],
            ))
        actions = audit.get("decision_actions") or {}
        if actions:
            out.append("decisions: " + ", ".join(
                f"{k}={v}" for k, v in sorted(actions.items())
            ))
        reasons = audit.get("decision_reasons") or {}
        if reasons:
            out.append("reasons: " + ", ".join(
                f"{k}={v}" for k, v in sorted(reasons.items())
            ))
    metrics = manifest.get("metrics") or {}
    if metrics:
        rows = []
        for name, snap in sorted(metrics.items()):
            if snap.get("type") == "histogram":
                val = f"count={snap['count']} mean={snap['mean']:.4g}"
            else:
                v = snap.get("value", 0)
                val = f"{v:.6g}" if isinstance(v, float) else str(v)
            rows.append([name, snap.get("type", "?"), val])
        out.append("")
        out.append(_table(["metric", "type", "value"], rows))
    files = manifest.get("files") or {}
    if files:
        out.append("")
        out.append("exports: " + ", ".join(
            f"{k}={v}" for k, v in sorted(files.items())
        ))
    return "\n".join(out)


def summarize_chrome(payload: dict[str, Any]) -> str:
    """Summary of a raw Chrome ``trace_event`` JSON payload."""
    events = payload.get("traceEvents", [])
    by_name: dict[str, int] = {}
    by_phase: dict[str, int] = {}
    pids: set[int] = set()
    t_lo, t_hi = None, 0.0
    for ev in events:
        ph = ev.get("ph", "?")
        by_phase[ph] = by_phase.get(ph, 0) + 1
        if ph == "M":
            continue
        name = ev.get("name", "?")
        by_name[name] = by_name.get(name, 0) + 1
        pids.add(ev.get("pid", 0))
        ts = float(ev.get("ts", 0.0)) + float(ev.get("dur", 0.0))
        t_lo = ts if t_lo is None else min(t_lo, float(ev.get("ts", 0.0)))
        t_hi = max(t_hi, ts)
    out = [
        f"chrome trace: {len(events)} entries "
        f"({by_phase.get('M', 0)} metadata), {len(pids)} processes, "
        f"span {t_lo or 0:.0f} .. {t_hi:.0f} us",
        _table(
            ["event", "count"],
            sorted(by_name.items(), key=lambda kv: -kv[1]),
        ),
    ]
    other = payload.get("otherData") or {}
    if other.get("events_dropped"):
        out.append(f"dropped at record time: {other['events_dropped']}")
    return "\n".join(out)


def summarize_sweep(stats: dict[str, Any]) -> str:
    """Summary of a ``sweep.json`` sweep-stats manifest."""
    out: list[str] = []
    out.append(
        f"sweep: {stats.get('n_jobs', 0)} jobs, {stats.get('ok', 0)} ok, "
        f"{stats.get('failed', 0)} failed"
        + (f", {stats['resumed']} resumed" if stats.get("resumed") else "")
        + (f", {stats['incomplete']} incomplete"
           if stats.get("incomplete") else "")
    )
    out.append(
        f"wall {stats.get('wall_s', 0.0):.1f}s, busy "
        f"{stats.get('busy_s', 0.0):.1f}s across "
        f"{len(stats.get('workers') or {})} workers "
        f"(efficiency {stats.get('parallel_efficiency', 0.0):.0%}), "
        f"cpu {stats.get('cpu_s', 0.0):.1f}s"
    )
    lat = stats.get("latency") or {}
    if lat:
        out.append(
            "job latency: "
            + "  ".join(
                f"{k}={lat[k]:.2f}s"
                for k in ("p50", "p95", "p99", "mean", "max") if k in lat
            )
        )
    phases = stats.get("phases") or {}
    if phases:
        out.append("")
        out.append(_table(
            ["phase", "count", "total_s"],
            [
                [name, int(row.get("count", 0)),
                 f"{row.get('total_s', 0.0):.2f}"]
                for name, row in sorted(
                    phases.items(), key=lambda kv: -kv[1].get("total_s", 0)
                )
            ],
        ))
    cache = stats.get("cache") or {}
    if cache:
        out.append("")
        out.append(
            f"replay cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(rate {cache.get('hit_rate', 0.0):.0%}), "
            f"~{cache.get('est_saved_s', 0.0):.1f}s replay time saved"
        )
    backends = stats.get("backends") or {}
    if backends:
        out.append(_table(
            ["backend", "jobs", "total_s"],
            [
                [name, int(row.get("jobs", 0)),
                 f"{row.get('total_s', 0.0):.2f}"]
                for name, row in sorted(backends.items())
            ],
        ))
    workers = stats.get("workers") or {}
    if workers:
        out.append("")
        out.append(_table(
            ["worker pid", "jobs", "busy_s", "cpu_s", "rss_peak_kb"],
            [
                [pid, int(w.get("jobs", 0)), f"{w.get('busy_s', 0.0):.2f}",
                 f"{w.get('cpu_s', 0.0):.2f}", int(w.get("rss_peak_kb", 0))]
                for pid, w in sorted(workers.items())
            ],
        ))
    stragglers = stats.get("stragglers") or []
    if stragglers:
        out.append("")
        out.append("stragglers (> 2x p50):")
        out.append(_table(
            ["job", "key", "dur_s", "x p50", "dominant phase"],
            [
                [s.get("job"), s.get("key", "?"),
                 f"{s.get('dur_s', 0.0):.2f}", f"{s.get('ratio', 0.0):.1f}",
                 f"{s.get('dominant_phase', '?')} "
                 f"({s.get('phase_s', 0.0):.2f}s)"]
                for s in stragglers
            ],
        ))
    failures = stats.get("failures") or []
    if failures:
        out.append("")
        out.append(_table(
            ["failed job", "key", "kind", "attempts"],
            [
                [f.get("job"), f.get("key", "?"), f.get("kind", "?"),
                 f.get("attempts", 1)]
                for f in failures
            ],
        ))
    return "\n".join(out)


def summarize_audit(payload: dict[str, Any]) -> str:
    """Summary of an ``audit.json`` dump (``repro.obs.audit/1``)."""
    out: list[str] = []
    summary = payload.get("summary") or {}
    out.append(
        f"audit: {summary.get('model_records', 0)} model records, "
        f"{summary.get('decision_records', 0)} decision records"
    )
    per_model = summary.get("per_model") or {}
    if per_model:
        out.append(_table(
            ["model", "records", "skipped"],
            [
                [m, row.get("records", 0), row.get("skipped", 0)]
                for m, row in sorted(per_model.items())
            ],
        ))
    actions = summary.get("decision_actions") or {}
    if actions:
        out.append("decisions: " + ", ".join(
            f"{k}={v}" for k, v in sorted(actions.items())
        ))
    reasons = summary.get("decision_reasons") or {}
    if reasons:
        out.append("reasons: " + ", ".join(
            f"{k}={v}" for k, v in sorted(reasons.items())
        ))
    faults = payload.get("faults") or []
    if faults:
        out.append(f"fault events: {len(faults)}")
    return "\n".join(out)


def summarize_diff(payload: dict[str, Any]) -> str:
    """Summary of a saved diff verdict (``repro.obs.diff/1``)."""
    drifts = payload.get("drift") or []
    out = [
        f"{'IDENTICAL' if payload.get('identical') else 'DRIFT'}: "
        f"{payload.get('compared', 0)} leaves compared, "
        f"{payload.get('ignored', 0)} ignored, {len(drifts)} drifting "
        f"(rel tol {payload.get('rel_tol', 0):g})",
        f"  a: {payload.get('a', '?')}",
        f"  b: {payload.get('b', '?')}",
    ]
    if drifts:
        out.append(_table(
            ["path", "a", "b", "note"],
            [
                [d.get("path", "?"), d.get("a"), d.get("b"),
                 d.get("note", "value")]
                for d in drifts[:20]
            ],
        ))
        if len(drifts) > 20:
            out.append(f"… {len(drifts) - 20} more drifting leaves")
    return "\n".join(out)


def summarize_bus(records: list[dict[str, Any]]) -> str:
    """Summary of telemetry-bus records (channel files or a bus dir)."""
    by_tag: dict[str, int] = {}
    pids: set[Any] = set()
    for rec in records:
        by_tag[rec.get("t", "?")] = by_tag.get(rec.get("t", "?"), 0) + 1
        if "pid" in rec:
            pids.add(rec["pid"])
    out = [
        f"bus: {len(records)} records from {len(pids)} worker"
        f"{'s' if len(pids) != 1 else ''}",
        _table(["record", "count"],
               sorted(by_tag.items(), key=lambda kv: -kv[1])),
    ]
    return "\n".join(out)


def summarize_store_record(payload: dict[str, Any]) -> str:
    """Summary of one results-store record (``repro.store.record/1``)."""
    scenario = payload.get("scenario") or {}
    prov = payload.get("provenance") or {}
    out = [
        f"store record {str(payload.get('record_id', '?'))[:12]} · "
        f"payload {payload.get('payload_schema', '?')}",
        f"scenario: {scenario.get('name', '?')} ({scenario.get('kind', '?')})"
        f" · id {str(payload.get('scenario_id', '?'))[:12]}",
    ]
    workloads = scenario.get("workloads") or []
    if workloads:
        out.append("workloads: " + ", ".join(
            "+".join(w) for w in workloads
        ))
    detail = [
        f"{k}: {scenario[k]}"
        for k in ("policy", "backend", "seeds", "cycles")
        if scenario.get(k) not in (None, [], ())
    ]
    if detail:
        out.append(" · ".join(detail))
    if prov:
        out.append("provenance: " + ", ".join(
            f"{k}={str(v)[:12]}" for k, v in sorted(prov.items())
            if not isinstance(v, dict)
        ))
    from repro.store.trajectory import EXTRACTORS, _metrics_generic

    extractor = EXTRACTORS.get(payload.get("payload_schema"), _metrics_generic)
    try:
        metrics = extractor(payload.get("payload"))
    except (TypeError, ValueError, KeyError):
        metrics = {}
    if metrics:
        out.append(_table(
            ["metric", "value"],
            [[m, f"{v:.4g}"] for m, v in sorted(metrics.items())],
        ))
    return "\n".join(out)


def summarize_store_index(payload: dict[str, Any]) -> str:
    """Summary of a store ``index.json`` (``repro.store.index/1``)."""
    entries = payload.get("records") or []
    rows: dict[str, dict[str, Any]] = {}
    for e in entries:
        row = rows.setdefault(e.get("scenario_id", "?"), {
            "name": e.get("scenario_name", "?"),
            "schema": e.get("payload_schema", "?"),
            "n": 0,
            "last": e.get("created_at", "-"),
        })
        row["n"] += 1
        row["last"] = e.get("created_at", row["last"])
    out = [
        f"results store: {len(entries)} recording"
        f"{'s' if len(entries) != 1 else ''} across {len(rows)} scenario"
        f"{'s' if len(rows) != 1 else ''}",
    ]
    if rows:
        out.append(_table(
            ["scenario", "id", "payload schema", "records", "last recorded"],
            [
                [row["name"], sid[:12], row["schema"], row["n"], row["last"]]
                for sid, row in rows.items()
            ],
        ))
    return "\n".join(out)


def _load_bus_file(p: pathlib.Path) -> list[dict[str, Any]] | None:
    """Parse a ``.jsonl`` file as a bus channel; None when it isn't one."""
    records: list[dict[str, Any]] = []
    try:
        with p.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except (json.JSONDecodeError, OSError):
        return None
    if records and records[0].get("schema") == BUS_SCHEMA:
        return records
    return None


def load_recorded(
    path: str, prefer: str | None = None
) -> tuple[str, Any]:
    """Load and classify what ``path`` holds, keyed on the embedded
    ``schema`` tag: ``("run", manifest)``, ``("sweep", stats)``,
    ``("audit", dump)``, ``("diff", verdict)``, ``("bus", records)``,
    ``("store-record", record)``, ``("store-index", index)``, or
    ``("chrome", payload)``.  For a directory: run.json wins unless absent
    or ``prefer="sweep"``; a store directory resolves to its index.json; a
    bus directory aggregates its ``bus-*.jsonl`` channels.

    Raises ValueError with a one-line message on missing, corrupt, or
    unrecognized input — never a traceback-worthy parse error.
    """
    p = pathlib.Path(path)
    if p.is_dir():
        run = p / "run.json"
        sweep = p / "sweep.json"
        index = p / "index.json"
        if prefer == "sweep" and sweep.is_file():
            p = sweep
        elif run.is_file():
            p = run
        elif sweep.is_file():
            p = sweep
        elif index.is_file():
            p = index
        elif any(p.glob("bus-*.jsonl")):
            from repro.obs.bus import read_bus

            return "bus", read_bus(p)
        elif (p / "records").is_dir():
            raise ValueError(
                f"store index {index} is missing but {p / 'records'} holds "
                "records — restore the index or re-import"
            )
        else:
            raise ValueError(
                f"no run.json, sweep.json, index.json, or bus-*.jsonl "
                f"found under {p}"
            )
    if not p.is_file():
        raise ValueError(f"{p} does not exist")
    if p.suffix == ".jsonl":
        records = _load_bus_file(p)
        if records is not None:
            return "bus", records
        raise ValueError(
            f"{p} is not a telemetry-bus channel (no {BUS_SCHEMA} meta "
            "record on its first line)"
        )
    try:
        with p.open() as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p} is not valid JSON: {exc}") from exc
    kinds = {
        RUN_SCHEMA: "run",
        SWEEP_SCHEMA: "sweep",
        _AUDIT_SCHEMA: "audit",
        _DIFF_SCHEMA: "diff",
        _STORE_RECORD_SCHEMA: "store-record",
        _STORE_INDEX_SCHEMA: "store-index",
    }
    if isinstance(payload, dict):
        schema = payload.get("schema")
        if schema in kinds:
            return kinds[schema], payload
        if "traceEvents" in payload:
            return "chrome", payload
        if schema is not None:
            raise ValueError(
                f"{p} carries unrecognized schema {schema!r} "
                f"(known: {', '.join(sorted(kinds))})"
            )
    raise ValueError(
        f"{p} carries no schema tag and is not a Chrome trace "
        f"(known schemas: {', '.join(sorted(kinds))})"
    )


def inspect_json(path: str, prefer: str | None = None) -> dict[str, Any]:
    """Machine-readable inspection payload (``repro inspect --json``)."""
    kind, payload = load_recorded(path, prefer=prefer)
    if kind == "bus":
        by_tag: dict[str, int] = {}
        for rec in payload:
            by_tag[rec.get("t", "?")] = by_tag.get(rec.get("t", "?"), 0) + 1
        return {"kind": kind, "records": len(payload),
                "by_tag": dict(sorted(by_tag.items()))}
    if kind == "chrome":
        events = payload.get("traceEvents", [])
        by_name: dict[str, int] = {}
        for ev in events:
            if ev.get("ph") == "M":
                continue
            name = ev.get("name", "?")
            by_name[name] = by_name.get(name, 0) + 1
        return {
            "kind": "chrome",
            "entries": len(events),
            "by_name": dict(sorted(by_name.items())),
            "other_data": payload.get("otherData") or {},
        }
    return {"kind": kind, **payload}


def inspect_path(path: str, prefer: str | None = None) -> str:
    """Dispatch on what ``path`` holds; raises ValueError when unrecognized."""
    kind, payload = load_recorded(path, prefer=prefer)
    summarizers = {
        "run": summarize_run,
        "sweep": summarize_sweep,
        "audit": summarize_audit,
        "diff": summarize_diff,
        "bus": summarize_bus,
        "store-record": summarize_store_record,
        "store-index": summarize_store_index,
        "chrome": summarize_chrome,
    }
    return summarizers[kind](payload)
