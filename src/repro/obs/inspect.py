"""Run inspection: summarize a recorded run without re-simulating.

``repro trace`` writes a ``run.json`` manifest next to its exports (the
workload result, the metrics-registry snapshot, and a trace digest).
:func:`inspect_path` renders a human-readable summary of

* a ``run.json`` manifest (or a directory containing one), or
* a raw Chrome trace JSON (``{"traceEvents": [...]}``),

* a sweep-stats manifest (``sweep.json`` written by ``--sweep-trace``,
  schema ``repro.obs.sweep/1``) — pass ``--sweep`` to prefer it when a
  directory holds both a run and a sweep recording,

so a recording can be triaged from the terminal before opening Perfetto.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable, Sequence

from repro.obs.bus import SWEEP_SCHEMA

RUN_SCHEMA = "repro.obs.run/1"


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    rows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def summarize_run(manifest: dict[str, Any]) -> str:
    """Summary of a ``run.json`` manifest."""
    out: list[str] = []
    wl = manifest.get("workload") or {}
    if wl:
        names = wl.get("names", [])
        slowdowns = wl.get("actual_slowdowns", [])
        parts = wl.get("sm_partition", [])
        estimates = wl.get("estimates", {})
        models = sorted(estimates)
        rows = []
        for i, name in enumerate(names):
            row = [
                name,
                parts[i] if i < len(parts) else "-",
                f"{slowdowns[i]:.3f}" if i < len(slowdowns) else "-",
            ]
            for m in models:
                e = estimates[m][i]
                row.append("-" if e is None else f"{e:.3f}")
            rows.append(row)
        out.append("workload: " + "+".join(names))
        out.append(
            _table(["app", "SMs", "actual"] + models, rows)
        )
        out.append(f"shared cycles: {wl.get('shared_cycles')}")
    trace = manifest.get("trace") or {}
    if trace:
        out.append("")
        out.append(
            f"trace: {trace.get('events_emitted', 0)} events emitted, "
            f"{trace.get('events_retained', 0)} retained, "
            f"{trace.get('events_dropped', 0)} dropped "
            f"(capacity {trace.get('capacity', '?')})"
        )
        span = trace.get("span_cycles")
        if span:
            out.append(f"span: cycles {span[0]} .. {span[1]}")
        by_name = trace.get("by_name") or {}
        if by_name:
            out.append(_table(
                ["event", "retained"],
                sorted(by_name.items(), key=lambda kv: -kv[1]),
            ))
        engine = trace.get("engine") or {}
        if engine.get("events_dispatched"):
            out.append(
                f"engine: {engine['events_dispatched']} events dispatched, "
                f"largest cycle bucket {engine.get('max_bucket', 0)}"
            )
    audit = manifest.get("audit") or {}
    if audit:
        out.append("")
        out.append(
            f"audit: {audit.get('model_records', 0)} model records, "
            f"{audit.get('decision_records', 0)} decision records"
        )
        per_model = audit.get("per_model") or {}
        if per_model:
            out.append(_table(
                ["model", "records", "skipped"],
                [
                    [m, row.get("records", 0), row.get("skipped", 0)]
                    for m, row in sorted(per_model.items())
                ],
            ))
        actions = audit.get("decision_actions") or {}
        if actions:
            out.append("decisions: " + ", ".join(
                f"{k}={v}" for k, v in sorted(actions.items())
            ))
        reasons = audit.get("decision_reasons") or {}
        if reasons:
            out.append("reasons: " + ", ".join(
                f"{k}={v}" for k, v in sorted(reasons.items())
            ))
    metrics = manifest.get("metrics") or {}
    if metrics:
        rows = []
        for name, snap in sorted(metrics.items()):
            if snap.get("type") == "histogram":
                val = f"count={snap['count']} mean={snap['mean']:.4g}"
            else:
                v = snap.get("value", 0)
                val = f"{v:.6g}" if isinstance(v, float) else str(v)
            rows.append([name, snap.get("type", "?"), val])
        out.append("")
        out.append(_table(["metric", "type", "value"], rows))
    files = manifest.get("files") or {}
    if files:
        out.append("")
        out.append("exports: " + ", ".join(
            f"{k}={v}" for k, v in sorted(files.items())
        ))
    return "\n".join(out)


def summarize_chrome(payload: dict[str, Any]) -> str:
    """Summary of a raw Chrome ``trace_event`` JSON payload."""
    events = payload.get("traceEvents", [])
    by_name: dict[str, int] = {}
    by_phase: dict[str, int] = {}
    pids: set[int] = set()
    t_lo, t_hi = None, 0.0
    for ev in events:
        ph = ev.get("ph", "?")
        by_phase[ph] = by_phase.get(ph, 0) + 1
        if ph == "M":
            continue
        name = ev.get("name", "?")
        by_name[name] = by_name.get(name, 0) + 1
        pids.add(ev.get("pid", 0))
        ts = float(ev.get("ts", 0.0)) + float(ev.get("dur", 0.0))
        t_lo = ts if t_lo is None else min(t_lo, float(ev.get("ts", 0.0)))
        t_hi = max(t_hi, ts)
    out = [
        f"chrome trace: {len(events)} entries "
        f"({by_phase.get('M', 0)} metadata), {len(pids)} processes, "
        f"span {t_lo or 0:.0f} .. {t_hi:.0f} us",
        _table(
            ["event", "count"],
            sorted(by_name.items(), key=lambda kv: -kv[1]),
        ),
    ]
    other = payload.get("otherData") or {}
    if other.get("events_dropped"):
        out.append(f"dropped at record time: {other['events_dropped']}")
    return "\n".join(out)


def summarize_sweep(stats: dict[str, Any]) -> str:
    """Summary of a ``sweep.json`` sweep-stats manifest."""
    out: list[str] = []
    out.append(
        f"sweep: {stats.get('n_jobs', 0)} jobs, {stats.get('ok', 0)} ok, "
        f"{stats.get('failed', 0)} failed"
        + (f", {stats['resumed']} resumed" if stats.get("resumed") else "")
        + (f", {stats['incomplete']} incomplete"
           if stats.get("incomplete") else "")
    )
    out.append(
        f"wall {stats.get('wall_s', 0.0):.1f}s, busy "
        f"{stats.get('busy_s', 0.0):.1f}s across "
        f"{len(stats.get('workers') or {})} workers "
        f"(efficiency {stats.get('parallel_efficiency', 0.0):.0%}), "
        f"cpu {stats.get('cpu_s', 0.0):.1f}s"
    )
    lat = stats.get("latency") or {}
    if lat:
        out.append(
            "job latency: "
            + "  ".join(
                f"{k}={lat[k]:.2f}s"
                for k in ("p50", "p95", "p99", "mean", "max") if k in lat
            )
        )
    phases = stats.get("phases") or {}
    if phases:
        out.append("")
        out.append(_table(
            ["phase", "count", "total_s"],
            [
                [name, int(row.get("count", 0)),
                 f"{row.get('total_s', 0.0):.2f}"]
                for name, row in sorted(
                    phases.items(), key=lambda kv: -kv[1].get("total_s", 0)
                )
            ],
        ))
    cache = stats.get("cache") or {}
    if cache:
        out.append("")
        out.append(
            f"replay cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses "
            f"(rate {cache.get('hit_rate', 0.0):.0%}), "
            f"~{cache.get('est_saved_s', 0.0):.1f}s replay time saved"
        )
    backends = stats.get("backends") or {}
    if backends:
        out.append(_table(
            ["backend", "jobs", "total_s"],
            [
                [name, int(row.get("jobs", 0)),
                 f"{row.get('total_s', 0.0):.2f}"]
                for name, row in sorted(backends.items())
            ],
        ))
    workers = stats.get("workers") or {}
    if workers:
        out.append("")
        out.append(_table(
            ["worker pid", "jobs", "busy_s", "cpu_s", "rss_peak_kb"],
            [
                [pid, int(w.get("jobs", 0)), f"{w.get('busy_s', 0.0):.2f}",
                 f"{w.get('cpu_s', 0.0):.2f}", int(w.get("rss_peak_kb", 0))]
                for pid, w in sorted(workers.items())
            ],
        ))
    stragglers = stats.get("stragglers") or []
    if stragglers:
        out.append("")
        out.append("stragglers (> 2x p50):")
        out.append(_table(
            ["job", "key", "dur_s", "x p50", "dominant phase"],
            [
                [s.get("job"), s.get("key", "?"),
                 f"{s.get('dur_s', 0.0):.2f}", f"{s.get('ratio', 0.0):.1f}",
                 f"{s.get('dominant_phase', '?')} "
                 f"({s.get('phase_s', 0.0):.2f}s)"]
                for s in stragglers
            ],
        ))
    failures = stats.get("failures") or []
    if failures:
        out.append("")
        out.append(_table(
            ["failed job", "key", "kind", "attempts"],
            [
                [f.get("job"), f.get("key", "?"), f.get("kind", "?"),
                 f.get("attempts", 1)]
                for f in failures
            ],
        ))
    return "\n".join(out)


def load_recorded(
    path: str, prefer: str | None = None
) -> tuple[str, dict[str, Any]]:
    """Load and classify what ``path`` holds: ``("run", manifest)`` for a
    run.json manifest, ``("sweep", stats)`` for a sweep.json sweep-stats
    manifest, ``("chrome", payload)`` for a raw Chrome trace.  For a
    directory, run.json wins unless it is absent or ``prefer="sweep"``.

    Raises ValueError with a one-line message on missing, corrupt, or
    unrecognized input — never a traceback-worthy parse error.
    """
    p = pathlib.Path(path)
    if p.is_dir():
        run = p / "run.json"
        sweep = p / "sweep.json"
        if prefer == "sweep" and sweep.is_file():
            p = sweep
        elif run.is_file():
            p = run
        elif sweep.is_file():
            p = sweep
        else:
            raise ValueError(f"no run.json or sweep.json found under {p}")
    if not p.is_file():
        raise ValueError(f"{p} does not exist")
    try:
        with p.open() as fh:
            payload = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p} is not valid JSON: {exc}") from exc
    if isinstance(payload, dict) and payload.get("schema") == RUN_SCHEMA:
        return "run", payload
    if isinstance(payload, dict) and payload.get("schema") == SWEEP_SCHEMA:
        return "sweep", payload
    if isinstance(payload, dict) and "traceEvents" in payload:
        return "chrome", payload
    raise ValueError(
        f"{p} is neither a repro run manifest ({RUN_SCHEMA}), a sweep-stats "
        f"manifest ({SWEEP_SCHEMA}), nor a Chrome trace"
    )


def inspect_json(path: str, prefer: str | None = None) -> dict[str, Any]:
    """Machine-readable inspection payload (``repro inspect --json``)."""
    kind, payload = load_recorded(path, prefer=prefer)
    if kind in ("run", "sweep"):
        return {"kind": kind, **payload}
    events = payload.get("traceEvents", [])
    by_name: dict[str, int] = {}
    for ev in events:
        if ev.get("ph") == "M":
            continue
        name = ev.get("name", "?")
        by_name[name] = by_name.get(name, 0) + 1
    return {
        "kind": "chrome",
        "entries": len(events),
        "by_name": dict(sorted(by_name.items())),
        "other_data": payload.get("otherData") or {},
    }


def inspect_path(path: str, prefer: str | None = None) -> str:
    """Dispatch on what ``path`` holds; raises ValueError when unrecognized."""
    kind, payload = load_recorded(path, prefer=prefer)
    if kind == "run":
        return summarize_run(payload)
    if kind == "sweep":
        return summarize_sweep(payload)
    return summarize_chrome(payload)
