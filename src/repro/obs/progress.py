"""Live progress + structured logging for harness sweeps.

:class:`SweepProgress` is the reporter :func:`repro.harness.parallel.run_jobs`
drives as jobs complete: a single updating status line (job count, jobs/sec,
ETA, alone-replay cache hit stats, failures) on a TTY, or one plain line per
job otherwise, plus an optional JSON-lines structured log so long sweeps can
be analysed after the fact (one record per job with key, duration, outcome,
and cache counters).

The reporter is deliberately decoupled from the pool: it only consumes
:class:`~repro.harness.parallel.JobOutcome` objects, so inline and pooled
sweeps report identically and tests can drive it directly.  When the
sweep runs with the telemetry bus enabled (:mod:`repro.obs.bus`), pass
the bus directory as ``bus=`` and the reporter additionally tails the
worker channels between completions, warning once per job that has been
in flight longer than 3× the EWMA job duration — the live counterpart of
the post-hoc straggler attribution in ``SweepStats``.

ETA uses an exponentially weighted moving average (α = 0.3) of the gaps
between job *completions* rather than the global mean rate: on
heterogeneous sweeps (a 12-app pair next to a 2-app pair) the global
mean is dominated by ancient history and the ETA jitters wildly as big
jobs land; the EWMA tracks the recent regime, and because completion
gaps already fold in worker parallelism it needs no jobs/worker model.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, TYPE_CHECKING, Callable

from repro.obs import bus as obs_bus

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.harness.parallel import JobOutcome


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class SweepProgress:
    """Progress reporter for one sweep of ``total`` workload jobs."""

    #: EWMA smoothing factor for completion gaps and job durations.
    ALPHA = 0.3
    #: A job is a live straggler when in flight > this × EWMA duration.
    STRAGGLER_FACTOR = 3.0

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        label: str = "sweep",
        jsonl: IO[str] | None = None,
        bus: "str | obs_bus.BusReader | None" = None,
        clock: Callable[[], float] | None = None,
        wall: Callable[[], float] | None = None,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.jsonl = jsonl
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.busy_seconds = 0.0
        self._clock = clock if clock is not None else time.perf_counter
        # Bus timestamps are wall clock; straggler ages compare against this
        # (separately injectable so tests can pin the scan deterministically
        # without disturbing the perf_counter-based gap/ETA EWMAs).
        self._wall = wall if wall is not None else time.time
        self._t0 = self._clock()
        self._last_done_t = self._t0
        self._ewma_gap: float | None = None   # between completions
        self._ewma_dur: float | None = None   # job durations
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._closed = False
        self._bus: obs_bus.BusReader | None = None
        if bus is not None:
            self._bus = (
                bus if isinstance(bus, obs_bus.BusReader)
                else obs_bus.BusReader(bus)
            )
        self._inflight: dict[tuple, dict] = {}
        self._settled: set[tuple] = set()
        self._warned: set[tuple] = set()

    # ------------------------------------------------------------- protocol

    def job_done(self, outcome: "JobOutcome") -> None:
        """Record one completed job and refresh the status line."""
        now = self._clock()
        gap = max(0.0, now - self._last_done_t)
        self._last_done_t = now
        self._ewma_gap = self._ewma(self._ewma_gap, gap)
        self._ewma_dur = self._ewma(self._ewma_dur, outcome.duration_s)
        self.done += 1
        self.busy_seconds += outcome.duration_s
        if not outcome.ok:
            self.failed += 1
        cache = outcome.cache or {}
        self.cache_hits += cache.get("hits", 0)
        self.cache_misses += cache.get("misses", 0)
        self._emit_line(outcome)
        if self.jsonl is not None:
            self._emit_json(outcome)
        if self._bus is not None:
            self._check_stragglers()

    def _ewma(self, prev: float | None, value: float) -> float:
        if prev is None:
            return value
        return self.ALPHA * value + (1.0 - self.ALPHA) * prev

    def _check_stragglers(self) -> None:
        """Tail the bus channels; warn once per suspiciously old job."""
        # One poll() batch spans multiple channel files, and the reader
        # yields them in file order, not event order — a job's parent-side
        # ``outcome`` can surface *before* its worker-side ``job_start``.
        # Apply the whole batch in timestamp order (start wins ties, so a
        # same-instant end still settles it) and remember fully settled
        # jobs, so the in-flight set is consistent before the 3×-EWMA scan
        # and an already-finished job can never be warned as a straggler.
        order = {"job_start": 0}
        batch = sorted(
            self._bus.poll(),
            key=lambda r: (r.get("ts") or 0.0, order.get(r.get("t"), 1)),
        )
        for rec in batch:
            t = rec.get("t")
            key = (rec.get("sweep"), rec.get("job"))
            if t == "job_start":
                if key not in self._settled:
                    self._inflight[key] = rec
            elif t == "job_end":
                self._inflight.pop(key, None)
            elif t == "outcome":
                self._settled.add(key)
                self._inflight.pop(key, None)
        if self._ewma_dur is None or self._ewma_dur <= 0:
            return
        threshold = self.STRAGGLER_FACTOR * self._ewma_dur
        now = self._wall()  # bus timestamps are wall clock
        for key, rec in self._inflight.items():
            if key in self._warned:
                continue
            age = now - rec.get("ts", now)
            if age > threshold:
                self._warned.add(key)
                self.stream.write(
                    f"\n{self.label}: straggler: job {rec.get('job')} "
                    f"({rec.get('key', '?')}) in flight {age:.1f}s "
                    f"(> {self.STRAGGLER_FACTOR:.0f}x EWMA "
                    f"{self._ewma_dur:.1f}s)\n"
                )
                self.stream.flush()

    def close(self) -> None:
        """Finish the status line and print the sweep summary."""
        if self._closed:
            return
        self._closed = True
        if self._tty:
            self.stream.write("\n")
        elapsed = self._clock() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        self.stream.write(
            f"{self.label}: {self.done}/{self.total} jobs in "
            f"{elapsed:.1f}s ({rate:.2f} jobs/s), {self.failed} failed, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses\n"
        )
        self.stream.flush()

    # ------------------------------------------------------------ rendering

    def _status(self, outcome: "JobOutcome") -> str:
        elapsed = self._clock() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        # EWMA of completion gaps, not the global mean rate: stable on
        # heterogeneous sweeps, adapts when the job-size regime shifts.
        remaining = (
            (self.total - self.done) * self._ewma_gap
            if self._ewma_gap else 0.0
        )
        bits = [
            f"[{self.done}/{self.total}]",
            outcome.job.key,
            "ok" if outcome.ok else "FAIL",
            f"{outcome.duration_s:.1f}s",
            f"{rate:.2f} jobs/s",
            f"eta {_fmt_eta(remaining)}",
        ]
        if self.cache_hits or self.cache_misses:
            bits.append(f"cache {self.cache_hits}h/{self.cache_misses}m")
        if self.failed:
            bits.append(f"{self.failed} failed")
        return " | ".join(bits)

    def _emit_line(self, outcome: "JobOutcome") -> None:
        line = self._status(outcome)
        if self._tty:
            # Single self-overwriting status line; pad to clear leftovers.
            self.stream.write("\r" + line.ljust(78)[:120])
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _emit_json(self, outcome: "JobOutcome") -> None:
        record = {
            "event": "job_done",
            "ts": time.time(),
            "index": outcome.index,
            "key": outcome.job.key,
            "ok": outcome.ok,
            "duration_s": round(outcome.duration_s, 4),
            "done": self.done,
            "total": self.total,
            "cache": outcome.cache,
        }
        if not outcome.ok:
            record["error"] = (outcome.error or "").strip().splitlines()[-1:]
        self.jsonl.write(json.dumps(record, sort_keys=True) + "\n")
        self.jsonl.flush()


class JsonlLogger:
    """Owns a JSONL log file and builds SweepProgress reporters over it."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = None

    def open(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def reporter(self, total: int, **kw) -> SweepProgress:
        return SweepProgress(total, jsonl=self.open(), **kw)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
