"""Live progress + structured logging for harness sweeps.

:class:`SweepProgress` is the reporter :func:`repro.harness.parallel.run_jobs`
drives as jobs complete: a single updating status line (job count, jobs/sec,
ETA, alone-replay cache hit stats, failures) on a TTY, or one plain line per
job otherwise, plus an optional JSON-lines structured log so long sweeps can
be analysed after the fact (one record per job with key, duration, outcome,
and cache counters).

The reporter is deliberately decoupled from the pool: it only consumes
:class:`~repro.harness.parallel.JobOutcome` objects, so inline and pooled
sweeps report identically and tests can drive it directly.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.harness.parallel import JobOutcome


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class SweepProgress:
    """Progress reporter for one sweep of ``total`` workload jobs."""

    def __init__(
        self,
        total: int,
        stream: IO[str] | None = None,
        label: str = "sweep",
        jsonl: IO[str] | None = None,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.jsonl = jsonl
        self.done = 0
        self.failed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.busy_seconds = 0.0
        self._t0 = time.perf_counter()
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._closed = False

    # ------------------------------------------------------------- protocol

    def job_done(self, outcome: "JobOutcome") -> None:
        """Record one completed job and refresh the status line."""
        self.done += 1
        self.busy_seconds += outcome.duration_s
        if not outcome.ok:
            self.failed += 1
        cache = outcome.cache or {}
        self.cache_hits += cache.get("hits", 0)
        self.cache_misses += cache.get("misses", 0)
        self._emit_line(outcome)
        if self.jsonl is not None:
            self._emit_json(outcome)

    def close(self) -> None:
        """Finish the status line and print the sweep summary."""
        if self._closed:
            return
        self._closed = True
        if self._tty:
            self.stream.write("\n")
        elapsed = time.perf_counter() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        self.stream.write(
            f"{self.label}: {self.done}/{self.total} jobs in "
            f"{elapsed:.1f}s ({rate:.2f} jobs/s), {self.failed} failed, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses\n"
        )
        self.stream.flush()

    # ------------------------------------------------------------ rendering

    def _status(self, outcome: "JobOutcome") -> str:
        elapsed = time.perf_counter() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = (self.total - self.done) / rate if rate > 0 else 0.0
        bits = [
            f"[{self.done}/{self.total}]",
            outcome.job.key,
            "ok" if outcome.ok else "FAIL",
            f"{outcome.duration_s:.1f}s",
            f"{rate:.2f} jobs/s",
            f"eta {_fmt_eta(remaining)}",
        ]
        if self.cache_hits or self.cache_misses:
            bits.append(f"cache {self.cache_hits}h/{self.cache_misses}m")
        if self.failed:
            bits.append(f"{self.failed} failed")
        return " | ".join(bits)

    def _emit_line(self, outcome: "JobOutcome") -> None:
        line = self._status(outcome)
        if self._tty:
            # Single self-overwriting status line; pad to clear leftovers.
            self.stream.write("\r" + line.ljust(78)[:120])
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _emit_json(self, outcome: "JobOutcome") -> None:
        record = {
            "event": "job_done",
            "ts": time.time(),
            "index": outcome.index,
            "key": outcome.job.key,
            "ok": outcome.ok,
            "duration_s": round(outcome.duration_s, 4),
            "done": self.done,
            "total": self.total,
            "cache": outcome.cache,
        }
        if not outcome.ok:
            record["error"] = (outcome.error or "").strip().splitlines()[-1:]
        self.jsonl.write(json.dumps(record, sort_keys=True) + "\n")
        self.jsonl.flush()


class JsonlLogger:
    """Owns a JSONL log file and builds SweepProgress reporters over it."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: IO[str] | None = None

    def open(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a")
        return self._fh

    def reporter(self, total: int, **kw) -> SweepProgress:
        return SweepProgress(total, jsonl=self.open(), **kw)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
