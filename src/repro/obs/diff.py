"""Cross-run differential reports: field-by-field comparison of runs.

``repro trace`` writes a ``run.json`` manifest and ``--sweep-log`` writes a
JSONL record per sweep job; :func:`diff_paths` compares two of either kind
field-by-field with a configurable relative tolerance and reports every
drifting leaf with its dotted path.  The output doubles as

* a machine-readable verdict (``DiffResult.to_dict()``, schema
  ``repro.obs.diff/1``) — the CI ``model-audit-diff`` job runs the same
  workload audited and unaudited and requires zero drift, turning the
  bit-identical observability contract into a regression gate;
* a human drift table (``DiffResult.render()``) for triaging *why* two
  runs disagree (which model, which app, which counter).

Volatile bookkeeping keys (wall-clock timestamps, job durations, cache hit
counters, export file lists) are ignored by default; simulation outputs
are never ignored.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.bus import SWEEP_SCHEMA

#: Schema tag for :meth:`DiffResult.to_dict` payloads.
DIFF_SCHEMA = "repro.obs.diff/1"

#: Keys that describe *how the run was executed*, not *what it computed* —
#: wall-clock and environment noise that legitimately differs between two
#: otherwise-identical runs.
DEFAULT_IGNORE = frozenset({
    "ts",          # wall-clock timestamp (sweep JSONL)
    "duration_s",  # job wall time (sweep JSONL)
    "done",        # completion-order counter (sweep JSONL)
    "index",       # pool submission index (sweep JSONL)
    "cache",       # alone-replay cache hit/miss counters
    "files",       # export file list (depends on --format selection)
})

#: Extra ignores when both sides are sweep-stats manifests
#: (``repro.obs.sweep/1``): host-execution noise — which pids ran the
#: jobs, how parallel the pool happened to be — while the *performance
#: distribution* (latency percentiles, phase totals, cache economics,
#: per-backend split) stays comparable under ``--rel-tol``.  Unlike a
#: run diff, the cache block here is a deliberate comparand: cache-hit
#: drift between two sweeps is exactly what this gate is for.
SWEEP_IGNORE = (DEFAULT_IGNORE | frozenset({
    "workers",              # pid-keyed: never comparable across hosts
    "stragglers",           # job-level wall-clock outliers (host noise)
    "failures",             # diagnosed via ok/failed counts instead
    "wall_s",               # sweep wall-clock
    "busy_s",               # sum of job wall-clocks
    "cpu_s",                # host CPU seconds
    "parallel_efficiency",  # derived from wall_s + workers
    "rss_peak_kb",          # host memory
})) - frozenset({"cache", "duration_s"})

#: Extra ignores when both sides are results-store records
#: (``repro.store.record/1``): provenance describes *when/where* the
#: record was made (git rev, timestamps, config fingerprint of the host
#: invocation) and ``record_id`` is derived from the payload — so a store
#: diff gates exactly the scenario identity plus the computed payload.
STORE_IGNORE = DEFAULT_IGNORE | frozenset({
    "provenance",  # git rev / created_at / fingerprints: recording noise
    "record_id",   # content hash: payload drift already shows directly
})

#: Per-schema default ignore sets, applied by :func:`diff_paths` when both
#: sides carry the same ``schema`` tag and the caller didn't customize the
#: ignore set.  The store record tag is a literal (importing it from
#: :mod:`repro.store` would cycle back into :mod:`repro.obs`).
SCHEMA_IGNORES: dict[str, frozenset[str]] = {
    SWEEP_SCHEMA: SWEEP_IGNORE,
    "repro.store.record/1": STORE_IGNORE,
}


@dataclass
class Drift:
    """One leaf that differs between the two runs."""

    path: str  #: dotted path, list indices in brackets: ``workload.estimates.DASE[0]``
    a: Any
    b: Any
    #: Relative difference for numeric leaves (None for structural drift).
    rel: float | None = None
    #: What kind of drift: "value", "type", "missing-in-a", "missing-in-b",
    #: "length".
    note: str = "value"


@dataclass
class DiffResult:
    """Outcome of one comparison; ``identical`` is the CI verdict."""

    path_a: str
    path_b: str
    rel_tol: float
    compared: int = 0  #: leaves compared
    ignored: int = 0  #: leaves skipped via the ignore set
    drifts: list[Drift] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.drifts

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": DIFF_SCHEMA,
            "a": self.path_a,
            "b": self.path_b,
            "rel_tol": self.rel_tol,
            "compared": self.compared,
            "ignored": self.ignored,
            "identical": self.identical,
            "drift": [
                {
                    "path": d.path,
                    "a": d.a,
                    "b": d.b,
                    "rel": d.rel,
                    "note": d.note,
                }
                for d in self.drifts
            ],
        }

    def render(self, limit: int = 40) -> str:
        """Human drift table; the verdict line comes first."""
        head = (
            f"{'IDENTICAL' if self.identical else 'DRIFT'}: "
            f"{self.compared} leaves compared, {self.ignored} ignored, "
            f"{len(self.drifts)} drifting "
            f"(rel tol {self.rel_tol:g})\n"
            f"  a: {self.path_a}\n  b: {self.path_b}"
        )
        if self.identical:
            return head
        rows = [["path", "a", "b", "rel", "note"],
                ["----", "-", "-", "---", "----"]]
        for d in self.drifts[:limit]:
            rows.append([
                d.path,
                _fmt_val(d.a),
                _fmt_val(d.b),
                "-" if d.rel is None else f"{d.rel:.3g}",
                d.note,
            ])
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        table = "\n".join(
            "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
            for r in rows
        )
        tail = (
            f"\n… {len(self.drifts) - limit} more drifting leaves"
            if len(self.drifts) > limit else ""
        )
        return f"{head}\n{table}{tail}"


def _fmt_val(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.6g}"
    s = str(v)
    return s if len(s) <= 28 else s[:25] + "…"


def _rel(a: float, b: float) -> float:
    denom = max(abs(a), abs(b))
    return 0.0 if denom == 0 else abs(a - b) / denom


class _Walker:
    def __init__(self, rel_tol: float, ignore: frozenset[str]) -> None:
        self.rel_tol = rel_tol
        self.ignore = ignore
        self.compared = 0
        self.ignored = 0
        self.drifts: list[Drift] = []

    def walk(self, a: Any, b: Any, path: str) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for k in sorted(set(a) | set(b), key=str):
                sub = f"{path}.{k}" if path else str(k)
                if str(k) in self.ignore:
                    self.ignored += 1
                    continue
                if k not in a:
                    self.drifts.append(
                        Drift(sub, None, b[k], note="missing-in-a"))
                elif k not in b:
                    self.drifts.append(
                        Drift(sub, a[k], None, note="missing-in-b"))
                else:
                    self.walk(a[k], b[k], sub)
            return
        if isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                self.drifts.append(
                    Drift(path, len(a), len(b), note="length"))
                return
            for i, (x, y) in enumerate(zip(a, b)):
                self.walk(x, y, f"{path}[{i}]")
            return
        # Leaves.  bool is an int subclass — compare exactly, never by
        # tolerance; numeric cross-type (int vs float) compares by value.
        self.compared += 1
        num_a = isinstance(a, (int, float)) and not isinstance(a, bool)
        num_b = isinstance(b, (int, float)) and not isinstance(b, bool)
        if num_a and num_b:
            if math.isnan(a) and math.isnan(b):
                return
            rel = _rel(float(a), float(b))
            if rel > self.rel_tol:
                self.drifts.append(Drift(path, a, b, rel=rel))
            return
        if type(a) is not type(b):
            self.drifts.append(Drift(path, a, b, note="type"))
            return
        if a != b:
            self.drifts.append(Drift(path, a, b))


def navigate(payload: Any, dotted: str) -> Any:
    """Resolve a dotted ``--only`` path (``workload.estimates.DASE``)
    against a parsed payload; raises ValueError with the failing step."""
    cur = payload
    if not dotted:
        return cur
    for step in dotted.split("."):
        if isinstance(cur, dict) and step in cur:
            cur = cur[step]
        elif isinstance(cur, list) and step.lstrip("-").isdigit():
            idx = int(step)
            if not -len(cur) <= idx < len(cur):
                raise ValueError(f"index {step!r} out of range in --only")
            cur = cur[idx]
        else:
            raise ValueError(f"path step {step!r} not found in --only")
    return cur


def load_comparable(path: str | os.PathLike) -> Any:
    """Load something diffable from ``path``:

    * a directory → its ``run.json`` manifest (or ``sweep.json``, or a
      results-store ``index.json``);
    * a ``.jsonl`` sweep log → ``{record key: record}`` so two logs pair
      by job key, not completion order;
    * any other file → parsed JSON.

    Raises ValueError with a one-line message on missing or corrupt input
    — a store directory whose index is corrupt or missing reports through
    the same contract, never a traceback.
    """
    p = pathlib.Path(path)
    if p.is_dir():
        for candidate in ("run.json", "sweep.json", "index.json"):
            manifest = p / candidate
            if manifest.is_file():
                break
        else:
            if (p / "records").is_dir():
                raise ValueError(
                    f"store index {p / 'index.json'} is missing but "
                    f"{p / 'records'} holds records — restore the index "
                    "or re-import"
                )
            raise ValueError(
                f"no run.json, sweep.json, or index.json found under {p}"
            )
        p = manifest
    if not p.is_file():
        raise ValueError(f"{p} does not exist")
    try:
        if p.suffix == ".jsonl":
            records: dict[str, Any] = {}
            with p.open() as fh:
                for n, line in enumerate(fh):
                    line = line.strip()
                    if not line:
                        continue
                    rec = json.loads(line)
                    key = rec.get("key") if isinstance(rec, dict) else None
                    records[str(key) if key is not None else f"line{n}"] = rec
            return records
        with p.open() as fh:
            return json.load(fh)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{p} is not valid JSON: {exc}") from exc


def diff_payloads(
    a: Any,
    b: Any,
    path_a: str = "a",
    path_b: str = "b",
    rel_tol: float = 0.0,
    ignore: Sequence[str] | frozenset[str] = DEFAULT_IGNORE,
) -> DiffResult:
    """Compare two parsed payloads field-by-field."""
    walker = _Walker(rel_tol, frozenset(ignore))
    walker.walk(a, b, "")
    res = DiffResult(str(path_a), str(path_b), rel_tol)
    res.compared = walker.compared
    res.ignored = walker.ignored
    res.drifts = walker.drifts
    return res


def diff_paths(
    path_a: str | os.PathLike,
    path_b: str | os.PathLike,
    rel_tol: float = 0.0,
    ignore: Sequence[str] | frozenset[str] = DEFAULT_IGNORE,
    only: str | None = None,
) -> DiffResult:
    """Load and compare two run manifests / sweep logs / JSON files.

    When both sides carry the same schema tag and the caller did not
    customize the ignore set, the per-schema default from
    :data:`SCHEMA_IGNORES` applies automatically: ``repro diff sweepA
    sweepB --rel-tol 0.2`` gates latency-distribution and cache-hit-rate
    drift without tripping on pids and wall-clock noise, and a store-
    record diff skips provenance while gating scenario + payload.
    """
    a = load_comparable(path_a)
    b = load_comparable(path_b)
    if (
        ignore is DEFAULT_IGNORE
        and isinstance(a, dict) and isinstance(b, dict)
        and a.get("schema") is not None
        and a.get("schema") == b.get("schema")
    ):
        ignore = SCHEMA_IGNORES.get(a["schema"], DEFAULT_IGNORE)
    if only:
        a = navigate(a, only)
        b = navigate(b, only)
    label_a = str(path_a) + (f" :: {only}" if only else "")
    label_b = str(path_b) + (f" :: {only}" if only else "")
    return diff_payloads(a, b, label_a, label_b, rel_tol, ignore)
