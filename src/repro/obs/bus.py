"""Cross-process telemetry bus for harness sweeps.

PR 3 made a *single run* observable; a sweep fanned out through
:func:`repro.harness.parallel.run_jobs` was still a set of black-box
worker processes.  This module is the sweep-scope spine: every worker
(and the inline path, so inline and pooled sweeps measure identically)
appends compact JSON-lines records to its own channel file under a bus
directory, and the parent aggregates them — live (the progress reporter
tails the channels for straggler warnings) and post hoc (a unified
Chrome/Perfetto trace with one track per worker, a :class:`SweepStats`
roll-up, and a merged sweep-wide cProfile table).

Record taxonomy (schema :data:`BUS_SCHEMA`, one JSON object per line):

* ``meta``      — first line of every channel file (schema, pid, role);
* ``sweep``     — parent marks the start of one :func:`run_jobs` call
  (sweep id, job count), so several sweeps can share one bus directory;
* ``job_start`` — worker picked up a job (flushed immediately, so a
  crashed worker still leaves evidence of what it was running);
* ``span``      — one timed phase of the job lifecycle: ``dequeue``
  (submit → worker pickup), ``simulate`` (the shared run, with backend
  and event-engine mode), ``replay`` (one alone replay, with its
  replay-cache verdict), ``serialize`` (result pickling, pooled only);
* ``job_end``   — job finished in the worker: wall/CPU time, peak RSS,
  cache counters, backend (flushed immediately);
* ``outcome``   — the parent's settled verdict for the job (ok, failure
  kind, attempts, resumed) — the only record a hard-crashed job gets
  beyond its ``job_start``, which is how failure spans are attributed.

Channels are append-only and torn-line tolerant: a worker killed
mid-write corrupts at most its last line, which :func:`read_bus` skips.

The bus is **off by default and free when off**: the harness consults
one module-level channel reference (:func:`current`), so the disabled
path is a handful of ``is None`` checks per *job* — nothing in the
simulator's cycle loop is touched (the CI ``sweep-obs`` job gates this
against the same <3% budget as single-run observability).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

#: Schema tag carried by every channel's ``meta`` record.
BUS_SCHEMA = "repro.obs.bus/1"
#: Schema tag of the aggregated ``sweep.json`` manifest.
SWEEP_SCHEMA = "repro.obs.sweep/1"

#: Chrome phases :func:`sweep_chrome_trace` may emit (kept local so the
#: bus has no import edge back into :mod:`repro.obs.export`).
_PHASES = frozenset({"i", "X", "C", "M"})

try:  # POSIX: exact CPU time + peak RSS for the calling process
    import resource as _resource

    def _rusage() -> tuple[float, int]:
        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        return ru.ru_utime + ru.ru_stime, int(ru.ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX fallback
    def _rusage() -> tuple[float, int]:
        t = os.times()
        return t.user + t.system, 0


# --------------------------------------------------------------------------
# Worker-side channel
# --------------------------------------------------------------------------


class WorkerChannel:
    """One process's append-only JSONL channel into a bus directory.

    Spans recorded between :meth:`job_start` and :meth:`job_end` inherit
    the current (sweep, job) context, so instrumentation sites (e.g. the
    alone-replay loop in :mod:`repro.harness.runner`) never need to know
    which job they are serving.  ``job_start``/``job_end`` flush; spans
    are buffered until the next flush, so a crash loses at most the
    spans of the in-flight job — never its start record.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.directory / f"bus-{self.pid}.jsonl"
        fresh = not self.path.exists()
        self._fh = self.path.open("a")
        self._sweep: str | None = None
        self._job: int | None = None
        self._job_t0 = 0.0
        self._job_cpu0 = 0.0
        if fresh:
            self.record(
                {"t": "meta", "schema": BUS_SCHEMA, "pid": self.pid,
                 "ts": time.time()},
                flush=True,
            )

    def record(self, rec: dict, flush: bool = False) -> None:
        """Append one raw record (callers supply the ``t`` tag)."""
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        if flush:
            self._fh.flush()

    def job_start(
        self,
        sweep: str,
        job: int,
        key: str,
        attempt: int = 1,
        submit_ts: float | None = None,
    ) -> None:
        """Enter job context; emits the (flushed) start record and, when
        the parent's submit timestamp is known, the ``dequeue`` span."""
        now = time.time()
        self._sweep = sweep
        self._job = job
        self._job_t0 = now
        self._job_cpu0 = _rusage()[0]
        self.record(
            {"t": "job_start", "sweep": sweep, "job": job, "key": key,
             "pid": self.pid, "ts": now, "attempt": attempt},
            flush=True,
        )
        if submit_ts is not None and now > submit_ts:
            self.span("dequeue", now - submit_ts, ts=now)

    def span(self, name: str, dur_s: float, ts: float | None = None,
             **args: Any) -> None:
        """One timed phase of the current job (buffered)."""
        rec: dict[str, Any] = {
            "t": "span", "name": name, "sweep": self._sweep,
            "job": self._job, "pid": self.pid,
            "ts": ts if ts is not None else time.time(),
            "dur": dur_s,
        }
        if args:
            rec["args"] = args
        self.record(rec)

    def job_end(
        self,
        ok: bool,
        cache: dict | None = None,
        backend: str | None = None,
        failure_kind: str | None = None,
    ) -> None:
        """Leave job context; emits the (flushed) end record with the
        job's wall/CPU time and the process's peak RSS so far."""
        now = time.time()
        cpu, rss_kb = _rusage()
        rec: dict[str, Any] = {
            "t": "job_end", "sweep": self._sweep, "job": self._job,
            "pid": self.pid, "ts": now, "dur": now - self._job_t0,
            "ok": ok, "cpu_s": max(0.0, cpu - self._job_cpu0),
            "rss_peak_kb": rss_kb,
        }
        if cache is not None:
            rec["cache"] = cache
        if backend is not None:
            rec["backend"] = backend
        if failure_kind is not None:
            rec["failure_kind"] = failure_kind
        self.record(rec, flush=True)
        self._sweep = None
        self._job = None

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - disk gone
            pass


#: The process-wide active channel; ``None`` = bus off (the free path).
_ACTIVE: WorkerChannel | None = None


def activate(directory: str | os.PathLike) -> WorkerChannel:
    """Open (or reuse) this process's channel into ``directory``.

    Idempotent per directory: pool workers call this once per job and
    keep appending to the same file; switching directories closes the
    old channel first.
    """
    global _ACTIVE
    directory = pathlib.Path(directory)
    if _ACTIVE is not None:
        if _ACTIVE.directory == directory and _ACTIVE.pid == os.getpid():
            return _ACTIVE
        if _ACTIVE.pid == os.getpid():
            _ACTIVE.close()
        # else: inherited across a fork — abandon the parent's channel
        # without closing it, so its buffered records are not replayed
        # into the file from the child.
    _ACTIVE = WorkerChannel(directory)
    return _ACTIVE


def deactivate() -> None:
    """Close and clear this process's channel (no-op when off)."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.pid == os.getpid():
        _ACTIVE.close()
    _ACTIVE = None


def current() -> WorkerChannel | None:
    """The active channel, or None — instrumentation sites' single check."""
    return _ACTIVE


# --------------------------------------------------------------------------
# Parent-side reading
# --------------------------------------------------------------------------


def bus_files(directory: str | os.PathLike) -> list[pathlib.Path]:
    """The channel files under a bus directory, in stable order."""
    d = pathlib.Path(directory)
    if not d.is_dir():
        return []
    return sorted(d.glob("bus-*.jsonl"))


def _parse_lines(text: str) -> list[dict]:
    out = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn write from a killed worker
        if isinstance(rec, dict):
            out.append(rec)
    return out


def read_bus(directory: str | os.PathLike) -> list[dict]:
    """All records from every channel, torn-line tolerant, ts-ordered."""
    records: list[dict] = []
    for path in bus_files(directory):
        try:
            records.extend(_parse_lines(path.read_text()))
        except OSError:  # pragma: no cover - file vanished mid-read
            continue
    records.sort(key=lambda r: r.get("ts", 0.0))
    return records


class BusReader:
    """Incremental tail-reader over a bus directory.

    The live progress reporter polls this between job completions; only
    complete (newline-terminated) new lines are consumed, so a record
    mid-write is simply picked up on the next poll.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self._offsets: dict[pathlib.Path, int] = {}

    def poll(self) -> list[dict]:
        """New complete records since the last poll, across all channels."""
        out: list[dict] = []
        for path in bus_files(self.directory):
            offset = self._offsets.get(path, 0)
            try:
                with path.open("r") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:  # pragma: no cover
                continue
            if not chunk:
                continue
            complete = chunk.rfind("\n") + 1
            self._offsets[path] = offset + len(chunk[:complete].encode())
            out.extend(_parse_lines(chunk[:complete]))
        return out


# --------------------------------------------------------------------------
# Aggregation: SweepStats
# --------------------------------------------------------------------------


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sequence (0..1)."""
    if not values:
        return 0.0
    vals = sorted(values)
    if len(vals) == 1:
        return vals[0]
    pos = q * (len(vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(vals) - 1)
    frac = pos - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


@dataclass
class _JobTrail:
    """Everything the bus recorded about one (sweep, job) pair."""

    sweep: str
    job: int
    key: str = "?"
    start: dict | None = None
    end: dict | None = None
    spans: list[dict] = field(default_factory=list)
    outcome: dict | None = None
    attempts: list[tuple[dict | None, dict | None]] = field(
        default_factory=list
    )


def _collate(records: Iterable[dict]) -> dict[tuple[str, int], _JobTrail]:
    """Group raw records into per-job trails (last attempt wins)."""
    trails: dict[tuple[str, int], _JobTrail] = {}

    def trail(rec: dict) -> _JobTrail:
        k = (str(rec.get("sweep")), int(rec.get("job", -1)))
        if k not in trails:
            trails[k] = _JobTrail(sweep=k[0], job=k[1])
        return trails[k]

    for rec in records:
        t = rec.get("t")
        if t == "job_start":
            tr = trail(rec)
            tr.attempts.append((rec, None))
            tr.start = rec
            tr.end = None  # a retry's start supersedes the prior end
            tr.key = rec.get("key", tr.key)
        elif t == "job_end":
            tr = trail(rec)
            tr.end = rec
            if tr.attempts and tr.attempts[-1][1] is None:
                tr.attempts[-1] = (tr.attempts[-1][0], rec)
            else:
                tr.attempts.append((None, rec))
        elif t == "span":
            trail(rec).spans.append(rec)
        elif t == "outcome":
            tr = trail(rec)
            tr.outcome = rec
            tr.key = rec.get("key", tr.key)
    return trails


def _dominant_phase(trail: _JobTrail) -> tuple[str, float]:
    """(phase name, seconds) of the job's longest recorded span."""
    best, best_s = "simulate", 0.0
    totals: dict[str, float] = {}
    for sp in trail.spans:
        name = sp.get("name", "?")
        if name == "replay" and (sp.get("args") or {}).get("cached"):
            name = "replay(cached)"
        totals[name] = totals.get(name, 0.0) + float(sp.get("dur", 0.0))
    for name, total in totals.items():
        if total > best_s:
            best, best_s = name, total
    return best, best_s


@dataclass
class SweepStats:
    """Aggregated roll-up of one bus directory (possibly several sweeps).

    ``latency`` percentiles cover *completed* jobs only; crashed jobs —
    a ``job_start`` (or parent ``outcome``) with no ``job_end`` — are
    counted in ``failed``/``incomplete`` and attributed in ``failures``.
    ``cache["est_saved_s"]`` is the hit count times the mean *uncached*
    replay span, the honest economics of the alone-replay cache.
    """

    n_jobs: int = 0
    ok: int = 0
    failed: int = 0
    incomplete: int = 0  #: started (or settled) but never wrote job_end
    resumed: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cpu_s: float = 0.0
    parallel_efficiency: float = 0.0
    latency: dict[str, float] = field(default_factory=dict)
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    cache: dict[str, float] = field(default_factory=dict)
    backends: dict[str, dict[str, float]] = field(default_factory=dict)
    workers: dict[str, dict[str, float]] = field(default_factory=dict)
    stragglers: list[dict] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "SweepStats":
        """Aggregate raw bus records (see :func:`read_bus`)."""
        stats = cls()
        trails = _collate(records)
        durations: list[float] = []
        completed: list[_JobTrail] = []
        ts_lo: float | None = None
        ts_hi = 0.0
        for rec in records:
            ts = rec.get("ts")
            if isinstance(ts, (int, float)):
                ts_lo = ts if ts_lo is None else min(ts_lo, ts)
                ts_hi = max(ts_hi, ts)

        replay_uncached: list[float] = []
        replay_cached: list[float] = []
        for trail in trails.values():
            stats.n_jobs += 1
            out = trail.outcome or {}
            ok = out.get("ok", trail.end.get("ok") if trail.end else None)
            if out.get("resumed"):
                stats.resumed += 1
            if ok:
                stats.ok += 1
            else:
                stats.failed += 1
                stats.failures.append({
                    "job": trail.job,
                    "key": trail.key,
                    "kind": out.get("failure_kind")
                    or (trail.end or {}).get("failure_kind")
                    or ("crash" if trail.start and not trail.end
                        else "exception"),
                    "attempts": out.get("attempts", len(trail.attempts)),
                })
            if trail.start is not None and trail.end is None:
                stats.incomplete += 1
            end = trail.end
            if end is not None:
                dur = float(end.get("dur", 0.0))
                durations.append(dur)
                completed.append(trail)
                stats.busy_s += dur
                stats.cpu_s += float(end.get("cpu_s", 0.0))
                backend = end.get("backend")
                if backend:
                    b = stats.backends.setdefault(
                        backend, {"jobs": 0, "total_s": 0.0})
                    b["jobs"] += 1
                    b["total_s"] += dur
                cache = end.get("cache")
                if cache:
                    for k in ("hits", "misses", "stores"):
                        stats.cache[k] = (
                            stats.cache.get(k, 0) + cache.get(k, 0)
                        )
                w = stats.workers.setdefault(
                    str(end.get("pid", "?")),
                    {"jobs": 0, "busy_s": 0.0, "cpu_s": 0.0,
                     "rss_peak_kb": 0},
                )
                w["jobs"] += 1
                w["busy_s"] += dur
                w["cpu_s"] += float(end.get("cpu_s", 0.0))
                w["rss_peak_kb"] = max(
                    w["rss_peak_kb"], end.get("rss_peak_kb", 0))
            for sp in trail.spans:
                name = sp.get("name", "?")
                dur = float(sp.get("dur", 0.0))
                ph = stats.phases.setdefault(
                    name, {"count": 0, "total_s": 0.0})
                ph["count"] += 1
                ph["total_s"] += dur
                if name == "replay":
                    if (sp.get("args") or {}).get("cached"):
                        replay_cached.append(dur)
                    else:
                        replay_uncached.append(dur)

        if durations:
            stats.latency = {
                "p50": percentile(durations, 0.50),
                "p95": percentile(durations, 0.95),
                "p99": percentile(durations, 0.99),
                "mean": sum(durations) / len(durations),
                "max": max(durations),
            }
            p50 = stats.latency["p50"]
            for trail in completed:
                dur = float(trail.end.get("dur", 0.0))
                if p50 > 0 and dur > 2.0 * p50:
                    phase, phase_s = _dominant_phase(trail)
                    stats.stragglers.append({
                        "job": trail.job,
                        "key": trail.key,
                        "dur_s": dur,
                        "ratio": dur / p50,
                        "dominant_phase": phase,
                        "phase_s": phase_s,
                    })
            stats.stragglers.sort(key=lambda s: -s["dur_s"])
        if stats.cache:
            probes = stats.cache.get("hits", 0) + stats.cache.get("misses", 0)
            stats.cache["hit_rate"] = (
                stats.cache.get("hits", 0) / probes if probes else 0.0
            )
            mean_uncached = (
                sum(replay_uncached) / len(replay_uncached)
                if replay_uncached else 0.0
            )
            stats.cache["est_saved_s"] = (
                stats.cache.get("hits", 0) * mean_uncached
                - sum(replay_cached)
            )
        if ts_lo is not None:
            stats.wall_s = max(0.0, ts_hi - ts_lo)
        n_workers = len(stats.workers)
        if stats.wall_s > 0 and n_workers:
            stats.parallel_efficiency = min(
                1.0, stats.busy_s / (stats.wall_s * n_workers))
        return stats

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe ``sweep.json`` payload (schema :data:`SWEEP_SCHEMA`)."""
        return {
            "schema": SWEEP_SCHEMA,
            "n_jobs": self.n_jobs,
            "ok": self.ok,
            "failed": self.failed,
            "incomplete": self.incomplete,
            "resumed": self.resumed,
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "cpu_s": self.cpu_s,
            "parallel_efficiency": self.parallel_efficiency,
            "latency": dict(self.latency),
            "phases": {k: dict(v) for k, v in sorted(self.phases.items())},
            "cache": dict(self.cache),
            "backends": {
                k: dict(v) for k, v in sorted(self.backends.items())
            },
            "workers": {
                k: dict(v) for k, v in sorted(self.workers.items())
            },
            "stragglers": list(self.stragglers),
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepStats":
        stats = cls()
        for name in ("n_jobs", "ok", "failed", "incomplete", "resumed",
                     "wall_s", "busy_s", "cpu_s", "parallel_efficiency"):
            setattr(stats, name, d.get(name, getattr(stats, name)))
        stats.latency = dict(d.get("latency", {}))
        stats.phases = {k: dict(v) for k, v in d.get("phases", {}).items()}
        stats.cache = dict(d.get("cache", {}))
        stats.backends = {
            k: dict(v) for k, v in d.get("backends", {}).items()
        }
        stats.workers = {k: dict(v) for k, v in d.get("workers", {}).items()}
        stats.stragglers = list(d.get("stragglers", []))
        stats.failures = list(d.get("failures", []))
        return stats

    def comparable(self) -> dict[str, Any]:
        """The wall-clock-free projection: identical between an inline
        and a pooled execution of the same job list (the determinism
        contract ``tests/test_bus.py`` enforces)."""
        return {
            "n_jobs": self.n_jobs,
            "ok": self.ok,
            "failed": self.failed,
            "cache": {
                k: self.cache.get(k, 0)
                for k in ("hits", "misses", "stores")
            },
            "backends": {
                k: int(v.get("jobs", 0))
                for k, v in sorted(self.backends.items())
            },
            "phases": {
                k: int(v.get("count", 0))
                for k, v in sorted(self.phases.items())
                # dequeue/serialize only exist when a pool is involved.
                if k in ("simulate", "replay")
            },
        }


# --------------------------------------------------------------------------
# Sweep-level Chrome trace
# --------------------------------------------------------------------------


def sweep_chrome_trace(records: Iterable[dict]) -> dict[str, Any]:
    """Chrome ``trace_event`` payload: one process per worker pid, one
    slice per job attempt (tid 0) with its phase spans on tid 1.

    A job whose worker died mid-run (``job_start`` with no ``job_end``)
    still gets a slice: its duration comes from the parent's ``outcome``
    record when one exists (else the last timestamp seen on the bus),
    and its args carry the attributed failure kind — the partial-trace
    contract for crashed sweeps.
    """
    records = list(records)
    trails = _collate(records)
    ts_values = [
        r["ts"] for r in records if isinstance(r.get("ts"), (int, float))
    ]
    t0 = min(ts_values) if ts_values else 0.0
    t_hi = max(ts_values) if ts_values else 0.0

    def us(ts: float) -> float:
        return max(0.0, (ts - t0) * 1e6)

    pids = sorted({
        int(r.get("pid")) for r in records
        if r.get("t") in ("job_start", "job_end", "span")
        and isinstance(r.get("pid"), int)
    })
    pid_index = {pid: i for i, pid in enumerate(pids)}

    events: list[dict[str, Any]] = []
    for trail in sorted(trails.values(), key=lambda t: (t.sweep, t.job)):
        out = trail.outcome or {}
        for start, end in (trail.attempts or [(trail.start, trail.end)]):
            anchor = start or end
            if anchor is None:
                continue
            pid = pid_index.get(anchor.get("pid"), 0)
            if start is not None and end is not None:
                ts, dur = start["ts"], float(end.get("dur", 0.0))
                ok = bool(end.get("ok"))
                args: dict[str, Any] = {
                    "job": trail.job, "sweep": trail.sweep, "ok": ok,
                    "attempt": start.get("attempt", 1),
                }
                if end.get("cache"):
                    args["cache"] = end["cache"]
                if end.get("backend"):
                    args["backend"] = end["backend"]
                name = trail.key if ok else f"{trail.key} (failed)"
            elif start is not None:
                # Crashed or timed-out attempt: synthesize the slice.
                ts = start["ts"]
                dur = float(out.get("duration_s") or 0.0)
                if dur <= 0.0:
                    dur = max(0.0, t_hi - ts)
                kind = out.get("failure_kind") or "crash"
                args = {
                    "job": trail.job, "sweep": trail.sweep, "ok": False,
                    "attempt": start.get("attempt", 1), "failure": kind,
                }
                name = f"{trail.key} ({kind})"
            else:
                continue
            events.append({
                "name": name, "ph": "X", "ts": us(ts),
                "dur": dur * 1e6, "pid": pid, "tid": 0, "args": args,
            })
        for sp in trail.spans:
            pid = pid_index.get(sp.get("pid"), 0)
            dur = float(sp.get("dur", 0.0))
            args = {"job": trail.job, **(sp.get("args") or {})}
            events.append({
                "name": sp.get("name", "?"), "ph": "X",
                "ts": us(float(sp.get("ts", t0)) - dur),
                "dur": dur * 1e6, "pid": pid, "tid": 1, "args": args,
            })
        if trail.start is not None and trail.end is None:
            pid = pid_index.get(trail.start.get("pid"), 0)
            events.append({
                "name": "worker lost", "ph": "i",
                "ts": us(trail.start["ts"]), "pid": pid, "tid": 0,
                "args": {"job": trail.job, "key": trail.key},
            })
    events.sort(key=lambda ev: ev["ts"])

    meta: list[dict[str, Any]] = []
    for pid, idx in sorted(pid_index.items(), key=lambda kv: kv[1]):
        meta.append({
            "name": "process_name", "ph": "M", "ts": 0.0,
            "pid": idx, "tid": 0,
            "args": {"name": f"worker {idx} (pid {pid})"},
        })
        meta.append({
            "name": "thread_name", "ph": "M", "ts": 0.0,
            "pid": idx, "tid": 0, "args": {"name": "jobs"},
        })
        meta.append({
            "name": "thread_name", "ph": "M", "ts": 0.0,
            "pid": idx, "tid": 1, "args": {"name": "phases"},
        })
    sweeps = sorted({t.sweep for t in trails.values()})
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.bus",
            "schema": BUS_SCHEMA,
            "clock": "wall time (1 us = 1 us)",
            "sweeps": sweeps,
            "n_jobs": len(trails),
            "n_workers": len(pids),
        },
    }


def validate_sweep_trace(payload: Any) -> None:
    """Structural validation of a sweep Chrome trace; raises ValueError
    on the first malformation (CI loads the emitted file through this).
    """
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ValueError("payload is not a {'traceEvents': [...]} object")
    seen_pids: set[int] = set()
    named_pids: set[int] = set()
    for n, ev in enumerate(payload["traceEvents"]):
        where = f"traceEvents[{n}]"
        if not isinstance(ev, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"{where} has no name")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"{where} has illegal phase {ph!r}")
        if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
            raise ValueError(f"{where} has bad ts {ev.get('ts')!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            raise ValueError(f"{where} has non-integer pid/tid")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                raise ValueError(f"{where} slice has bad dur")
        if ph == "M" and ev["name"] == "process_name":
            named_pids.add(ev["pid"])
        elif ph != "M":
            seen_pids.add(ev["pid"])
    unnamed = seen_pids - named_pids
    if unnamed:
        raise ValueError(f"pids without process_name metadata: {sorted(unnamed)}")


# --------------------------------------------------------------------------
# Per-job profiling: dump in workers, merge in the parent
# --------------------------------------------------------------------------


def profile_path(
    directory: str | os.PathLike, job: int, attempt: int
) -> pathlib.Path:
    """Where a worker dumps one job attempt's pstats inside the bus dir."""
    return pathlib.Path(directory) / f"prof-job{job}-a{attempt}.pstats"


def merge_profiles(directory: str | os.PathLike):
    """Merge every per-job pstats dump under ``directory`` into one
    :class:`pstats.Stats` (None when there are no dumps).  Corrupt dumps
    (a worker killed mid-write) are skipped, not fatal.
    """
    import pstats

    merged = None
    for path in sorted(pathlib.Path(directory).glob("prof-*.pstats")):
        try:
            if merged is None:
                merged = pstats.Stats(str(path))
            else:
                merged.add(str(path))
        except Exception:  # noqa: BLE001 - torn dump from a dead worker
            continue
    return merged


def profile_table(stats, limit: int = 15) -> list[list[str]]:
    """Top-``limit`` functions of a merged profile by cumulative time:
    rows of [calls, tottime, cumtime, function]."""
    rows: list[list[str]] = []
    entries = sorted(
        stats.stats.items(), key=lambda kv: -kv[1][3]  # ct, cumulative
    )
    for (filename, lineno, funcname), (cc, nc, tt, ct, _) in entries[:limit]:
        where = f"{os.path.basename(filename)}:{lineno}({funcname})"
        rows.append([str(nc), f"{tt:.3f}", f"{ct:.3f}", where])
    return rows
