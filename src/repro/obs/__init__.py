"""repro.obs — observability for the simulator and harness.

Three layers, one recording:

* :class:`MetricsRegistry` — named hierarchical counters / gauges /
  histograms, published at interval boundaries and run end;
* :class:`EventTracer` — a bounded ring buffer of structured sim events
  (DRAM request lifecycle, L2 probes, SM stalls, interconnect packets,
  interval markers, SM migrations) exportable as Chrome ``trace_event``
  JSON (Perfetto), CSV, or a self-contained HTML run report;
* :class:`Telemetry` — the interval-granularity view (per-app IPC, α,
  estimator outputs), folded into the same registry/tracer.

Tracing is **off by default and free when off**: every instrumented hot
path holds a direct ``self._trace`` reference resolved at construction
time, so the disabled path is one ``is not None`` attribute check — no
RNG draws, no counter perturbation, and bit-identical simulation results
either way (enforced by ``tests/test_obs_golden.py`` and the CI
``obs-overhead`` gate).

Enable per run (preferred)::

    from repro.obs import Observation
    obs = Observation()
    result = run_workload(["SD", "SB"], trace=obs)   # or GPU(..., obs=obs)
    export_chrome_trace(obs.tracer, "trace.json")

or process-wide for everything constructed afterwards::

    import repro.obs
    obs = repro.obs.enable()      # every new GPU records into this bundle
    ...
    repro.obs.disable()
"""

from __future__ import annotations

from repro.obs.audit import (
    AUDIT_SCHEMA,
    AuditLog,
    DecisionAudit,
    ModelAudit,
    export_audit_json,
)
from repro.obs.bus import (
    BUS_SCHEMA,
    SWEEP_SCHEMA,
    BusReader,
    SweepStats,
    WorkerChannel,
    merge_profiles,
    profile_table,
    read_bus,
    sweep_chrome_trace,
    validate_sweep_trace,
)
from repro.obs.diff import (
    DEFAULT_IGNORE,
    DIFF_SCHEMA,
    DiffResult,
    Drift,
    diff_paths,
    diff_payloads,
    load_comparable,
)
from repro.obs.export import (
    chrome_trace_events,
    events_csv,
    export_chrome_trace,
    export_events_csv,
    export_sweep_trace,
    to_chrome_trace,
    trace_summary,
)
from repro.obs.inspect import inspect_json, inspect_path, summarize_sweep
from repro.obs.progress import JsonlLogger, SweepProgress
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    export_html_report,
    export_sweep_report,
    render_html_report,
    render_sweep_report,
)
from repro.obs.telemetry import Sample, Telemetry
from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    EventTracer,
    Observation,
    PID_ICNT_REPLY,
    PID_ICNT_REQUEST,
    PID_SIM,
    TID_BANK_BASE,
    TID_PART_BASE,
    TID_SM_BASE,
)

#: Process-wide default recording; ``None`` = observability off (the
#: zero-overhead path).  Managed through :func:`enable` / :func:`disable`;
#: :class:`~repro.sim.gpu.GPU` reads it once at construction time.
_DEFAULT: Observation | None = None


def enable(obs: Observation | None = None) -> Observation:
    """Install ``obs`` (or a fresh :class:`Observation`) as the process-wide
    default recording for GPUs constructed afterwards; returns it."""
    global _DEFAULT
    _DEFAULT = obs or Observation()
    return _DEFAULT


def disable() -> None:
    """Clear the process-wide default; new GPUs run unobserved (free)."""
    global _DEFAULT
    _DEFAULT = None


def active() -> Observation | None:
    """The process-wide default recording, or None when off."""
    return _DEFAULT


__all__ = [
    "Observation",
    "EventTracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "Sample",
    "SweepProgress",
    "JsonlLogger",
    "enable",
    "disable",
    "active",
    "DEFAULT_CAPACITY",
    "PID_SIM",
    "PID_ICNT_REQUEST",
    "PID_ICNT_REPLY",
    "TID_SM_BASE",
    "TID_PART_BASE",
    "TID_BANK_BASE",
    "chrome_trace_events",
    "to_chrome_trace",
    "export_chrome_trace",
    "events_csv",
    "export_events_csv",
    "trace_summary",
    "render_html_report",
    "export_html_report",
    "inspect_path",
    "inspect_json",
    "AuditLog",
    "ModelAudit",
    "DecisionAudit",
    "export_audit_json",
    "AUDIT_SCHEMA",
    "DiffResult",
    "Drift",
    "diff_paths",
    "diff_payloads",
    "load_comparable",
    "DIFF_SCHEMA",
    "DEFAULT_IGNORE",
    "BUS_SCHEMA",
    "SWEEP_SCHEMA",
    "WorkerChannel",
    "BusReader",
    "SweepStats",
    "read_bus",
    "sweep_chrome_trace",
    "validate_sweep_trace",
    "merge_profiles",
    "profile_table",
    "export_sweep_trace",
    "summarize_sweep",
    "render_sweep_report",
    "export_sweep_report",
]
