"""Command-line interface: run any paper experiment by name.

    python -m repro list
    python -m repro table3
    python -m repro fig5 --limit 4
    python -m repro fig5 --jobs 4 --cache-dir results/alone_cache
    python -m repro run SD SB --cycles 120000
    python -m repro trace SD SB --out obs_run --format html,chrome
    python -m repro inspect obs_run
    REPRO_FULL=1 python -m repro fig9 --jobs 8 --progress
"""

from __future__ import annotations

import argparse
import sys
import time


def _cmd_list(args) -> int:
    rows = [
        ("table1", "DASE hardware cost"),
        ("table3", "alone DRAM bandwidth utilization of the suite"),
        ("fig2", "unfairness + bandwidth decomposition (motivation)"),
        ("fig3", "performance vs request service rate"),
        ("fig4", "MBB served-request conservation"),
        ("fig5", "two-app estimation accuracy (DASE vs MISE vs ASM)"),
        ("fig6", "four-app estimation accuracy"),
        ("fig7", "error distribution"),
        ("fig8a", "sensitivity to the SM split"),
        ("fig8b", "sensitivity to the SM count"),
        ("fig9", "DASE-Fair vs even split"),
        ("fig-degradation", "DASE error + fairness vs injected counter "
                            "noise (repro.faults)"),
        ("fig-churn", "open-system sweep: DASE error + multi-metric "
                      "fairness vs arrival rate (repro.opensys)"),
        ("run", "run an arbitrary workload: python -m repro run SD SB"),
        ("trace", "record a traced run: python -m repro trace SD SB"),
        ("inspect", "summarize any recorded artifact (kind auto-detected "
                    "from its schema tag)"),
        ("diff", "compare two recorded runs or sweep logs field-by-field"),
        ("store", "hash-addressed results store: list/show/record/"
                  "import/gc/diff scenario records"),
        ("trajectory", "cross-run accuracy/fairness/perf series per "
                       "scenario from a results store"),
    ]
    from repro.harness.report import table

    print(table(["experiment", "description"], rows))
    return 0


def _cmd_table1(args) -> int:
    from repro.config import GPUConfig
    from repro.harness.report import table
    from repro.hwcost import dase_hardware_cost, table1_rows

    cfg = GPUConfig()
    print(table(["component", "cost"], table1_rows(cfg, args.apps)))
    cost = dase_hardware_cost(cfg, args.apps)
    print(f"\nper partition: {cost.per_partition_bytes:.0f} B "
          f"({100 * cost.fraction_of_l2():.3f}% of a 64 KB L2 slice)")
    return 0


def _cmd_table3(args) -> int:
    from repro import GPU
    from repro.harness import scaled_config
    from repro.harness.report import pct, table
    from repro.workloads import SUITE, TABLE3_BW_UTILIZATION

    cfg = scaled_config()
    rows = []
    for name, spec in SUITE.items():
        gpu = GPU(cfg, [spec])
        gpu.run(args.cycles or 60_000)
        bw = gpu.bandwidth_utilization(0)
        rows.append([name, pct(TABLE3_BW_UTILIZATION[name]), pct(bw)])
        print(f"  measured {name}", file=sys.stderr)
    print(table(["app", "paper", "measured"], rows))
    return 0


def _resolve_backend(args) -> str | None:
    """Validate --backend early, with a CLI-grade message.

    Unknown names are caught by argparse ``choices``; this adds the
    availability check (e.g. ``vectorized`` without NumPy installed) so the
    failure happens before any sweep work starts.
    """
    backend = getattr(args, "backend", None)
    if backend is None:
        return None
    from repro.sim.backends import backend_available

    if not backend_available(backend):
        raise SystemExit(
            f"backend {backend!r} is not available in this environment "
            "(the 'vectorized' backend requires NumPy; 'reference' always "
            "works)"
        )
    return backend


def _cmd_fig(args) -> int:
    from repro.harness.parallel import set_default_progress, set_sweep_defaults

    name = args.experiment
    # --sweep-trace enables the cross-worker telemetry bus for every sweep
    # the driver runs; artifacts (trace.json, sweep.json, report.html, and
    # under --profile-sweep the merged pstats) land in the named directory.
    sweep_trace = getattr(args, "sweep_trace", None)
    profile_sweep = bool(getattr(args, "profile_sweep", False))
    if profile_sweep and not sweep_trace:
        raise SystemExit("--profile-sweep requires --sweep-trace DIR")
    bus_dir = None
    if sweep_trace:
        import pathlib

        bus_dir = str(pathlib.Path(sweep_trace) / "bus")
    # --progress / --sweep-log attach a live reporter (and a JSONL log) to
    # every sweep the experiment driver runs, via the ambient factory — the
    # drivers themselves need no progress plumbing.  With a bus enabled the
    # reporter also tails the worker channels for straggler warnings.
    logger = None
    if getattr(args, "progress", False) or getattr(args, "sweep_log", None):
        from repro.obs import JsonlLogger, SweepProgress

        if args.sweep_log:
            logger = JsonlLogger(args.sweep_log)
            set_default_progress(
                lambda total: logger.reporter(total, label=name, bus=bus_dir)
            )
        else:
            set_default_progress(
                lambda total: SweepProgress(total, label=name, bus=bus_dir)
            )
    retries = getattr(args, "retries", None) or 0
    if retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {retries}")
    timeout_s = getattr(args, "timeout", None)
    if timeout_s is not None and timeout_s <= 0:
        raise SystemExit(f"--timeout must be > 0, got {timeout_s}")
    # --timeout / --retries / --resume-dir / --sweep-trace harden and
    # observe every sweep the driver runs, via the ambient sweep defaults
    # (same pattern as progress).
    set_sweep_defaults(
        timeout_s=timeout_s,
        retries=retries,
        checkpoint_dir=getattr(args, "resume_dir", None),
        bus_dir=bus_dir,
        profile=profile_sweep,
    )
    try:
        rc = _run_fig(args, name)
        if sweep_trace:
            _write_sweep_artifacts(sweep_trace, bus_dir, profile_sweep)
        return rc
    finally:
        set_default_progress(None)
        set_sweep_defaults(timeout_s=None, retries=0, checkpoint_dir=None,
                           bus_dir=None, profile=False)
        from repro.obs import bus as obs_bus

        obs_bus.deactivate()
        if logger is not None:
            logger.close()


def _fig_driver_kw(args, name: str) -> dict:
    """Parse figure-specific CLI flags into run_figure driver kwargs."""
    kw = {}
    if name in ("fig5", "fig6", "fig7"):
        kw["limit"] = args.limit
    elif name == "fig-degradation":
        sigmas = None
        if args.sigmas:
            try:
                sigmas = tuple(float(s) for s in args.sigmas.split(",") if s)
            except ValueError:
                raise SystemExit(f"bad --sigmas value {args.sigmas!r}")
        kw["pair"] = tuple(args.pair) if args.pair else None
        kw["sigmas"] = sigmas
    elif name == "fig-churn":
        from repro.workloads import APP_NAMES

        rates = None
        if args.rates:
            try:
                rates = tuple(float(r) for r in args.rates.split(",") if r)
            except ValueError:
                raise SystemExit(f"bad --rates value {args.rates!r}")
        for a in tuple(args.base or ()) + tuple(args.pool or ()):
            if a not in APP_NAMES:
                raise SystemExit(
                    f"unknown app {a!r}; choose from {APP_NAMES}"
                )
        kw.update(
            base=tuple(args.base) if args.base else None,
            pool=tuple(args.pool) if args.pool else None,
            rates=rates, mean_lifetime=args.mean_lifetime,
            shared_cycles=args.cycles,
        )
    return kw


def _run_fig(args, name: str) -> int:
    # Execution, rendering, and scenario identity all live in
    # repro.harness.figures — the same dispatch `repro serve` uses, so the
    # CLI and the service record byte-identical results.  Sweep-shaped
    # experiments fan out across --jobs worker processes and memoise alone
    # replays under --cache-dir (see docs/parallel-harness.md);
    # fig-degradation and fig-churn interpret --seed as their fault/arrival
    # seed instead of the GPUConfig seed.
    from repro.harness import figures as fg

    run = fg.run_figure(
        name, seed=getattr(args, "seed", None), jobs=args.jobs,
        cache_dir=args.cache_dir, backend=_resolve_backend(args),
        **_fig_driver_kw(args, name),
    )
    print(run.rendered)
    if getattr(args, "out", None):
        if name == "fig-degradation":
            _write_degradation_artifacts(args.out, run.result)
        elif name == "fig-churn":
            _write_churn_artifacts(args.out, run.result)
    if getattr(args, "store", None):
        try:
            rec, spec = fg.record_figure(args.store, run)
        except (ValueError, OSError) as exc:
            raise SystemExit(f"repro {name}: {exc}")
        print(
            f"\nrecorded {name} into {args.store} "
            f"(scenario {spec.scenario_id()[:12]}, "
            f"record {rec.record_id[:12]})",
            file=sys.stderr,
        )
    return 0


def _write_degradation_artifacts(out_dir: str, res) -> None:
    import json
    import pathlib

    from repro.obs.report import export_degradation_report

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    with (out / "degradation.json").open("w") as fh:
        json.dump(res.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    export_degradation_report(out / "report.html", res)
    print(f"\ndegradation artifacts written to {out}/ "
          "(degradation.json, report.html)", file=sys.stderr)


def _write_churn_artifacts(out_dir: str, res) -> None:
    import json
    import pathlib

    from repro.obs.report import export_churn_report

    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    with (out / "churn.json").open("w") as fh:
        json.dump(res.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    export_churn_report(out / "report.html", res)
    print(f"\nchurn artifacts written to {out}/ "
          "(churn.json, report.html)", file=sys.stderr)


def _write_sweep_artifacts(out_dir: str, bus_dir: str,
                           profile_sweep: bool) -> None:
    """Aggregate the worker bus channels under ``bus_dir`` into the sweep
    artifacts: Chrome trace, SweepStats JSON, HTML report, and (under
    --profile-sweep) the merged cProfile dump + hot-function table."""
    import json
    import pathlib

    from repro.obs import bus as obs_bus
    from repro.obs.export import export_sweep_trace
    from repro.obs.inspect import summarize_sweep
    from repro.obs.report import export_sweep_report

    records = obs_bus.read_bus(bus_dir)
    if not records:
        print(f"\nno bus records under {bus_dir}; sweep trace skipped "
              "(did the experiment run any sweeps?)", file=sys.stderr)
        return
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    payload = export_sweep_trace(records, out / "trace.json")
    stats = obs_bus.SweepStats.from_records(records)
    with (out / "sweep.json").open("w") as fh:
        json.dump(stats.to_dict(), fh, indent=1, sort_keys=True)
        fh.write("\n")
    profile_rows = None
    wrote = ["trace.json", "sweep.json", "report.html"]
    if profile_sweep:
        merged = obs_bus.merge_profiles(bus_dir)
        if merged is not None:
            merged.dump_stats(str(out / "profile.pstats"))
            profile_rows = obs_bus.profile_table(merged, limit=20)
            wrote.append("profile.pstats")
    export_sweep_report(out / "report.html", stats.to_dict(),
                        trace_payload=payload, profile_rows=profile_rows)
    print("\n" + summarize_sweep(stats.to_dict()))
    if profile_rows:
        from repro.harness.report import table

        print("\nsweep-wide hot functions (merged cProfile):")
        print(table(["ncalls", "tottime", "cumtime", "function"],
                    profile_rows))
    print(f"\nsweep observability artifacts written to {out}/ "
          f"({', '.join(wrote)})", file=sys.stderr)


def _cmd_run(args) -> int:
    from repro.harness import run_workload
    from repro.harness.report import pct, table
    from repro.workloads import APP_NAMES

    for a in args.apps:
        if a not in APP_NAMES:
            raise SystemExit(f"unknown app {a!r}; choose from {APP_NAMES}")
    models = tuple(args.models.split(",")) if args.models else ()
    obs = None
    if args.trace:
        from repro.obs import Observation

        obs = Observation()
    res = run_workload(args.apps, shared_cycles=args.cycles, models=models,
                       profile_path=args.profile, trace=obs,
                       backend=_resolve_backend(args))
    if args.profile:
        print(f"profile written to {args.profile} "
              f"(inspect: python -m pstats {args.profile})", file=sys.stderr)
    if args.trace:
        _write_trace_file(obs, res, args.trace, args.trace_format)
        print(f"{args.trace_format} trace written to {args.trace}",
              file=sys.stderr)
    rows = []
    for i, name in enumerate(res.names):
        row = [name, res.sm_partition[i], f"{res.actual_slowdowns[i]:.2f}"]
        for m in models:
            e = res.estimates[m][i]
            row.append("-" if e is None else f"{e:.2f}")
        rows.append(row)
    print(table(["app", "SMs", "actual"] + list(models), rows))
    print(f"\nunfairness {res.actual_unfairness:.2f}   "
          f"H-speedup {res.actual_hspeedup:.3f}")
    for m in models:
        print(f"{m} mean error: {pct(res.mean_error(m))}")
    return 0


def _write_trace_file(obs, result, path: str, fmt: str) -> None:
    """Export one recording as a single file in the requested format."""
    from repro.obs import (
        export_chrome_trace,
        export_events_csv,
        export_html_report,
    )

    if fmt == "chrome":
        export_chrome_trace(obs.tracer, path)
    elif fmt == "csv":
        export_events_csv(obs.tracer, path)
    elif fmt == "html":
        export_html_report(
            path,
            result=result,
            telemetry=obs.telemetry,
            tracer=obs.tracer,
            registry=obs.registry,
            audit=obs.audit,
            title="+".join(result.names),
        )
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown trace format {fmt!r}")


def _cmd_trace(args) -> int:
    import json
    import pathlib

    from repro.harness import run_workload
    from repro.obs import Observation, trace_summary
    from repro.obs.inspect import RUN_SCHEMA, summarize_run
    from repro.workloads import APP_NAMES

    for a in args.apps:
        if a not in APP_NAMES:
            raise SystemExit(f"unknown app {a!r}; choose from {APP_NAMES}")
    models = tuple(m for m in args.models.split(",") if m)
    formats = [f for f in args.format.split(",") if f]
    for f in formats:
        if f not in ("chrome", "csv", "html"):
            raise SystemExit(
                f"unknown trace format {f!r}; choose from chrome,csv,html"
            )

    kw = {"trace_capacity": args.trace_capacity} if args.trace_capacity else {}
    obs = Observation(audit=args.audit, **kw)

    # --policy dase-fair runs the real scheduler (it migrates SMs);
    # --audit alone attaches the dry-run shadow scheduler, which evaluates
    # and audits every interval but never migrates, so the audited run
    # stays bit-identical to a plain one.
    policy = None
    if args.policy == "dase-fair" or args.audit:
        from repro.harness import scaled_config
        from repro.policies import DASEFairPolicy

        policy = DASEFairPolicy(
            scaled_config(), dry_run=args.policy != "dase-fair"
        )
    res = run_workload(args.apps, shared_cycles=args.cycles, models=models,
                       policy=policy, trace=obs,
                       backend=_resolve_backend(args))

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    files: dict[str, str] = {}
    exports = {"chrome": "trace.json", "csv": "events.csv",
               "html": "report.html"}
    for fmt in formats:
        target = out / exports[fmt]
        _write_trace_file(obs, res, str(target), fmt)
        files[fmt] = exports[fmt]
    if obs.audit is not None:
        from repro.obs import export_audit_json

        export_audit_json(obs.audit, out / "audit.json")
        files["audit"] = "audit.json"
    manifest = {
        "schema": RUN_SCHEMA,
        "workload": res.to_dict(),
        "trace": trace_summary(obs.tracer),
        "metrics": obs.registry.snapshot(),
        "files": files,
    }
    if obs.audit is not None:
        manifest["audit"] = obs.audit.summary()
    with (out / "run.json").open("w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
    print(summarize_run(manifest))
    hints = []
    if "html" in files:
        hints.append("open report.html in a browser")
    if "chrome" in files:
        hints.append("load trace.json in https://ui.perfetto.dev")
    tail = f" ({'; '.join(hints)})" if hints else ""
    print(f"\nrecorded run written to {out}/{tail}")
    return 0


def _cmd_inspect(args) -> int:
    import json

    from repro.obs import inspect_path
    from repro.obs.inspect import inspect_json

    prefer = "sweep" if getattr(args, "sweep", False) else None
    try:
        if args.json:
            print(json.dumps(inspect_json(args.path, prefer=prefer),
                             indent=1, sort_keys=True))
        else:
            print(inspect_path(args.path, prefer=prefer))
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro inspect: {exc}")
    return 0


def _cmd_diff(args) -> int:
    import json

    from repro.obs.diff import DEFAULT_IGNORE, diff_paths

    ignore = (
        frozenset(k for k in args.ignore.split(",") if k)
        if args.ignore is not None
        else DEFAULT_IGNORE
    )
    try:
        res = diff_paths(args.a, args.b, rel_tol=args.rel_tol,
                         ignore=ignore, only=args.only)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro diff: {exc}")
    if args.json:
        print(json.dumps(res.to_dict(), indent=1, sort_keys=True))
    else:
        print(res.render())
    return 0 if res.identical else 1


def _open_store(args):
    from repro.store import ResultStore

    return ResultStore(args.store)


def _cmd_store_list(args) -> int:
    import json

    from repro.harness.report import table

    try:
        store = _open_store(args)
        rows = store.scenarios()
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    if args.json:
        print(json.dumps({"scenarios": rows}, indent=1, sort_keys=True))
        return 0
    if not rows:
        print(f"store {args.store} holds no recordings")
        return 0
    print(table(
        ["scenario", "id", "payload schema", "records", "last recorded"],
        [
            [r["scenario_name"], r["scenario_id"][:12], r["payload_schema"],
             r["records"], r["last"] or "-"]
            for r in rows
        ],
    ))
    return 0


def _cmd_store_show(args) -> int:
    import json

    from repro.obs.inspect import summarize_store_record

    try:
        rec = _open_store(args).load(args.ref)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    if args.payload:
        print(_open_store(args).export_payload(args.ref), end="")
    elif args.json:
        print(json.dumps(rec.to_dict(), indent=1, sort_keys=True))
    else:
        print(summarize_store_record(rec.to_dict()))
    return 0


def _cmd_store_record(args) -> int:
    import json

    from repro.store import PAYLOAD_SCHEMAS, scenario_for

    try:
        with open(args.payload) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"repro store: {exc}")
    schema = args.schema or PAYLOAD_SCHEMAS.get(args.scenario)
    if schema is None:
        raise SystemExit(
            f"repro store: no payload schema registered for scenario "
            f"{args.scenario!r}; pass --schema"
        )
    try:
        spec = scenario_for(args.scenario, seed=args.seed,
                            backend=args.backend)
        rec = _open_store(args).record(spec, payload, schema)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    print(f"recorded {args.scenario} → record {rec.record_id[:12]} "
          f"(scenario {rec.scenario_id[:12]})")
    return 0


def _cmd_store_import(args) -> int:
    try:
        rec = _open_store(args).import_legacy(
            args.file, scenario_name=args.name, payload_schema=args.schema
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    print(f"imported {args.file} → record {rec.record_id[:12]} "
          f"(scenario {rec.scenario.get('name')}, "
          f"schema {rec.payload_schema})")
    return 0


def _cmd_store_gc(args) -> int:
    try:
        stats = _open_store(args).gc(keep=args.keep)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    print(f"gc: {stats['entries']} index entries kept, "
          f"{stats['pruned']} pruned, "
          f"{stats['orphans_removed']} orphan record files removed")
    return 0


def _cmd_store_diff(args) -> int:
    import json

    from repro.obs.diff import STORE_IGNORE, diff_payloads, navigate

    ignore = (
        frozenset(k for k in args.ignore.split(",") if k)
        if args.ignore is not None
        else STORE_IGNORE
    )
    try:
        store = _open_store(args)
        a = store.load(args.a).to_dict()
        b = store.load(args.b).to_dict()
        if args.only:
            a = navigate(a, args.only)
            b = navigate(b, args.only)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro store: {exc}")
    suffix = f" :: {args.only}" if args.only else ""
    res = diff_payloads(a, b, args.a + suffix, args.b + suffix,
                        rel_tol=args.rel_tol, ignore=ignore)
    if args.json:
        print(json.dumps(res.to_dict(), indent=1, sort_keys=True))
    else:
        print(res.render())
    return 0 if res.identical else 1


def _cmd_trajectory(args) -> int:
    import json

    from repro.store import (
        export_trajectory_report,
        trajectory,
        trajectory_table,
    )

    try:
        store = _open_store(args)
        if args.json:
            print(json.dumps(trajectory(store, args.scenario),
                             indent=1, sort_keys=True))
        else:
            print(trajectory_table(store, args.scenario))
        if args.html:
            export_trajectory_report(
                args.html, store, scenario=args.scenario,
                bench_path=args.bench,
            )
            print(f"\ntrajectory dashboard written to {args.html}",
                  file=sys.stderr)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro trajectory: {exc}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ReproService

    if args.jobs is not None and args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    try:
        service = ReproService(
            args.state_dir, store_dir=args.store, cache_dir=args.cache_dir,
            host=args.host, port=args.port, jobs=args.jobs or 1,
            policy=args.policy, retries=args.retries,
            allow_chaos=args.allow_chaos,
        )
        url = service.start()
    except (ValueError, OSError) as exc:
        raise SystemExit(f"repro serve: {exc}")
    print(f"repro serve: listening on {url} "
          f"(state {args.state_dir}, policy {args.policy}, "
          f"jobs {service.n_jobs})", file=sys.stderr, flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _build_submission(args) -> tuple[str, dict]:
    """Turn `repro submit` flags into a (kind, spec) pair."""
    chosen = [bool(args.apps), args.scenario is not None,
              args.workloads is not None]
    if sum(chosen) != 1:
        raise SystemExit(
            "repro submit: choose exactly one of APPS..., --scenario, "
            "or --workloads"
        )
    opts = {"cycles": args.cycles, "seed": args.seed,
            "policy": args.policy, "backend": args.backend}
    if args.scenario is not None:
        from repro.store import SCENARIOS

        ref = args.scenario
        spec = {"seed": args.seed, "backend": args.backend}
        if args.limit is not None:
            spec["params"] = {"limit": args.limit}
        if ref in SCENARIOS:
            spec["name"] = ref
        else:
            spec["id"] = ref
        return "scenario", spec
    if args.workloads is not None:
        workloads = [
            [a for a in group.split("+") if a]
            for group in args.workloads.split(",") if group
        ]
        return "sweep", dict(opts, workloads=workloads)
    return "workload", dict(opts, apps=list(args.apps))


def _cmd_submit(args) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    kind, spec = _build_submission(args)
    try:
        client = ServiceClient(args.url, state_dir=args.state_dir,
                               timeout_s=args.timeout)
        receipt = client.submit(kind, spec, tenant=args.tenant)
    except (ServiceError, ValueError, OSError) as exc:
        raise SystemExit(f"repro submit: {exc}")
    job_id = receipt["job"]
    print(f"repro submit: job {job_id[:12]} "
          f"({'deduped' if receipt['deduped'] else 'queued'})",
          file=sys.stderr)
    if args.no_wait:
        print(json.dumps(receipt, indent=1, sort_keys=True))
        return 0
    try:
        for event in client.stream(job_id):
            print(f"repro submit: {json.dumps(event, sort_keys=True)}",
                  file=sys.stderr)
        status = client.status(job_id)
    except (ServiceError, OSError) as exc:
        raise SystemExit(f"repro submit: {exc}")
    print(json.dumps(status, indent=1, sort_keys=True))
    return 0 if status["status"] == "done" else 1


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="DASE reproduction — run paper experiments from the CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    t1 = sub.add_parser("table1", help="DASE hardware cost")
    t1.add_argument("--apps", type=int, default=4)
    t1.set_defaults(func=_cmd_table1)

    t3 = sub.add_parser("table3", help="alone bandwidth of all 15 apps")
    t3.add_argument("--cycles", type=int, default=None)
    t3.set_defaults(func=_cmd_table3)

    for fig in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8a", "fig8b", "fig9", "fig-degradation", "fig-churn"):
        if fig == "fig-degradation":
            fp = sub.add_parser(
                fig, help="degradation curves: DASE error + DASE-Fair "
                          "fairness vs injected counter noise")
        elif fig == "fig-churn":
            fp = sub.add_parser(
                fig, help="open-system churn sweep: DASE error + "
                          "multi-metric fairness vs arrival rate")
        else:
            fp = sub.add_parser(fig, help=f"reproduce {fig}")
        fp.add_argument("--limit", type=int, default=None,
                        help="limit the number of workloads swept")
        fp.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: inline)")
        fp.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk alone-replay cache "
                             "(default: $REPRO_CACHE_DIR, else no caching)")
        fp.add_argument("--progress", action="store_true",
                        help="live per-job progress (ETA, jobs/s, cache "
                             "hits) on stderr for every sweep")
        fp.add_argument("--sweep-log", default=None, metavar="PATH",
                        help="append one JSONL record per completed sweep "
                             "job to PATH (implies --progress)")
        fp.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock timeout in seconds for "
                             "pooled sweeps (hung workers are killed; "
                             "default: none)")
        fp.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry failed/crashed/timed-out sweep jobs up "
                             "to N times with exponential backoff "
                             "(default: 0)")
        fp.add_argument("--resume-dir", default=None, metavar="DIR",
                        help="checkpoint completed jobs under DIR so an "
                             "interrupted sweep resumes instead of "
                             "restarting (see docs/parallel-harness.md)")
        fp.add_argument("--backend", choices=("reference", "vectorized"),
                        default=None,
                        help="simulator core backend (result-equivalent; "
                             "'vectorized' needs NumPy — see "
                             "docs/performance.md)")
        fp.add_argument("--sweep-trace", default=None, metavar="DIR",
                        help="record a cross-worker telemetry bus for every "
                             "sweep and write trace.json (Perfetto), "
                             "sweep.json (SweepStats), and report.html "
                             "under DIR (see docs/observability.md)")
        fp.add_argument("--profile-sweep", action="store_true",
                        help="cProfile every sweep job and merge the dumps "
                             "into DIR/profile.pstats plus a hot-function "
                             "table (requires --sweep-trace)")
        fp.add_argument("--store", default=None, metavar="DIR",
                        help="record the typed result payload into the "
                             "hash-addressed results store under DIR "
                             "(see docs/results-store.md)")
        if fig not in ("fig-degradation", "fig-churn"):
            fp.add_argument("--seed", type=int, default=None,
                            help="simulation seed (default: the GPUConfig "
                                 "default); part of the scenario id under "
                                 "--store")
        if fig == "fig-degradation":
            fp.add_argument("--pair", nargs=2, default=None,
                            metavar=("APP1", "APP2"),
                            help="workload pair to degrade (default: SD SB)")
            fp.add_argument("--sigmas", default=None, metavar="S1,S2,..",
                            help="comma-separated counter-noise intensities "
                                 "(default: 0,0.05,0.1,0.2,0.4)")
            fp.add_argument("--seed", type=int, default=7,
                            help="fault seed shared by every σ (default: 7)")
            fp.add_argument("--out", default=None, metavar="DIR",
                            help="also write degradation.json and "
                                 "report.html under DIR")
        if fig == "fig-churn":
            fp.add_argument("--base", nargs=2, default=None,
                            metavar=("APP1", "APP2"),
                            help="resident base workload (default: SD SB)")
            fp.add_argument("--pool", nargs="+", default=None,
                            metavar="APP",
                            help="arrival pool apps (default: NN VA SC)")
            fp.add_argument("--rates", default=None, metavar="R1,R2,..",
                            help="comma-separated arrival rates per "
                                 "kilocycle (default: 0.05,0.1,0.2)")
            fp.add_argument("--mean-lifetime", type=int, default=40_000,
                            dest="mean_lifetime", metavar="CYCLES",
                            help="mean exponential lifetime of a dynamic "
                                 "app (default: 40000)")
            fp.add_argument("--cycles", type=int, default=None,
                            help="shared-run horizon in cycles "
                                 "(default: scaled config default)")
            fp.add_argument("--seed", type=int, default=2016,
                            help="arrival-schedule seed shared by every "
                                 "rate (default: 2016)")
            fp.add_argument("--out", default=None, metavar="DIR",
                            help="also write churn.json and report.html "
                                 "under DIR")
        fp.set_defaults(func=_cmd_fig, experiment=fig)

    rn = sub.add_parser("run", help="run an arbitrary workload")
    rn.add_argument("apps", nargs="+", help="suite app names, e.g. SD SB")
    rn.add_argument("--cycles", type=int, default=None)
    rn.add_argument("--models", default="DASE,MISE,ASM",
                    help="comma-separated estimators (empty for none)")
    rn.add_argument("--profile", default=None, metavar="PATH",
                    help="dump cProfile stats for the run to PATH "
                         "(see docs/performance.md)")
    rn.add_argument("--trace", default=None, metavar="PATH",
                    help="record the shared run and write the trace to PATH "
                         "(format set by --trace-format; see "
                         "docs/observability.md)")
    rn.add_argument("--trace-format", choices=("chrome", "csv", "html"),
                    default="chrome",
                    help="file format for --trace (default: chrome, "
                         "loadable in https://ui.perfetto.dev)")
    rn.add_argument("--backend", choices=("reference", "vectorized"),
                    default=None,
                    help="simulator core backend (result-equivalent; "
                         "'vectorized' needs NumPy — see "
                         "docs/performance.md)")
    rn.set_defaults(func=_cmd_run)

    sv = sub.add_parser(
        "serve", help="run the job-service daemon: local HTTP API with a "
                      "fairness-aware admission queue (see docs/service.md)"
    )
    sv.add_argument("--state-dir", required=True, metavar="DIR",
                    help="daemon state: journal, checkpoints, bus, replay "
                         "cache, endpoint file (restart with the same DIR "
                         "to resume interrupted jobs)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    sv.add_argument("--port", type=int, default=0,
                    help="bind port (default: 0 — ephemeral; the chosen "
                         "port lands in DIR/endpoint.json)")
    sv.add_argument("--store", default=None, metavar="DIR",
                    help="record scenario results into the hash-addressed "
                         "store under DIR (same records as `repro fig* "
                         "--store`)")
    sv.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="alone-replay cache shared by all jobs "
                         "(default: DIR/cache under --state-dir)")
    sv.add_argument("--jobs", type=int, default=1,
                    help="worker processes per admitted request "
                         "(default: 1)")
    sv.add_argument("--policy", choices=("fair", "fifo"), default="fair",
                    help="admission policy: 'fair' minimizes max/min "
                         "tenant slowdown, 'fifo' is arrival order "
                         "(default: fair)")
    sv.add_argument("--retries", type=int, default=0, metavar="N",
                    help="retry failed sweep jobs up to N times "
                         "(default: 0)")
    sv.add_argument("--allow-chaos", action="store_true",
                    help="accept 'chaos' submissions (test rigs only)")
    sv.set_defaults(func=_cmd_serve)

    sm = sub.add_parser(
        "submit", help="submit a job to a running `repro serve` daemon and "
                       "stream its events (see docs/service.md)"
    )
    sm.add_argument("apps", nargs="*",
                    help="suite app names for a single workload, e.g. SD SB")
    sm.add_argument("--scenario", default=None, metavar="NAME_OR_ID",
                    help="registered scenario name (fig2, fig9, ...) or a "
                         "scenario id prefix from GET /v1/scenarios")
    sm.add_argument("--workloads", default=None, metavar="W1,W2",
                    help="sweep spec: comma-separated '+'-joined app "
                         "groups, e.g. SD+SB,NN+VA")
    sm.add_argument("--url", default=None,
                    help="daemon URL (default: read from --state-dir)")
    sm.add_argument("--state-dir", default=None, metavar="DIR",
                    help="running daemon's state dir (reads endpoint.json)")
    sm.add_argument("--tenant", default="default",
                    help="tenant name for fairness accounting "
                         "(default: 'default')")
    sm.add_argument("--cycles", type=int, default=None,
                    help="shared-run horizon in cycles")
    sm.add_argument("--seed", type=int, default=None,
                    help="simulation seed")
    sm.add_argument("--policy", default=None,
                    help="SM-allocation policy for workload/sweep jobs")
    sm.add_argument("--backend", choices=("reference", "vectorized"),
                    default=None, help="simulator core backend")
    sm.add_argument("--limit", type=int, default=None,
                    help="scenario sweep limit (fig5/fig6/fig7)")
    sm.add_argument("--timeout", type=float, default=600.0, metavar="S",
                    help="client HTTP timeout per request (default: 600)")
    sm.add_argument("--no-wait", action="store_true",
                    help="print the receipt and exit without streaming")
    sm.set_defaults(func=_cmd_submit)

    tr = sub.add_parser(
        "trace",
        help="record a fully traced run and export trace + report + manifest",
    )
    tr.add_argument("apps", nargs="+", help="suite app names, e.g. SD SB")
    tr.add_argument("--cycles", type=int, default=None)
    tr.add_argument("--models", default="DASE,MISE,ASM",
                    help="comma-separated estimators (empty for none)")
    tr.add_argument("--out", default="obs_run", metavar="DIR",
                    help="output directory (default: obs_run)")
    tr.add_argument("--format", default="chrome,csv,html",
                    help="comma-separated exports: chrome,csv,html "
                         "(default: all)")
    tr.add_argument("--trace-capacity", type=int, default=None,
                    metavar="EVENTS",
                    help="event ring capacity (default: 262144; oldest "
                         "events drop once full)")
    tr.add_argument("--audit", action="store_true",
                    help="record model/decision audits (audit.json + "
                         "error & decision timelines in the HTML report); "
                         "attaches a dry-run shadow scheduler unless "
                         "--policy selects a real one — the audited run "
                         "stays bit-identical to a plain one")
    tr.add_argument("--policy", choices=("none", "dase-fair"),
                    default="none",
                    help="SM-allocation policy for the shared run "
                         "(default: none; dase-fair migrates SMs)")
    tr.add_argument("--backend", choices=("reference", "vectorized"),
                    default=None,
                    help="simulator core backend (result-equivalent; "
                         "'vectorized' needs NumPy — see "
                         "docs/performance.md)")
    tr.set_defaults(func=_cmd_trace)

    ins = sub.add_parser(
        "inspect", help="summarize any recorded artifact — run/sweep "
                        "manifests, audit dumps, diff verdicts, bus "
                        "channels, store records/indexes, Chrome traces; "
                        "the kind is auto-detected from the embedded "
                        "schema tag"
    )
    ins.add_argument("path", help="artifact file or directory (run dir, "
                                  "store dir, bus dir, run.json, "
                                  "sweep.json, audit.json, index.json, "
                                  "bus-*.jsonl, trace.json, ...)")
    ins.add_argument("--json", action="store_true",
                     help="emit the machine-readable inspection payload")
    ins.add_argument("--sweep", action="store_true",
                     help="when PATH is a directory holding both run.json "
                          "and sweep.json, prefer the sweep stats")
    ins.set_defaults(func=_cmd_inspect)

    df = sub.add_parser(
        "diff", help="field-by-field comparison of two recorded runs "
                     "(run dirs / run.json manifests / sweep JSONL logs / "
                     "sweep.json stats — latency + cache-hit drift); "
                     "exit 0 = identical, 1 = drift"
    )
    df.add_argument("a", help="run dir, run.json, .jsonl sweep log, or JSON")
    df.add_argument("b", help="same kinds as A")
    df.add_argument("--rel-tol", type=float, default=0.0, metavar="F",
                    help="relative tolerance for numeric leaves "
                         "(default: 0 — exact)")
    df.add_argument("--only", default=None, metavar="PATH",
                    help="restrict to a dotted sub-path, e.g. "
                         "workload.estimates or workload.estimates.DASE.0")
    df.add_argument("--ignore", default=None, metavar="K1,K2",
                    help="comma-separated keys to skip (default: volatile "
                         "bookkeeping: ts,duration_s,done,index,cache,files)")
    df.add_argument("--json", action="store_true",
                    help="emit the machine-readable diff verdict")
    df.set_defaults(func=_cmd_diff)

    st = sub.add_parser(
        "store", help="hash-addressed results store: list, show, record, "
                      "import, gc, and diff scenario records "
                      "(see docs/results-store.md)"
    )
    stsub = st.add_subparsers(dest="store_command", required=True)

    def _store_common(sp):
        sp.add_argument("--store", default="results/store", metavar="DIR",
                        help="store directory (default: results/store)")

    sl = stsub.add_parser("list", help="one row per recorded scenario")
    _store_common(sl)
    sl.add_argument("--json", action="store_true",
                    help="emit the machine-readable scenario table")
    sl.set_defaults(func=_cmd_store_list)

    ss = stsub.add_parser(
        "show", help="summarize one record (REF = record id prefix or "
                     "scenario@N, e.g. fig2@-1)"
    )
    _store_common(ss)
    ss.add_argument("ref", help="record id (prefix) or scenario@N")
    ss.add_argument("--json", action="store_true",
                    help="emit the full record payload")
    ss.add_argument("--payload", action="store_true",
                    help="emit only the figure payload, byte-identical to "
                         "the legacy per-figure JSON format")
    ss.set_defaults(func=_cmd_store_show)

    sr = stsub.add_parser(
        "record", help="record a JSON payload file under a registered "
                       "scenario identity"
    )
    _store_common(sr)
    sr.add_argument("--scenario", required=True,
                    help="registered scenario name (fig2, fig9, ...)")
    sr.add_argument("--payload", required=True, metavar="FILE",
                    help="JSON payload file to record")
    sr.add_argument("--schema", default=None, metavar="TAG",
                    help="payload schema tag (default: the scenario's "
                         "registered schema)")
    sr.add_argument("--seed", type=int, default=None,
                    help="simulation seed the payload was produced with")
    sr.add_argument("--backend", choices=("reference", "vectorized"),
                    default=None, help="backend the payload was produced with")
    sr.set_defaults(func=_cmd_store_record)

    si = stsub.add_parser(
        "import", help="migrate a legacy per-figure JSON artifact "
                       "(degradation.json, churn.json, results/*.json) "
                       "into the store"
    )
    _store_common(si)
    si.add_argument("file", help="legacy JSON artifact to import")
    si.add_argument("--name", default=None,
                    help="scenario name for the import (default: file stem)")
    si.add_argument("--schema", default=None, metavar="TAG",
                    help="payload schema tag (default: repro.store.legacy/1)")
    si.set_defaults(func=_cmd_store_import)

    sg = stsub.add_parser(
        "gc", help="remove orphan record files; --keep N prunes each "
                   "scenario to its newest N recordings"
    )
    _store_common(sg)
    sg.add_argument("--keep", type=int, default=None, metavar="N",
                    help="keep only the newest N recordings per scenario")
    sg.set_defaults(func=_cmd_store_gc)

    sd = stsub.add_parser(
        "diff", help="field-by-field comparison of two store records "
                     "through the repro.obs.diff machinery; "
                     "exit 0 = identical, 1 = drift"
    )
    _store_common(sd)
    sd.add_argument("a", help="record id (prefix) or scenario@N")
    sd.add_argument("b", help="same kinds as A")
    sd.add_argument("--rel-tol", type=float, default=0.0, metavar="F",
                    help="relative tolerance for numeric leaves "
                         "(default: 0 — exact)")
    sd.add_argument("--only", default=None, metavar="PATH",
                    help="restrict to a dotted sub-path, e.g. "
                         "payload.unfairness")
    sd.add_argument("--ignore", default=None, metavar="K1,K2",
                    help="comma-separated keys to skip (default: "
                         "provenance + record_id + volatile bookkeeping)")
    sd.add_argument("--json", action="store_true",
                    help="emit the machine-readable diff verdict")
    sd.set_defaults(func=_cmd_store_diff)

    tj = sub.add_parser(
        "trajectory", help="cross-run accuracy/fairness/perf series per "
                           "scenario from a results store (text table + "
                           "HTML dashboard)"
    )
    tj.add_argument("--store", default="results/store", metavar="DIR",
                    help="store directory (default: results/store)")
    tj.add_argument("--scenario", default=None,
                    help="restrict to one scenario name or id")
    tj.add_argument("--html", default=None, metavar="PATH",
                    help="also render the self-contained HTML dashboard "
                         "to PATH")
    tj.add_argument("--bench", default="BENCH_trajectory.json",
                    metavar="PATH",
                    help="benchmark perf history to fold into the "
                         "dashboard (default: BENCH_trajectory.json)")
    tj.add_argument("--json", action="store_true",
                    help="emit the machine-readable trajectory series")
    tj.set_defaults(func=_cmd_trajectory)

    sm = sub.add_parser(
        "summarize", help="paper-vs-measured summary from results/*.json"
    )
    sm.add_argument("--results-dir", default=None)
    sm.set_defaults(func=_cmd_summarize)
    return p


def _cmd_summarize(args) -> int:
    from repro.analysis import full_summary, render_summary

    print(render_summary(full_summary(args.results_dir)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    t0 = time.time()
    rc = args.func(args)
    print(f"\n[{time.time() - t0:.1f}s]", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
