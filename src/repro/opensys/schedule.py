"""Seed-deterministic open-system arrival schedules.

A closed workload launches every application at cycle 0 and keeps it
resident for the whole window; an :class:`ArrivalSchedule` turns the same
run into an *open* system: extra applications arrive mid-run (Poisson- or
trace-driven), and applications — arrived or launch-time — may depart.

Like :class:`repro.faults.FaultPlan`, a schedule is a frozen, hashable
value object: it pickles across the process-pool boundary, participates in
sweep-checkpoint fingerprints unchanged, and :meth:`ArrivalSchedule.digest`
gives a stable content hash for golden files.  All randomness lives in
:func:`poisson_schedule`, which derives one private RNG from its seed —
the schedule itself is pure data, so replaying it is exactly as
deterministic as the closed-system simulator underneath.

Timing semantics (docs/workloads.md#open-system-schedules): event cycles
are *requests*.  The driver applies them at the first estimation-interval
boundary at or after the requested cycle — arrivals cannot preempt a
running interval, mirroring how the paper's mechanisms only act on
interval boundaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Sequence

from repro.sim.kernel import KernelSpec


@dataclass(frozen=True)
class AppArrival:
    """One dynamic application: when it arrives and (optionally) leaves.

    ``app`` is a suite name (resolved against :data:`repro.workloads.SUITE`
    at run time) or an explicit frozen :class:`KernelSpec`.  ``at`` /
    ``leave_at`` are core-cycle *requests*; the driver acts on the next
    interval boundary.  ``leave_at=None`` means the application stays until
    the window closes.
    """

    app: KernelSpec | str
    at: int
    leave_at: int | None = None

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError("arrivals must be scheduled after cycle 0 "
                             "(launch-time apps belong in the base workload)")
        if self.leave_at is not None and self.leave_at <= self.at:
            raise ValueError("an application must leave after it arrives")

    @property
    def name(self) -> str:
        return self.app if isinstance(self.app, str) else self.app.name


@dataclass(frozen=True)
class ArrivalSchedule:
    """A full open-system scenario: arrivals plus base-app departures.

    ``arrivals`` are dynamic applications appended to the roster after the
    base workload; ``base_departures`` schedules launch-time applications
    (by index into the base workload) to drain mid-run.  ``seed``/``rate``
    are provenance only — they record how :func:`poisson_schedule` built
    the object and take no part in replay.
    """

    arrivals: tuple[AppArrival, ...] = ()
    base_departures: tuple[tuple[int, int], ...] = ()  # (base index, cycle)
    seed: int | None = None
    rate: float | None = None  # arrivals per kilocycle (provenance)
    horizon: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrivals", tuple(self.arrivals))
        object.__setattr__(
            self, "base_departures", tuple(tuple(d) for d in self.base_departures)
        )
        seen: set[int] = set()
        for idx, cycle in self.base_departures:
            if idx < 0:
                raise ValueError("base_departures indexes the base workload")
            if cycle < 1:
                raise ValueError("departures must be scheduled after cycle 0")
            if idx in seen:
                raise ValueError(f"base app {idx} departs twice")
            seen.add(idx)

    @property
    def is_null(self) -> bool:
        """True when the schedule changes nothing (closed-system identity)."""
        return not self.arrivals and not self.base_departures

    @property
    def names(self) -> list[str]:
        return [a.name for a in self.arrivals]

    def inter_arrival_cycles(self) -> list[int]:
        """Gaps between consecutive arrival cycles (first gap from 0)."""
        cycles = sorted(a.at for a in self.arrivals)
        return [b - a for a, b in zip([0] + cycles, cycles)]

    def digest(self) -> str:
        """Stable content hash (sha256 hex) over the replayed events only.

        Provenance fields (``seed``/``rate``/``horizon``) are excluded:
        two schedules that replay identically digest identically.
        """
        parts: list[str] = []
        for a in self.arrivals:
            spec = a.app if isinstance(a.app, str) else _spec_key(a.app)
            parts.append(f"arrive/{spec}/{a.at}/{a.leave_at}")
        for idx, cycle in self.base_departures:
            parts.append(f"depart/{idx}/{cycle}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _spec_key(spec: KernelSpec) -> str:
    """Canonical field dump of an inline spec (order fixed by the class)."""
    vals = [
        f"{f.name}={getattr(spec, f.name)!r}" for f in dataclasses.fields(spec)
    ]
    return f"spec({','.join(vals)})"


def poisson_schedule(
    rate: float,
    horizon: int,
    seed: int,
    pool: Sequence[str] = ("NN", "VA", "SC"),
    mean_lifetime: int | None = None,
    max_arrivals: int | None = None,
) -> ArrivalSchedule:
    """A Poisson arrival process: ``rate`` arrivals per *kilocycle*.

    Inter-arrival times are exponential with mean ``1000 / rate`` cycles;
    each arrival draws its application uniformly from ``pool``.  With
    ``mean_lifetime``, lifetimes are exponential with that mean (in
    cycles), and an application whose lifetime ends inside the horizon gets
    a departure; otherwise everything stays resident.  The whole process is
    a pure function of the arguments — one private RNG seeded from
    ``seed`` — so equal arguments give bit-equal schedules.
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if horizon < 2:
        raise ValueError("horizon too short for any arrival")
    if not pool:
        raise ValueError("need at least one application in the pool")
    rng = random.Random(f"opensys/{seed}/{rate}/{horizon}")
    mean_gap = 1000.0 / rate
    arrivals: list[AppArrival] = []
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mean_gap)
        cycle = max(1, int(round(t)))
        if cycle >= horizon:
            break
        if max_arrivals is not None and len(arrivals) >= max_arrivals:
            break
        name = pool[rng.randrange(len(pool))]
        leave_at: int | None = None
        if mean_lifetime is not None:
            life = max(1, int(round(rng.expovariate(1.0 / mean_lifetime))))
            if cycle + life < horizon:
                leave_at = cycle + life
        arrivals.append(AppArrival(name, at=cycle, leave_at=leave_at))
    return ArrivalSchedule(
        arrivals=tuple(arrivals), seed=seed, rate=rate, horizon=horizon
    )


def trace_schedule(
    events: Sequence[tuple[str, int] | tuple[str, int, int | None]],
    base_departures: Sequence[tuple[int, int]] = (),
) -> ArrivalSchedule:
    """Trace-driven constructor: explicit ``(app, at[, leave_at])`` rows."""
    arrivals = tuple(
        AppArrival(row[0], row[1], row[2] if len(row) > 2 else None)
        for row in events
    )
    return ArrivalSchedule(
        arrivals=arrivals, base_departures=tuple(base_departures)
    )
