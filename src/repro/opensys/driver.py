"""Interval-boundary driver that replays an :class:`ArrivalSchedule`.

The driver is an interval listener (registered *after* estimators,
telemetry, and the policy, so every other component sees a stable roster
for the interval that just closed).  On each boundary it:

1. sweeps stale SM ownership back to the idle pool,
2. applies due departures (graceful drain of every owned SM),
3. applies due arrivals (dispatch gate opens; app joins the FIFO
   admission queue),
4. admits queued apps — from the idle pool when possible, otherwise by
   draining one SM from the richest resident app,
5. hands any remaining idle SMs to the poorest active apps, and
6. (only when no policy is attached) evens out the partition so the
   baseline open-system run is not an accident of arrival order.

Every action happens on interval boundaries and every tie is broken by
app index, so the replay is exactly as deterministic as the simulator.
"""

from __future__ import annotations

from repro.opensys.schedule import ArrivalSchedule
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class OpenSystemDriver:
    """Applies arrivals/departures to a running :class:`GPU`.

    ``n_base`` launch-time applications occupy roster slots ``0..n_base-1``;
    the schedule's arrivals occupy ``n_base..`` in order.  ``rebalance``
    enables step 6 above — the harness sets it False whenever a scheduling
    policy owns the partition.
    """

    def __init__(
        self,
        schedule: ArrivalSchedule,
        n_base: int,
        rebalance: bool = True,
        headroom: int = 0,
    ) -> None:
        """``headroom``: number of SMs the driver tries to keep *idle* as an
        admission reserve.  Arrivals grab reserve SMs instantly instead of
        waiting a full block-drain time (tens of thousands of cycles for
        block-heavy kernels); the reserve refills from departures' freed
        SMs before leftovers are redistributed.
        """
        if n_base < 1:
            raise ValueError("need at least one launch-time application")
        for idx, _cycle in schedule.base_departures:
            if idx >= n_base:
                raise ValueError(
                    f"base departure index {idx} out of range ({n_base} base apps)"
                )
        self.schedule = schedule
        self.n_base = n_base
        self.n_apps = n_base + len(schedule.arrivals)
        self.rebalance = rebalance
        self.headroom = headroom
        self.gpu: GPU | None = None

        base_leaves = dict(schedule.base_departures)
        self.arrival_cycle = [0] * n_base + [a.at for a in schedule.arrivals]
        self.depart_at: list[int | None] = [
            base_leaves.get(i) for i in range(n_base)
        ] + [a.leave_at for a in schedule.arrivals]
        self.admit_cycle: list[int | None] = [0] * n_base + [None] * len(
            schedule.arrivals
        )
        self.drained_cycle: list[int | None] = [None] * self.n_apps
        self._arrived = [True] * n_base + [False] * len(schedule.arrivals)
        self._depart_requested = [False] * self.n_apps
        self._drain_left = [0] * self.n_apps
        self._queue: list[int] = []  # FIFO admission queue (app indices)
        self._admit_migrating = [False] * self.n_apps

    # ------------------------------------------------------------- lifecycle

    def attach(self, gpu: GPU) -> None:
        if gpu.n_apps != self.n_apps:
            raise ValueError(
                f"GPU has {gpu.n_apps} kernels but the schedule implies "
                f"{self.n_apps} (base {self.n_base} + "
                f"{self.n_apps - self.n_base} arrivals)"
            )
        self.gpu = gpu
        gpu.add_interval_listener(self._on_interval)

    # --------------------------------------------------------------- events

    def _on_interval(self, records: list[IntervalRecord]) -> None:
        gpu = self.gpu
        assert gpu is not None
        now = gpu.engine.now
        gpu.reclaim_idle_sms()
        self._apply_departures(now)
        self._apply_arrivals(now)
        self._admit(now)
        self._grant_leftovers()
        if self.rebalance:
            self._rebalance()

    def _apply_departures(self, now: int) -> None:
        gpu = self.gpu
        for i in range(self.n_apps):
            leave = self.depart_at[i]
            if leave is None or self._depart_requested[i] or leave > now:
                continue
            self._depart_requested[i] = True
            if i in self._queue:
                # Arrived but never admitted: it leaves the queue with an
                # empty residency window.
                self._queue.remove(i)
                self._admit_migrating[i] = False
                self.drained_cycle[i] = now
                gpu.app_active[i] = False
                continue
            pending = sum(1 for sm in gpu.sms_of(i) if not sm.draining)
            if pending == 0:
                self.drained_cycle[i] = now
                gpu.deactivate_app(i)
                continue
            self._drain_left[i] = pending

            def on_idle(sm, i=i) -> None:
                self._drain_left[i] -= 1
                if self._drain_left[i] == 0 and self.drained_cycle[i] is None:
                    self.drained_cycle[i] = gpu.engine.now

            gpu.deactivate_app(i, on_idle)

    def _apply_arrivals(self, now: int) -> None:
        gpu = self.gpu
        for j, arrival in enumerate(self.schedule.arrivals):
            i = self.n_base + j
            if self._arrived[i] or arrival.at > now:
                continue
            self._arrived[i] = True
            if self._depart_requested[i]:
                continue  # departed before it ever arrived (degenerate trace)
            gpu.activate_app(i)
            self._queue.append(i)

    def _admit(self, now: int) -> None:
        gpu = self.gpu
        n_active = sum(1 for active in gpu.app_active if active)
        if n_active == 0:
            return
        fair = max(1, gpu.config.n_sms // n_active)
        still_waiting: list[int] = []
        for i in self._queue:
            if self.admit_cycle[i] is not None:
                # Admitted between intervals by a migration callback.
                self._admit_migrating[i] = False
                continue
            got = gpu.grant_sms(i, fair)
            if got > 0:
                self.admit_cycle[i] = now
                self._admit_migrating[i] = False
                continue
            if not self._admit_migrating[i]:
                donor = self._richest_donor(exclude=i)
                if donor is not None:
                    self._admit_migrating[i] = True

                    def on_each(sm, i=i) -> None:
                        if self.admit_cycle[i] is None:
                            self.admit_cycle[i] = gpu.engine.now

                    gpu.migrate_sms(donor, i, 1, on_each=on_each)
            still_waiting.append(i)
        self._queue = still_waiting

    def _richest_donor(self, exclude: int) -> int | None:
        gpu = self.gpu
        counts = gpu.sm_counts()
        best: int | None = None
        for i in range(self.n_apps):
            if i == exclude or not gpu.app_active[i] or counts[i] < 2:
                continue
            if best is None or counts[i] > counts[best]:
                best = i
        return best

    def _grant_leftovers(self) -> None:
        """Redistribute idle SMs beyond the admission reserve."""
        gpu = self.gpu
        while True:
            idle = sum(
                1
                for sm in gpu.sms
                if sm.app is None and not sm.draining and not sm.blocks
            )
            if idle <= self.headroom:
                return
            counts = gpu.sm_counts()
            active = [i for i in range(self.n_apps) if gpu.app_active[i]]
            if not active:
                return
            poorest = min(active, key=lambda i: (counts[i], i))
            if gpu.grant_sms(poorest, 1) == 0:
                return

    def _rebalance(self) -> None:
        """Even the partition out, one migration batch per interval."""
        gpu = self.gpu
        if any(sm.draining for sm in gpu.sms):
            return
        counts = gpu.sm_counts()
        active = [
            i for i in range(self.n_apps) if gpu.app_active[i] and counts[i] > 0
        ]
        if len(active) < 2:
            return
        rich = max(active, key=lambda i: (counts[i], -i))
        poor = min(active, key=lambda i: (counts[i], i))
        gap = counts[rich] - counts[poor]
        if gap >= 2:
            gpu.migrate_sms(rich, poor, gap // 2)

    # ------------------------------------------------------------- readouts

    def windows(self, run_end: int) -> list[tuple[int | None, int | None]]:
        """Per-app residency window ``(first cycle, last cycle)``.

        Base apps start at 0; a dynamic app's window opens at its admit
        cycle (the first cycle it owned an SM) or is ``(None, None)`` if it
        was never admitted.  The window closes at the drain-completion
        cycle, or at ``run_end`` for apps still resident when the run ends.
        """
        out: list[tuple[int | None, int | None]] = []
        for i in range(self.n_apps):
            start = self.admit_cycle[i]
            if start is None:
                out.append((None, None))
                continue
            end = self.drained_cycle[i]
            out.append((start, end if end is not None else run_end))
        return out

    def waiting(self, run_end: int) -> list[int]:
        """Per-app admission latency in cycles (0 for launch-time apps).

        A dynamic app that was never admitted waited from its arrival until
        it gave up — its departure if scheduled, otherwise the end of the
        run.
        """
        out: list[int] = []
        for i in range(self.n_apps):
            if i < self.n_base:
                out.append(0)
                continue
            if not self._arrived[i]:
                out.append(0)  # the run ended before this arrival was due
                continue
            admit = self.admit_cycle[i]
            if admit is not None:
                out.append(admit - self.arrival_cycle[i])
            else:
                end = self.drained_cycle[i]
                out.append((end if end is not None else run_end) - self.arrival_cycle[i])
        return out
