"""Open-system workloads: dynamic arrivals, departures, and churn studies.

The closed-system harness launches every application at cycle 0 and holds
the roster fixed; this package turns the same simulator into an *open*
system.  :mod:`repro.opensys.schedule` builds seed-deterministic arrival
schedules (Poisson or trace-driven), :mod:`repro.opensys.driver` replays
them on interval boundaries, and :mod:`repro.opensys.churn` sweeps arrival
rate to chart estimator accuracy and fairness-metric (dis)agreement under
nonstationary load (``repro fig-churn``).
"""

from repro.opensys.driver import OpenSystemDriver
from repro.opensys.schedule import (
    AppArrival,
    ArrivalSchedule,
    poisson_schedule,
    trace_schedule,
)

__all__ = [
    "AppArrival",
    "ArrivalSchedule",
    "poisson_schedule",
    "trace_schedule",
    "OpenSystemDriver",
    "fig_churn",
    "ChurnResult",
    "DEFAULT_RATES",
]


def __getattr__(name: str):
    # fig_churn lives behind a lazy hook: churn.py imports the harness,
    # the harness imports the schedule/driver modules above — an eager
    # import here would close that loop during interpreter start-up.
    if name in ("fig_churn", "ChurnResult", "DEFAULT_RATES"):
        from repro.opensys import churn

        return getattr(churn, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
