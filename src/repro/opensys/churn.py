"""``repro fig-churn``: estimator accuracy and fairness under churn.

Reproduction-specific extension (no paper counterpart): the paper
evaluates DASE and DASE-Fair on closed workloads — every application
present from cycle 0 to the end.  This study sweeps the *arrival rate* of
an open system (Poisson arrivals drawn from a pool, exponential
lifetimes) and asks two questions the closed setting cannot:

1. how fast does DASE's estimate degrade as residency windows shrink and
   interval histories fragment, and
2. do the fairness metrics — max/min unfairness (Eq. 2), Jain's index,
   p95/p99 tail slowdown, waiting-time Gini — still agree on *which
   policy is fairer* once the roster is nonstationary?

Each rate runs the same seeded schedule twice: policy-free (the driver's
even rebalancing) and under DASE-Fair.  A "disagreement" is a rate where
at least two metrics pick opposite winners; docs/model.md discusses why
these are expected rather than a bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.harness.parallel import WorkloadJob, run_jobs
from repro.harness.runner import default_shared_cycles
from repro.opensys.schedule import ArrivalSchedule, poisson_schedule

#: Default arrival rates, in arrivals per kilocycle.  The top rate churns
#: the roster several times per estimation window at the scaled default.
DEFAULT_RATES: tuple[float, ...] = (0.05, 0.1, 0.2)

#: Verdict direction per metric: True = smaller is fairer.
LOWER_IS_FAIRER: dict[str, bool] = {
    "unfairness": True,
    "jain": False,
    "p95": True,
    "p99": True,
    "gini_wait": True,
}


@dataclass
class ChurnResult:
    """The fig-churn readout: one point per (arrival rate, policy).

    ``metrics[policy][rate]`` maps metric name → value;
    ``dase_error[policy][rate]`` is DASE's mean relative error over apps
    with both an estimate and a ground-truth slowdown.  Policies are
    labelled ``"even"`` (driver rebalancing only) and ``"fair"``
    (DASE-Fair).
    """

    base: tuple[str, ...]
    pool: tuple[str, ...]
    rates: list[float]
    seed: int
    mean_lifetime: int
    shared_cycles: int
    n_arrivals: dict[float, int] = field(default_factory=dict)
    schedule_digests: dict[float, str] = field(default_factory=dict)
    dase_error: dict[str, dict[float, float]] = field(default_factory=dict)
    metrics: dict[str, dict[float, dict[str, float]]] = field(
        default_factory=dict
    )
    failures: dict[str, str] = field(default_factory=dict)

    def verdicts(self) -> dict[float, dict[str, str]]:
        """Per rate, per metric: which policy it calls fairer.

        ``"even"`` / ``"fair"`` / ``"tie"``; metrics missing from either
        run are skipped for that rate.
        """
        out: dict[float, dict[str, str]] = {}
        for rate in self.rates:
            even = self.metrics.get("even", {}).get(rate)
            fair = self.metrics.get("fair", {}).get(rate)
            if even is None or fair is None:
                continue
            row: dict[str, str] = {}
            for name, lower in LOWER_IS_FAIRER.items():
                if name not in even or name not in fair:
                    continue
                a, b = even[name], fair[name]
                if a == b:
                    row[name] = "tie"
                elif (b < a) == lower:
                    row[name] = "fair"
                else:
                    row[name] = "even"
            out[rate] = row
        return out

    def disagreements(self) -> list[dict]:
        """Rates where the fairness metrics pick opposite winners."""
        out: list[dict] = []
        for rate, row in self.verdicts().items():
            winners = {v for v in row.values() if v != "tie"}
            if len(winners) > 1:
                out.append({"rate": rate, "verdicts": dict(row)})
        return out

    def to_dict(self) -> dict:
        return {
            "base": list(self.base),
            "pool": list(self.pool),
            "rates": list(self.rates),
            "seed": self.seed,
            "mean_lifetime": self.mean_lifetime,
            "shared_cycles": self.shared_cycles,
            "n_arrivals": {str(r): n for r, n in self.n_arrivals.items()},
            "schedule_digests": {
                str(r): d for r, d in self.schedule_digests.items()
            },
            "dase_error": {
                pol: {str(r): e for r, e in curve.items()}
                for pol, curve in self.dase_error.items()
            },
            "metrics": {
                pol: {str(r): dict(m) for r, m in per_rate.items()}
                for pol, per_rate in self.metrics.items()
            },
            "verdicts": {
                str(r): row for r, row in self.verdicts().items()
            },
            "disagreements": self.disagreements(),
            "failures": dict(self.failures),
        }


def churn_schedule(
    rate: float,
    seed: int,
    shared_cycles: int,
    pool: tuple[str, ...],
    mean_lifetime: int,
) -> ArrivalSchedule:
    """The schedule fig-churn uses for one rate (shared by both policies)."""
    return poisson_schedule(
        rate, horizon=shared_cycles, seed=seed, pool=pool,
        mean_lifetime=mean_lifetime,
    )


def fig_churn(
    base: tuple[str, ...] | None = None,
    pool: tuple[str, ...] | None = None,
    rates: tuple[float, ...] | None = None,
    seed: int = 2016,
    mean_lifetime: int = 40_000,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> ChurnResult:
    """Sweep arrival rate; chart DASE error and the fairness readout.

    For each rate one :func:`poisson_schedule` is built and *shared* by
    the policy-free and DASE-Fair runs, so the two executions differ only
    in scheduling — same arrivals, same lifetimes, same seeds.  All
    2·N runs fan out together under ``jobs``.
    """
    base = tuple(base or ("SD", "SB"))
    pool = tuple(pool or ("NN", "VA", "SC"))
    rates = tuple(rates if rates is not None else DEFAULT_RATES)
    shared_cycles = shared_cycles or default_shared_cycles()
    schedules = {
        rate: churn_schedule(rate, seed, shared_cycles, pool, mean_lifetime)
        for rate in rates
    }
    job_list: list[WorkloadJob] = []
    for policy in (None, "dase_fair"):
        for rate in rates:
            job_list.append(WorkloadJob(
                apps=base,
                config=config,
                shared_cycles=shared_cycles,
                models=("DASE",),
                policy=policy,
                cache_dir=cache_dir,
                arrivals=schedules[rate],
                backend=backend,
            ))
    outcomes = run_jobs(job_list, n_jobs=jobs)
    out = ChurnResult(
        base=base, pool=pool, rates=list(rates), seed=seed,
        mean_lifetime=mean_lifetime, shared_cycles=shared_cycles,
        n_arrivals={r: len(schedules[r].arrivals) for r in rates},
        schedule_digests={r: schedules[r].digest() for r in rates},
        dase_error={"even": {}, "fair": {}},
        metrics={"even": {}, "fair": {}},
    )
    n = len(rates)
    for label, chunk in (("even", outcomes[:n]), ("fair", outcomes[n:])):
        for rate, outcome in zip(rates, chunk):
            if not outcome.ok:
                out.failures[f"{label}@{rate}"] = outcome.error or "failed"
                continue
            res = outcome.result
            errs = res.errors("DASE")
            if errs:
                out.dase_error[label][rate] = sum(errs) / len(errs)
            out.metrics[label][rate] = res.fairness_metrics()
    return out
