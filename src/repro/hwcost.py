"""Hardware cost model for DASE (paper Table 1 / §4.4).

Adds up the storage the DASE counters require per memory partition and
globally, and expresses the per-partition cost as a fraction of the paper's
64 KB L2 reference slice — the paper reports < 0.625% for N = 4 apps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig


@dataclass(frozen=True)
class HardwareCost:
    """Bit counts per memory partition and per SM, plus totals."""

    per_partition_bits: int
    per_sm_bits: int
    global_bits: int
    n_apps: int

    @property
    def per_partition_bytes(self) -> float:
        return self.per_partition_bits / 8

    def fraction_of_l2(self, l2_slice_bytes: int = 64 * 1024) -> float:
        """Per-partition cost as a fraction of an L2 slice (paper: 64 KB)."""
        return self.per_partition_bytes / l2_slice_bytes


def dase_hardware_cost(config: GPUConfig, n_apps: int = 4) -> HardwareCost:
    """Table 1: the counters DASE adds, with the paper's bit widths.

    Key cost trick (paper §4.4): "the slowdown of each application is
    estimated one by one to reduce hardware cost" — the detection hardware
    (ATD, last-row registers, ERBMiss/ELLCMiss, BLP counters) is
    *time-multiplexed* across applications, so one copy per partition
    suffices; only the served-request counters are replicated per app.

    Per memory partition (single copy, multiplexed):
      * ERBMiss / ELLCMiss counters          — 32 bits each
      * last-access-row registers            — n_banks × 16 bits
      * sampled ATD                           — 8 sets × assoc × 32 bits
      * Request / Time_request counters       — 2 × 32 bits
      * BLP / BLPAccess counters              — 2 × 32 bits
    Per memory partition, per application:
      * served-request counters               — 32 bits per app
    Per SM:
      * stall-fraction α accumulator          — 32 bits
    Global:
      * interval cycle counter                — 32 bits
      * SM_sum/SM_used/TB_sum/TB_used         — 4 × 32 bits per app
    """
    if n_apps < 1:
        raise ValueError("need at least one application")
    atd_bits = config.atd_sample_sets * config.l2.assoc * 32
    shared_partition = (
        32 + 32  # ERBMiss, ELLCMiss
        + config.n_banks * 16  # last-row registers
        + atd_bits  # sampled ATD
        + 32 + 32  # Request / Time_request
        + 32 + 32  # BLP / BLPAccess
    )
    per_partition = shared_partition + 32 * n_apps  # served-request counters
    per_sm = 32  # α accumulator
    global_bits = 32 + 4 * 32 * n_apps
    return HardwareCost(
        per_partition_bits=per_partition,
        per_sm_bits=per_sm,
        global_bits=global_bits,
        n_apps=n_apps,
    )


def table1_rows(config: GPUConfig, n_apps: int = 4) -> list[tuple[str, str]]:
    """The rows of paper Table 1 with this configuration's numbers."""
    atd = config.atd_sample_sets * config.l2.assoc * 32
    return [
        ("ERBMiss/ELLCMiss counters", "32 bits each"),
        ("Last access row address registers", f"{config.n_banks} × 16 bits"),
        ("Sample ATD", f"{config.atd_sample_sets} set × {config.l2.assoc} way"
                       f" × 32 bit = {atd} bits"),
        ("Served memory request counters", "32 bits per application"),
        ("Request/Time counters", "2 × 32 bits"),
        ("BLP/BLPAccess counters", "2 × 32 bits"),
        ("Stall fraction α", "32 bits per SM"),
        ("Interval cycle counter", "32 bits"),
        ("SMsum/SMused/TBsum/TBused", "4 × 32 bits per application"),
    ]
