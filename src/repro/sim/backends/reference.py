"""The reference backend: the pure-Python simulator core, unchanged.

This is the correctness oracle — every golden fixture in ``tests/golden/``
was recorded under it, and the bit-identity contract of
``docs/performance.md`` is stated against it.  The backend object is a thin
factory over the existing hot-path classes so the selection layer adds zero
overhead to the simulation itself (streams and stats objects are exactly
the classes the simulator always used).
"""

from __future__ import annotations

from repro.sim.kernel import KernelSpec, WarpStream
from repro.sim.stats import MemoryStats


class ReferenceBackend:
    name = "reference"
    requires_numpy = False

    @staticmethod
    def make_stream(
        spec: KernelSpec,
        app_index: int,
        block_id: int,
        warp_id: int,
        seed: int,
        line_bytes: int,
    ) -> WarpStream:
        return WarpStream(spec, app_index, block_id, warp_id, seed, line_bytes)

    @staticmethod
    def make_memory_stats(n_apps: int) -> MemoryStats:
        return MemoryStats(n_apps)
