"""Pluggable simulator-core backends (ROADMAP "Raw speed, phase 2").

A *backend* supplies the implementation of the simulator's two dominant
per-event workloads — warp address-stream generation and the DRAM
time-integral bookkeeping — behind :attr:`repro.config.GPUConfig.backend`:

``reference``
    The pure-Python core that every golden fixture was recorded under.
    It is the correctness oracle and has no third-party dependencies.

``vectorized``
    A NumPy-accelerated core (:mod:`repro.sim.backends.vectorized`) that
    pregenerates whole-kernel warp traces by replaying the reference
    MT19937 draw stream in bulk, and batches the DRAM occupancy-integral
    updates into a flat event log drained per flush.

The equivalence contract (docs/performance.md, "phase 2 — backends"):
selecting a backend may change *how* the core computes, never *what* it
computes.  Address streams, the event schedule, and every integer counter
are identical across backends; the batched float integrals are sums of the
same integer-valued terms and therefore also reproduce exactly.  Because of
that contract ``GPUConfig.backend`` is excluded from config fingerprints —
caches and goldens transfer across backends.

NumPy stays an *optional* dependency: this package imports without it, the
reference backend works without it, and requesting ``vectorized`` without
NumPy raises a clear error at :func:`get_backend` time.
"""

from __future__ import annotations

from repro.config import KNOWN_BACKENDS

__all__ = [
    "KNOWN_BACKENDS",
    "available_backends",
    "backend_available",
    "get_backend",
]

_CACHE: dict[str, object] = {}


def get_backend(name: str):
    """Resolve a backend name to its (cached) backend object.

    Raises ``ValueError`` for an unknown name and ``RuntimeError`` when the
    named backend's dependencies are missing (e.g. ``vectorized`` without
    NumPy installed).
    """
    backend = _CACHE.get(name)
    if backend is not None:
        return backend
    if name not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}: expected one of "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    if name == "reference":
        from repro.sim.backends.reference import ReferenceBackend

        backend = ReferenceBackend()
    else:  # "vectorized"
        from repro.sim.backends import vectorized

        if not vectorized.HAVE_NUMPY:
            raise RuntimeError(
                "the 'vectorized' backend requires NumPy, which is not "
                "installed — install numpy or select backend='reference' "
                "(the reference backend is fully functional without it)"
            )
        backend = vectorized.VectorizedBackend()
    _CACHE[name] = backend
    return backend


def backend_available(name: str) -> bool:
    """True when ``name`` is known *and* its dependencies are importable."""
    if name not in KNOWN_BACKENDS:
        return False
    try:
        get_backend(name)
    except RuntimeError:
        return False
    return True


def available_backends() -> list[str]:
    """Backend names usable in this environment, reference first."""
    return [name for name in KNOWN_BACKENDS if backend_available(name)]
