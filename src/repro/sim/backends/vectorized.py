"""NumPy-vectorized simulator core (``GPUConfig.backend = "vectorized"``).

Two batched subsystems, both *exactly* reproducing the reference backend:

**Warp streams** (:class:`VectorizedWarpStream`) — CPython's ``random`` and
NumPy's legacy ``RandomState`` share the same MT19937 generator and the same
53-bit double construction, so transferring the Mersenne state lets NumPy
replay the reference draw stream in bulk: ``random_sample(n)`` produces the
exact floats ``n`` successive ``Random.random()`` calls would, and a raw
``uint32`` draw equals ``getrandbits(32)``.  The whole per-warp trace is
therefore pregenerated in a handful of array operations instead of one
Python RNG call per draw, with *bit-identical* burst lengths, addresses and
store flags (gated per spec by ``tests/test_backends.py`` and end-to-end by
the goldens).

Two generation strategies, chosen per spec:

* *fixed draw layout* — no ``randrange`` in the step loop (``reuse_fraction
  == 0`` and a non-RANDOM pattern): every step consumes the same number of
  draws, so one ``random_sample`` + reshape recovers the columns and the
  address cursor walk collapses into cumulative sums;
* *word replay* — specs with ``randrange`` (RANDOM pattern or reuse): its
  rejection sampling consumes a data-dependent number of raw MT words, so
  the raw word stream is pregenerated instead, together with per-position
  "next accepted word" indices; a tight scalar loop then walks positions
  through precomputed Python lists without a single RNG or method call.

Phase-shifting specs keep the reference generator (the backend factory
falls back) — phases are an open-system feature, not a hot path.

**DRAM stat integrals** (:class:`BatchedMemoryStats`) — the reference hub
folds elapsed time into every app's occupancy integrals *before each
mutation* (~3 calls per DRAM request).  Here the three hot transitions
append ``(time, code)`` to a flat log instead, and :meth:`advance` drains
the log with NumPy cumulative sums per flush (interval boundaries and run
end).  Every term is an integer-valued float64, so the batched integrals
are not merely statistically close — they are bit-equal to the eager ones
(asserted exactly by the equivalence tests; the CI gate additionally
enforces the looser ≥5-seed ``repro diff --rel-tol`` contract promised in
docs/performance.md).

This module imports without NumPy (``HAVE_NUMPY`` gates it); the backend
registry refuses to construct the backend when NumPy is missing.
"""

from __future__ import annotations

import hashlib
import random

try:  # NumPy is an optional dependency (see package docstring).
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None
    HAVE_NUMPY = False

from repro.sim.kernel import (
    AccessPattern,
    KernelSpec,
    WarpStream,
    stream_seed,
)
from repro.sim.stats import MemoryStats

#: 2**26 and 2**53 — constants of CPython's 53-bit double construction:
#: ``random() == ((a >> 5) * 2**26 + (b >> 6)) / 2**53`` for two raw words.
_SHIFT26 = 67108864.0
_INV53 = 9007199254740992.0


def _numpy_rng(rng: "random.Random") -> "np.random.RandomState":
    """A RandomState positioned at ``rng``'s exact MT19937 state."""
    _, state, _ = rng.getstate()
    rs = np.random.RandomState()
    rs.set_state(("MT19937", np.array(state[:-1], dtype=np.uint32), state[-1]))
    return rs


def _seed_key(seed_str: str) -> "np.ndarray":
    """CPython's string-seeding key as the uint32 array ``init_by_array``
    consumes — ``RandomState.seed(key)`` then lands on the exact state
    ``random.Random(seed_str)`` starts from (both implementations feed the
    same little-endian word decomposition to the same MT19937 init)."""
    b = seed_str.encode()
    key = int.from_bytes(b + hashlib.sha512(b).digest(), "big")
    nwords = -(-key.bit_length() // 32) or 1
    return np.frombuffer(key.to_bytes(nwords * 4, "little"), dtype="<u4")


# One shared RandomState, re-seeded per stream: RandomState construction is
# ~10x the cost of .seed(), and generation completes inside __init__ so the
# instance is never live across streams.  _KEY_SEED_OK records a one-time
# self-check of the seeding shortcut; an interpreter whose string seeding
# ever diverges falls back to explicit state transfer.
_SHARED_RS = None
_KEY_SEED_OK = False


def _rs_for(rng: "random.Random", seed_str: str) -> "np.random.RandomState":
    """A RandomState at ``rng``'s *initial* state (``rng`` freshly seeded
    from ``seed_str``), reusing the shared instance."""
    global _SHARED_RS, _KEY_SEED_OK
    rs = _SHARED_RS
    if rs is None:
        rs = _SHARED_RS = np.random.RandomState()
        probe = "repro/seed-check"
        rs.seed(_seed_key(probe))
        pr = random.Random(probe)
        _KEY_SEED_OK = rs.random_sample(4).tolist() == [
            pr.random() for _ in range(4)
        ]
    if _KEY_SEED_OK:
        rs.seed(_seed_key(seed_str))
    else:  # pragma: no cover - seeding-divergent interpreter
        _, state, _ = rng.getstate()
        rs.set_state(
            ("MT19937", np.array(state[:-1], dtype=np.uint32), state[-1])
        )
    return rs


class VectorizedWarpStream(WarpStream):
    """A :class:`WarpStream` whose whole trace is pregenerated with NumPy.

    The consumer API (``next_compute_burst`` / ``next_mem_access``) is
    inherited unchanged — after construction the parallel arrays hold the
    complete consumed trace, so the per-step cost is a pure array read and
    ``_refill`` is never reached while the budget lasts.
    """

    __slots__ = ()

    def __init__(
        self,
        spec: KernelSpec,
        app_index: int,
        block_id: int,
        warp_id: int,
        seed: int,
        line_bytes: int,
    ) -> None:
        super().__init__(spec, app_index, block_id, warp_id, seed, line_bytes)
        rs = _rs_for(
            self._rng, stream_seed(seed, app_index, block_id, warp_id)
        )
        if spec.reuse_fraction == 0.0 and spec.pattern is not AccessPattern.RANDOM:
            self._gen_fixed_layout(rs)
        else:
            self._gen_word_replay(rs)
        # The whole consumed trace is materialized; _refill is reachable
        # only through past-done misuse, where the parent generates junk
        # steps from the untouched Python RNG (deterministic, never part of
        # the consumed stream — the goldens enforce that).
        self._gen_remaining = 0

    # ------------------------------------------------- fixed-draw-layout path

    def _gen_fixed_layout(self, rs) -> None:
        """Whole-trace generation for specs with a constant draws-per-step.

        Draw order per step is burst, store, then one wide draw per access —
        a fixed row layout, so one bulk ``random_sample`` reshaped to
        ``(steps, draws_per_step)`` reproduces the reference draw stream
        column by column.  The burst cap can fire at most once (a clamp
        zeroes the remaining budget, ending the trace), so clamping reduces
        to rewriting the final burst after a cumulative sum locates it.
        """
        spec = self.spec
        budget = spec.insts_per_warp
        mean = spec.compute_per_mem
        draw_burst = mean > 0
        jitter = spec.burst_jitter
        lo = max(0.0, mean * (1.0 - jitter))
        hi = mean * (1.0 + jitter)
        sf = spec.store_fraction
        wf = spec.wide_fraction
        n_acc = spec.accesses_per_mem_inst

        # Upper bound on the step count: every unclamped step consumes at
        # least 1 + round(lo) instructions (uniform(lo, hi) >= lo and
        # rounding is monotone), so this many rows always covers the budget.
        bmin = int(round(lo)) if draw_burst else 0
        n_max = -(-budget // (1 + bmin))
        depth = (1 if draw_burst else 0) + (1 if sf > 0.0 else 0) + (
            n_acc if wf > 0.0 else 0
        )
        if depth:
            u = rs.random_sample(n_max * depth).reshape(n_max, depth)
        col = 0
        if draw_burst:
            # lo + (hi - lo) * random(): the exact uniform() arithmetic;
            # np.rint matches round()'s half-to-even on the same float64.
            bursts = np.rint(lo + (hi - lo) * u[:, 0]).astype(np.int64)
            col = 1
        else:
            bursts = np.zeros(n_max, dtype=np.int64)
        csum = np.cumsum(bursts + 1)
        n = int(np.searchsorted(csum, budget, side="left")) + 1
        before_last = int(csum[n - 2]) if n > 1 else 0
        bursts = bursts[:n]
        bursts[n - 1] = budget - before_last - 1  # the single possible clamp
        if sf > 0.0:
            stores = u[:n, col] < sf
            col += 1
        else:
            stores = np.zeros(n, dtype=bool)
        if wf > 0.0:
            wide = (u[:n, col : col + n_acc] < wf).reshape(-1)
        else:
            wide = np.zeros(n * n_acc, dtype=bool)

        # Cursor walk (STREAM/STRIDED): a wide access first aligns the
        # cursor up to even, takes two lines, and leaves it even.  With an
        # even stride the cursor therefore stays even and alignment is a
        # no-op; with an odd stride the parity before a wide access is the
        # number of narrow accesses since the previous wide one, mod 2.
        m = n * n_acc
        stride = spec.stride_lines
        if stride % 2 == 0 or not wide.any():
            bump = np.zeros(m, dtype=np.int64)
        else:
            idx = np.arange(m)
            ncount = np.concatenate(([0], np.cumsum(~wide)))
            last_wide = np.maximum.accumulate(np.where(wide, idx, -1))
            prev_wide = np.concatenate(([-1], last_wide[:-1]))
            narrows_since = ncount[idx] - ncount[prev_wide + 1]
            bump = np.where(wide, narrows_since & 1, 0)
        inc = np.where(wide, bump + 2, stride)
        cursor_before = np.concatenate(([0], np.cumsum(inc)[:-1]))
        line = self._region_base + cursor_before + np.where(wide, bump, 0)
        line_bytes = self._line_bytes
        addr0 = line * line_bytes
        sizes = 1 + wide.astype(np.int64)
        pos = np.concatenate(([0], np.cumsum(sizes)))
        flat = np.empty(int(pos[-1]), dtype=np.int64)
        flat[pos[:-1]] = addr0
        flat[pos[:-1][wide] + 1] = addr0[wide] + line_bytes

        fl = flat.tolist()
        offs = pos[::n_acc].tolist()
        self._bursts = bursts.tolist()
        self._stores = stores.tolist()
        self._addrs = [fl[a:b] for a, b in zip(offs, offs[1:])]
        self._cursor = int(cursor_before[-1] + inc[-1]) if m else 0
        self._idx = 0

    # ----------------------------------------------------- word-replay path

    def _gen_word_replay(self, rs) -> None:
        """Whole-trace generation for specs whose step loop calls
        ``randrange`` (RANDOM pattern and/or a hot reuse set).

        ``randrange(n)`` rejection-samples ``getrandbits(k)`` words, so the
        number of words per step is data-dependent and a fixed reshape
        cannot recover the layout.  Instead the raw MT word stream is drawn
        in bulk and converted once into three plain Python lists — the
        53-bit double starting at each word position and the ``k``-bit
        ``getrandbits`` value of each word for the hot/working sets.
        Walking the trace is then a tight scalar loop over those lists:
        every draw (uniform, fraction test, randrange try) is an indexed
        read plus a position bump — no RNG calls, no method calls —
        with rejection runs walked inline (expected <2 tries each).
        """
        spec = self.spec
        budget = spec.insts_per_warp
        mean = spec.compute_per_mem
        draw_burst = mean > 0
        jitter = spec.burst_jitter
        lo = max(0.0, mean * (1.0 - jitter))
        span = mean * (1.0 + jitter) - lo
        sf = spec.store_fraction
        wf = spec.wide_fraction
        rf = spec.reuse_fraction
        n_acc = spec.accesses_per_mem_inst
        pattern_random = spec.pattern is AccessPattern.RANDOM
        hot_base = self._hot_base
        hot_lines = spec.hot_set_lines
        region_base = self._region_base
        ws_lines = spec.working_set_lines
        stride = spec.stride_lines
        line_bytes = self._line_bytes
        hot_shift = np.uint32(32 - hot_lines.bit_length())
        ws_shift = np.uint32(32 - ws_lines.bit_length())
        draw_store = sf > 0.0
        draw_wide = wf > 0.0
        draw_reuse = rf > 0.0

        # Initial sizing targets the *expected* word consumption (a
        # randrange try chain averages under 2 words); a shortfall — deep
        # rejection runs, burst clamping — grows the stream via extend().
        steps_est = int(budget / (1.0 + mean) * 1.25) + 16
        per_step = (
            (2 if draw_burst else 0)
            + (2 if draw_store else 0)
            + n_acc
            * ((2 if draw_wide else 0) + (2 if draw_reuse else 0)
               + (3 if (draw_reuse or pattern_random) else 0))
        )
        state = {"words": rs.randint(0, 1 << 32,
                                     size=steps_est * per_step + 64,
                                     dtype=np.uint32)}

        def derive():
            """(dbl, hot_val, ws_val, m) lists over the current words."""
            w = state["words"]
            dbl = ((w[:-1] >> np.uint32(5)) * _SHIFT26
                   + (w[1:] >> np.uint32(6))) / _INV53
            return (
                dbl.tolist(),
                (w >> hot_shift).tolist() if draw_reuse else (),
                (w >> ws_shift).tolist() if pattern_random else (),
                len(w),
            )

        def extend():
            """Double the word stream; ``rs`` continues the same MT stream,
            so every already-consumed position is unchanged.  Call sites
            must rebind all four locals — ``p`` may point past the old
            lists."""
            state["words"] = np.concatenate(
                [state["words"],
                 rs.randint(0, 1 << 32, size=len(state["words"]),
                            dtype=np.uint32)]
            )
            return derive()

        dbl, hot_val, ws_val, m = derive()

        # Worst-case words consumed before the next bound re-check, minus
        # rejection tails (those re-check inline on every try).
        need = 6
        cursor = self._cursor
        remaining = budget
        p = 0
        bursts: list[int] = []
        addr_lists: list[list[int]] = []
        stores: list[bool] = []
        while remaining > 0:
            if p + need >= m:
                dbl, hot_val, ws_val, m = extend()
            if draw_burst:
                burst = round(lo + span * dbl[p])
                p += 2
            else:
                burst = 0
            cap = remaining - 1
            if burst > cap:
                burst = cap
            remaining -= burst + 1
            if draw_store:
                is_store = dbl[p] < sf
                p += 2
            else:
                is_store = False
            out: list[int] = []
            acc_left = n_acc
            while acc_left:
                acc_left -= 1
                if p + need >= m:
                    dbl, hot_val, ws_val, m = extend()
                if draw_wide:
                    wide = dbl[p] < wf
                    p += 2
                else:
                    wide = False
                if draw_reuse and dbl[p] < rf:
                    p += 2
                    while True:  # inline randrange(hot_lines) rejection
                        if p + need >= m:
                            dbl, hot_val, ws_val, m = extend()
                        v = hot_val[p]
                        p += 1
                        if v < hot_lines:
                            break
                    line = hot_base + v
                    wide = False
                else:
                    if draw_reuse:
                        p += 2
                    if pattern_random:
                        while True:  # inline randrange(ws_lines) rejection
                            if p + need >= m:
                                dbl, hot_val, ws_val, m = extend()
                            v = ws_val[p]
                            p += 1
                            if v < ws_lines:
                                break
                        line = region_base + v
                        if wide:
                            line &= ~1
                    else:  # STREAM / STRIDED with reuse
                        if wide:
                            cursor = (cursor + 1) & ~1
                        line = region_base + cursor
                        cursor += 2 if wide else stride
                out.append(line * line_bytes)
                if wide:
                    out.append((line + 1) * line_bytes)
            bursts.append(burst)
            addr_lists.append(out)
            stores.append(is_store)

        self._cursor = cursor
        self._bursts = bursts
        self._addrs = addr_lists
        self._stores = stores
        self._idx = 0


class BatchedMemoryStats(MemoryStats):
    """Log-structured occupancy integrator (flat arrays per drain pass).

    The three hot DRAM transitions append ``(cycle, code)`` records instead
    of eagerly folding time into every app's integrals; :meth:`advance`
    (interval boundaries, run end) reconstructs the piecewise-constant
    occupancy series with NumPy cumulative sums and integrates them in
    int64.  All terms are integers, so the resulting float64 integrals are
    bit-equal to the reference backend's eager accumulation.

    Codes pack ``app * 6 + op`` with op 0/1 = outstanding ±1, 2/3 =
    executing-bank ±1 (which also drives the global busy integral), 4/5 =
    demanded-bank ±1.  Plain counters (``requests_served`` …) stay eager —
    estimators sample them mid-interval.
    """

    def __init__(self, n_apps: int) -> None:
        super().__init__(n_apps)
        self._log_t: list[int] = []
        self._log_c: list[int] = []

    # --- hot-path transitions: append-only --------------------------------

    def on_enqueue(self, now: int, app: int, newly_demanded: bool) -> None:
        t = self._log_t
        c = self._log_c
        t.append(now)
        c.append(app * 6)
        if newly_demanded:
            t.append(now)
            c.append(app * 6 + 4)

    def on_bank_start(self, now: int, app: int) -> None:
        self._log_t.append(now)
        self._log_c.append(app * 6 + 2)

    def on_complete(self, now: int, app: int, undemanded: bool) -> None:
        t = self._log_t
        c = self._log_c
        t.append(now)
        c.append(app * 6 + 3)
        t.append(now)
        c.append(app * 6 + 1)
        if undemanded:
            t.append(now)
            c.append(app * 6 + 5)
        self.apps[app].requests_served += 1

    # --- legacy mutators (contract: caller advanced first, so now==_last_t)

    def request_enqueued(self, app: int) -> None:
        self._log_t.append(self._last_t)
        self._log_c.append(app * 6)

    def request_completed(self, app: int) -> None:
        self._log_t.append(self._last_t)
        self._log_c.append(app * 6 + 1)

    def bank_started(self, app: int) -> None:
        self._log_t.append(self._last_t)
        self._log_c.append(app * 6 + 2)

    def bank_finished(self, app: int) -> None:
        self._log_t.append(self._last_t)
        self._log_c.append(app * 6 + 3)

    def demanded_changed(self, app: int, delta: int) -> None:
        self._log_t.append(self._last_t)
        self._log_c.append(app * 6 + (4 if delta > 0 else 5))

    # --- drain -------------------------------------------------------------

    def advance(self, now: int) -> None:
        if self._log_t:
            self._drain(now)
        elif now > self._last_t:
            MemoryStats.advance(self, now)

    def outstanding(self, app: int) -> int:
        log_t = self._log_t
        if log_t:
            self._drain(log_t[-1] if log_t[-1] > self._last_t else self._last_t)
        return self._outstanding[app]

    def _drain(self, now: int) -> None:
        t = np.array(self._log_t, dtype=np.int64)
        codes = np.array(self._log_c, dtype=np.int64)
        self._log_t = []
        self._log_c = []
        k = t.shape[0]
        bounds = np.empty(k + 2, dtype=np.int64)
        bounds[0] = self._last_t
        bounds[1:-1] = t
        bounds[-1] = now
        seg = np.diff(bounds)  # seg[j]: dwell time of state j (k+1 states)
        ops = codes % 6
        app_of = codes // 6
        counts = np.empty(k + 1, dtype=np.int64)
        exe_all = np.zeros(k, dtype=np.int64)

        def series(delta: "np.ndarray", init: int) -> "np.ndarray":
            counts[0] = init
            np.cumsum(delta, out=counts[1:])
            counts[1:] += init
            return counts

        for a, mem in enumerate(self.apps):
            am = app_of == a
            d = (am & (ops == 0)).astype(np.int64) - (am & (ops == 1))
            s = series(d, self._outstanding[a])
            mem.outstanding_time += float(int(seg[s > 0].sum()))
            self._outstanding[a] = int(s[-1])
            d = (am & (ops == 2)).astype(np.int64) - (am & (ops == 3))
            exe_all += d
            s = series(d, self._executing[a])
            mem.executing_bank_integral += float(int((seg * s).sum()))
            self._executing[a] = int(s[-1])
            d = (am & (ops == 4)).astype(np.int64) - (am & (ops == 5))
            s = series(d, self._demanded[a])
            mem.demanded_bank_integral += float(int((seg * s).sum()))
            self._demanded[a] = int(s[-1])
        s = series(exe_all, self._active_banks_total)
        self.busy_time += float(int(seg[s > 0].sum()))
        self._active_banks_total = int(s[-1])
        self._last_t = now


#: Amortization floor: whole-trace NumPy generation carries a fixed
#: per-stream cost (seeding, bulk draws, array→list conversion) that only
#: pays off once a warp has enough steps; below this expected step count
#: the reference chunked generator is faster and the factory uses it.
#: Streams are bit-identical either way, so the floor is pure policy.
_VEC_MIN_STEPS = 64


class VectorizedBackend:
    name = "vectorized"
    requires_numpy = True

    @staticmethod
    def make_stream(
        spec: KernelSpec,
        app_index: int,
        block_id: int,
        warp_id: int,
        seed: int,
        line_bytes: int,
    ) -> WarpStream:
        if spec.phases:
            # Phase-shifting kernels keep the reference generator: the
            # phase machinery is open-system bookkeeping, not a hot path.
            return WarpStream(
                spec, app_index, block_id, warp_id, seed, line_bytes
            )
        if spec.reuse_fraction > 0.0 or spec.pattern is AccessPattern.RANDOM:
            # Word-replay specs (hot-set reuse / RANDOM): the scalar orbit
            # walk over bulk-drawn RNG words measures at or below reference
            # speed at every budget (rejection sampling keeps the
            # per-access control flow in Python), so routing them through
            # the fixed-layout-only fast path would be a loss dressed as a
            # win.  VectorizedWarpStream still implements them — the
            # equivalence tests construct it directly — but the backend
            # policy is strictly max(reference, vectorized) per spec.
            return WarpStream(
                spec, app_index, block_id, warp_id, seed, line_bytes
            )
        if spec.insts_per_warp < _VEC_MIN_STEPS * (1.0 + spec.compute_per_mem):
            return WarpStream(
                spec, app_index, block_id, warp_id, seed, line_bytes
            )
        return VectorizedWarpStream(
            spec, app_index, block_id, warp_id, seed, line_bytes
        )

    @staticmethod
    def make_memory_stats(n_apps: int) -> BatchedMemoryStats:
        return BatchedMemoryStats(n_apps)


# Re-exported for the seed-equivalence tests (kept out of __init__ so the
# registry import stays NumPy-free).
__all__ = [
    "HAVE_NUMPY",
    "BatchedMemoryStats",
    "VectorizedBackend",
    "VectorizedWarpStream",
    "stream_seed",
]
