"""Auxiliary Tag Directory (ATD) with set sampling [Qureshi & Patt, MICRO'06].

One ATD per (application, partition) tracks what the L2 slice *would*
contain if the application ran alone: same associativity, same LRU policy,
but fed only that application's accesses.  When the shared L2 misses while
the ATD hits, the miss is a *contention miss* — a line the application
would have kept was evicted by a co-runner.  DASE and ASM both consume this
signal (ELLCMiss, Eqs. 11/13/17).

To bound hardware cost the paper samples 8 sets; misses detected on sampled
sets are scaled up by 1/sample_fraction (Eq. 13).
"""

from __future__ import annotations

from collections import OrderedDict


class AuxTagDirectory:
    """Sampled shadow tag store for one application on one L2 slice."""

    __slots__ = (
        "assoc", "n_sets", "_sampled", "_sets", "sample_fraction",
        "sampled_contention_misses", "sampled_accesses",
    )

    def __init__(self, n_sets: int, assoc: int, sample_sets: int) -> None:
        if sample_sets < 1:
            raise ValueError("need at least one sampled set")
        self.assoc = assoc
        self.n_sets = n_sets
        sample_sets = min(sample_sets, n_sets)
        # Spread sampled sets evenly across the index space.
        step = max(1, n_sets // sample_sets)
        chosen = [i * step for i in range(sample_sets)]
        self._sampled: dict[int, OrderedDict[int, None]] = {
            s: OrderedDict() for s in chosen
        }
        self.sample_fraction = len(chosen) / n_sets
        self.sampled_contention_misses = 0
        self.sampled_accesses = 0

    def is_sampled(self, cache_set: int) -> bool:
        return cache_set in self._sampled

    def observe(self, cache_set: int, tag: int, shared_hit: bool) -> bool:
        """Feed one L2 access; returns True if it is a contention miss.

        Must be called for *every* access by the owning application (the
        method ignores non-sampled sets internally), with ``shared_hit``
        describing what the real shared L2 did.
        """
        s = self._sampled.get(cache_set)
        if s is None:
            return False
        self.sampled_accesses += 1
        atd_hit = tag in s
        if atd_hit:
            s.move_to_end(tag)
        else:
            if len(s) >= self.assoc:
                s.popitem(last=False)
            s[tag] = None
        contention = atd_hit and not shared_hit
        if contention:
            self.sampled_contention_misses += 1
        return contention

    def estimated_contention_misses(self) -> float:
        """Scaled-up ELLCMiss estimate over the whole slice (Eq. 13)."""
        return self.sampled_contention_misses / self.sample_fraction

    def reset_counters(self) -> None:
        """Clear per-interval counters (tag state persists across intervals)."""
        self.sampled_contention_misses = 0
        self.sampled_accesses = 0
