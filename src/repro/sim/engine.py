"""Deterministic discrete-event engine.

A single global clock in core cycles.  Components schedule callbacks at
future cycles; ties are broken by insertion order so runs are reproducible.
Stale events (e.g. an SM completion superseded by a state change) are handled
by lazy invalidation: callers schedule with a *generation* token and the
callback decides whether it is still current.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Engine:
    """Event queue + simulation clock.

    Events are ``(cycle, sequence, callback)`` triples in a binary heap.  The
    ``sequence`` counter makes ordering total and deterministic: two events
    scheduled for the same cycle fire in the order they were scheduled.
    """

    __slots__ = ("now", "_heap", "_seq", "_stopped")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq: int = 0
        self._stopped = False

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` cycles from now (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + int(delay), self._seq, callback))

    def at(self, cycle: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``cycle`` (>= now)."""
        self.schedule(int(cycle) - self.now, callback)

    def stop(self) -> None:
        """Halt the run loop after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued (including possibly stale ones)."""
        return len(self._heap)

    def run(self, until: int | None = None) -> int:
        """Process events in order until the queue drains or ``until`` cycles.

        Returns the final clock value.  When ``until`` is given the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        callers can account wall-clock-style statistics over a fixed window.
        """
        self._stopped = False
        heap = self._heap
        while heap and not self._stopped:
            cycle, _, callback = heap[0]
            if until is not None and cycle > until:
                break
            heapq.heappop(heap)
            self.now = cycle
            callback()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
