"""Deterministic discrete-event engine.

A single global clock in core cycles.  Components schedule callbacks at
future cycles; ties are broken by insertion order so runs are reproducible.
Stale events (e.g. an SM completion superseded by a state change) are handled
by lazy invalidation: callers schedule with a *generation* token and the
callback decides whether it is still current.

The queue is a *bucket queue*: a binary heap of distinct cycle numbers plus
one FIFO list of events per cycle.  Within a cycle, append order equals
schedule order, so the total order is the same ``(cycle, sequence)`` order a
per-event heap would give — but a cycle with many events costs one heap
operation instead of one per event.  Buckets are popped before draining, so
an event scheduled for the cycle *currently being processed* starts a fresh
bucket that the run loop drains in the same pass, immediately after the
current one — same firing order, no mid-drain growth to track.

Events are ``(callback, arg)`` pairs.  Hot paths pass a bound method plus its
payload argument instead of allocating a fresh closure per event; zero-arg
callbacks are supported with a sentinel so existing callers are unchanged.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable

#: Sentinel distinguishing "no payload" from an explicit ``None`` payload.
_NO_ARG: Any = object()


class Engine:
    """Event queue + simulation clock.

    Scheduling order is total and deterministic: events fire in ``(cycle,
    schedule order)``.  ``schedule(delay, fn, arg)`` runs ``fn(arg)`` —
    callers on the hot path pass a bound method and a payload instead of a
    lambda; ``schedule(delay, fn)`` runs ``fn()`` as before.
    """

    __slots__ = ("now", "_heap", "_buckets", "_bucket_get", "_stopped",
                 "_trace")

    def __init__(self, tracer: Any = None) -> None:
        self.now: int = 0
        self._heap: list[int] = []  # distinct cycles with pending events
        # Flat per-cycle FIFOs: [cb0, arg0, cb1, arg1, ...].  Interleaving
        # callback and payload in one list avoids a tuple allocation per
        # event — measurable at ~100k events per simulated run.
        self._buckets: dict[int, list] = {}
        self._bucket_get = self._buckets.get  # pre-bound: hottest lookup
        self._stopped = False
        # Observability hook (repro.obs.EventTracer or None).  The run loop
        # checks it ONCE per run() call — the disabled dispatch path is
        # byte-for-byte the pre-observability loop, so tracing costs nothing
        # when off.  The traced loop only bumps tracer-side counters; it
        # never perturbs event order or simulator state.
        self._trace = tracer

    def schedule(
        self, delay: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback(arg)`` (or ``callback()``) ``delay`` cycles from now.

        ``delay`` must be a non-negative integer number of cycles.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        cycle = self.now + delay
        bucket = self._bucket_get(cycle)
        if bucket is None:
            self._buckets[cycle] = [callback, arg]
            heappush(self._heap, cycle)
        else:
            bucket.append(callback)
            bucket.append(arg)

    def at(self, cycle: int, callback: Callable, arg: Any = _NO_ARG) -> None:
        """Run ``callback`` at absolute ``cycle`` (>= now)."""
        self.schedule(int(cycle) - self.now, callback, arg)

    def stop(self) -> None:
        """Halt the run loop after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued (including possibly stale ones)."""
        return sum(len(b) for b in self._buckets.values()) // 2

    def run(self, until: int | None = None) -> int:
        """Process events in order until the queue drains or ``until`` cycles.

        Returns the final clock value.  When ``until`` is given the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        callers can account wall-clock-style statistics over a fixed window.
        """
        if self._trace is not None:
            return self._run_traced(until)
        self._stopped = False
        heap = self._heap
        buckets = self._buckets
        no_arg = _NO_ARG
        limit = until if until is not None else None
        # The event loop allocates short-lived tuples/lists at a rate that
        # keeps the cyclic collector's gen-0 threshold firing constantly, yet
        # per-event garbage is acyclic and refcount-freed.  Suspending the
        # collector for the duration of the loop is observationally pure.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                cycle = heap[0]
                if limit is not None and cycle > limit:
                    break
                self.now = cycle
                # The bucket is *popped* before draining, so it can never
                # grow mid-drain: a same-cycle schedule starts a fresh bucket
                # (and re-pushes the cycle), which this loop picks up on its
                # next iteration — firing order is identical to appending,
                # but the inner loop needs no per-event growth re-check.
                heappop(heap)
                bucket = buckets.pop(cycle)
                if len(bucket) == 2:
                    # Singleton bucket: skip the iterator machinery (the
                    # while-condition re-checks the stop flag, and a fully
                    # drained bucket leaves nothing to requeue).
                    callback = bucket[0]
                    arg = bucket[1]
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    continue
                it = iter(bucket)
                # zip(it, it) walks (callback, arg) pairs at C speed; CPython
                # reuses the result tuple, so the iteration allocates nothing.
                for callback, arg in zip(it, it):
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    if self._stopped:
                        # Stopped mid-cycle: the iterator holds exactly the
                        # unprocessed tail.  Requeue it *ahead of* any
                        # same-cycle events scheduled while draining.
                        leftover = list(it)
                        if leftover:
                            appended = buckets.get(cycle)
                            if appended is not None:
                                leftover.extend(appended)
                            else:
                                heappush(heap, cycle)
                            buckets[cycle] = leftover
                        break
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def _run_traced(self, until: int | None = None) -> int:
        """The run loop with dispatch accounting for an attached tracer.

        Identical firing order and stop semantics to :meth:`run` — the only
        additions are the per-bucket ``engine_events``/``engine_max_bucket``
        updates on the tracer (the general ``zip`` drain handles singleton
        buckets too, so the fast path isn't duplicated here).
        """
        trace = self._trace
        self._stopped = False
        heap = self._heap
        buckets = self._buckets
        no_arg = _NO_ARG
        limit = until if until is not None else None
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                cycle = heap[0]
                if limit is not None and cycle > limit:
                    break
                self.now = cycle
                heappop(heap)
                bucket = buckets.pop(cycle)
                n_events = len(bucket) >> 1
                trace.engine_events += n_events
                if n_events > trace.engine_max_bucket:
                    trace.engine_max_bucket = n_events
                it = iter(bucket)
                for callback, arg in zip(it, it):
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    if self._stopped:
                        leftover = list(it)
                        if leftover:
                            appended = buckets.get(cycle)
                            if appended is not None:
                                leftover.extend(appended)
                            else:
                                heappush(heap, cycle)
                            buckets[cycle] = leftover
                        break
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
