"""Deterministic discrete-event engine.

A single global clock in core cycles.  Components schedule callbacks at
future cycles; ties are broken by insertion order so runs are reproducible.
Stale events (e.g. an SM completion superseded by a state change) are handled
by lazy invalidation: callers schedule with a *generation* token and the
callback decides whether it is still current.

The queue is a *bucket queue*: a binary heap of distinct cycle numbers plus
one FIFO list of events per cycle.  Within a cycle, append order equals
schedule order, so the total order is the same ``(cycle, sequence)`` order a
per-event heap would give — but a cycle with many events costs one heap
operation instead of one per event.  Buckets are popped before draining, so
an event scheduled for the cycle *currently being processed* starts a fresh
bucket that the run loop drains in the same pass, immediately after the
current one — same firing order, no mid-drain growth to track.

Events are ``(callback, arg)`` pairs.  Hot paths pass a bound method plus its
payload argument instead of allocating a fresh closure per event; zero-arg
callbacks are supported with a sentinel so existing callers are unchanged.

Bucketing pays for itself only when cycles actually carry several events;
a sparse schedule (≈1 event/cycle) pays the dict+bucket machinery on top
of the heap and runs *slower* than a plain per-event heap.  The engine
therefore starts bucketed and watches occupancy over a probation window of
events in the untraced run loop: if the mean bucket occupancy stays below
:data:`_SPARSE_RATIO`, it converts — once, irreversibly — to a per-event
``(cycle, seq)`` heap.  The conversion preserves the exact total order, so
firing order is bit-identical whether or not (and whenever) the switch
happens.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Callable

#: Sentinel distinguishing "no payload" from an explicit ``None`` payload.
_NO_ARG: Any = object()

#: Probation: events observed by the untraced run loop before deciding
#: whether bucketing is worth keeping.  Short enough that a sparse
#: schedule pays the bucket overhead only briefly; every suite workload
#: holds occupancy ≥1.5 over this window (runs start bursty — all warps
#: issue near cycle 0), so real simulations never convert.
_PROBATION_EVENTS = 1024
#: Mean events-per-bucket below which the per-event heap wins (measured:
#: the bucket queue needs ≥~1.3 events/cycle to amortize its dict traffic).
_SPARSE_RATIO = 1.3


class Engine:
    """Event queue + simulation clock.

    Scheduling order is total and deterministic: events fire in ``(cycle,
    schedule order)``.  ``schedule(delay, fn, arg)`` runs ``fn(arg)`` —
    callers on the hot path pass a bound method and a payload instead of a
    lambda; ``schedule(delay, fn)`` runs ``fn()`` as before.
    """

    __slots__ = ("now", "_heap", "_buckets", "_bucket_get", "_stopped",
                 "_trace", "_sparse", "_seq", "_probing", "_probe_left",
                 "_probe_buckets")

    def __init__(self, tracer: Any = None) -> None:
        self.now: int = 0
        self._heap: list = []  # bucketed: distinct cycles with pending
        # events; sparse: (cycle, seq, callback, arg) per-event entries
        # Flat per-cycle FIFOs: [cb0, arg0, cb1, arg1, ...].  Interleaving
        # callback and payload in one list avoids a tuple allocation per
        # event — measurable at ~100k events per simulated run.
        self._buckets: dict[int, list] = {}
        self._bucket_get = self._buckets.get  # pre-bound: hottest lookup
        self._stopped = False
        # Occupancy probation (see module docstring): runs once, in the
        # untraced run loop, and may flip the queue to per-event mode.
        self._sparse = False
        self._seq = 0  # sparse-mode tiebreaker: schedule order
        self._probing = True
        self._probe_left = _PROBATION_EVENTS
        self._probe_buckets = 0
        # Observability hook (repro.obs.EventTracer or None).  The run loop
        # checks it ONCE per run() call — the disabled dispatch path is
        # byte-for-byte the pre-observability loop, so tracing costs nothing
        # when off.  The traced loop only bumps tracer-side counters; it
        # never perturbs event order or simulator state.
        self._trace = tracer

    def schedule(
        self, delay: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback(arg)`` (or ``callback()``) ``delay`` cycles from now.

        ``delay`` must be a non-negative integer number of cycles.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        cycle = self.now + delay
        if self._sparse:
            seq = self._seq
            self._seq = seq + 1
            heappush(self._heap, (cycle, seq, callback, arg))
            return
        bucket = self._bucket_get(cycle)
        if bucket is None:
            self._buckets[cycle] = [callback, arg]
            heappush(self._heap, cycle)
        else:
            bucket.append(callback)
            bucket.append(arg)

    def _to_sparse(self) -> None:
        """Convert the bucket queue to a per-event heap, preserving order.

        Entries are emitted in ascending ``(cycle, in-bucket position)``
        with a strictly increasing ``seq``, so the sorted list is already a
        valid heap *and* reproduces the exact firing order the buckets
        would have produced.  ``(cycle, seq)`` is unique, so heap
        comparisons never reach the callback.
        """
        entries: list = []
        seq = 0
        buckets = self._buckets
        for cycle in sorted(buckets):
            it = iter(buckets[cycle])
            for callback, arg in zip(it, it):
                entries.append((cycle, seq, callback, arg))
                seq += 1
        buckets.clear()
        self._heap = entries
        self._seq = seq
        self._sparse = True
        self._probing = False

    def at(self, cycle: int, callback: Callable, arg: Any = _NO_ARG) -> None:
        """Run ``callback`` at absolute ``cycle`` (>= now)."""
        self.schedule(int(cycle) - self.now, callback, arg)

    def stop(self) -> None:
        """Halt the run loop after the current event returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of events still queued (including possibly stale ones)."""
        if self._sparse:
            return len(self._heap)
        return sum(len(b) for b in self._buckets.values()) // 2

    def run(self, until: int | None = None) -> int:
        """Process events in order until the queue drains or ``until`` cycles.

        Returns the final clock value.  When ``until`` is given the clock is
        advanced to exactly ``until`` even if the queue drained earlier, so
        callers can account wall-clock-style statistics over a fixed window.
        """
        if self._trace is not None:
            return self._run_traced(until)
        if self._sparse:
            return self._run_sparse(until)
        self._stopped = False
        heap = self._heap
        buckets = self._buckets
        no_arg = _NO_ARG
        limit = until if until is not None else None
        # The event loop allocates short-lived tuples/lists at a rate that
        # keeps the cyclic collector's gen-0 threshold firing constantly, yet
        # per-event garbage is acyclic and refcount-freed.  Suspending the
        # collector for the duration of the loop is observationally pure.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                if self._probing and self._probe_left <= 0:
                    self._probing = False
                    seen = _PROBATION_EVENTS - self._probe_left
                    if seen < _SPARSE_RATIO * self._probe_buckets:
                        # Bucket occupancy too low to pay for the dict
                        # traffic — convert and finish on the per-event
                        # heap.  (The nested gc.disable in _run_sparse is
                        # a no-op; the finally below re-enables.)
                        self._to_sparse()
                        return self._run_sparse(until)
                cycle = heap[0]
                if limit is not None and cycle > limit:
                    break
                self.now = cycle
                # The bucket is *popped* before draining, so it can never
                # grow mid-drain: a same-cycle schedule starts a fresh bucket
                # (and re-pushes the cycle), which this loop picks up on its
                # next iteration — firing order is identical to appending,
                # but the inner loop needs no per-event growth re-check.
                heappop(heap)
                bucket = buckets.pop(cycle)
                if self._probing:
                    self._probe_left -= len(bucket) >> 1
                    self._probe_buckets += 1
                if len(bucket) == 2:
                    # Singleton bucket: skip the iterator machinery (the
                    # while-condition re-checks the stop flag, and a fully
                    # drained bucket leaves nothing to requeue).
                    callback = bucket[0]
                    arg = bucket[1]
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    continue
                it = iter(bucket)
                # zip(it, it) walks (callback, arg) pairs at C speed; CPython
                # reuses the result tuple, so the iteration allocates nothing.
                for callback, arg in zip(it, it):
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    if self._stopped:
                        # Stopped mid-cycle: the iterator holds exactly the
                        # unprocessed tail.  Requeue it *ahead of* any
                        # same-cycle events scheduled while draining.
                        leftover = list(it)
                        if leftover:
                            appended = buckets.get(cycle)
                            if appended is not None:
                                leftover.extend(appended)
                            else:
                                heappush(heap, cycle)
                            buckets[cycle] = leftover
                        break
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def _run_sparse(self, until: int | None = None) -> int:
        """The run loop over the per-event heap (post-conversion).

        Same stop/``until`` semantics as :meth:`run`.  A stop leaves the
        unprocessed events exactly where they are — nothing is popped
        without being dispatched, so there is no leftover to requeue.
        """
        self._stopped = False
        heap = self._heap
        no_arg = _NO_ARG
        limit = until if until is not None else None
        pop = heappop
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                cycle = heap[0][0]
                if limit is not None and cycle > limit:
                    break
                entry = pop(heap)
                self.now = cycle
                callback = entry[2]
                arg = entry[3]
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now

    def _run_traced(self, until: int | None = None) -> int:
        """The run loop with dispatch accounting for an attached tracer.

        Identical firing order and stop semantics to :meth:`run` — the only
        additions are the per-bucket ``engine_events``/``engine_max_bucket``
        updates on the tracer (the general ``zip`` drain handles singleton
        buckets too, so the fast path isn't duplicated here).
        """
        trace = self._trace
        self._stopped = False
        heap = self._heap
        buckets = self._buckets
        no_arg = _NO_ARG
        limit = until if until is not None else None
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap and not self._stopped:
                cycle = heap[0]
                if limit is not None and cycle > limit:
                    break
                self.now = cycle
                heappop(heap)
                bucket = buckets.pop(cycle)
                n_events = len(bucket) >> 1
                trace.engine_events += n_events
                if n_events > trace.engine_max_bucket:
                    trace.engine_max_bucket = n_events
                it = iter(bucket)
                for callback, arg in zip(it, it):
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                    if self._stopped:
                        leftover = list(it)
                        if leftover:
                            appended = buckets.get(cycle)
                            if appended is not None:
                                leftover.extend(appended)
                            else:
                                heappush(heap, cycle)
                            buckets[cycle] = leftover
                        break
        finally:
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
