"""Physical address decomposition.

Addresses are byte addresses in a flat space.  Cache lines (128 B) are
interleaved across memory partitions in 256 B granules (two lines, as on
real GPUs), which spreads every application's traffic over all L2 slices
and DRAM channels — the property that makes the memory system a *shared*
resource and creates the interference DASE models.  The two-line granule
also means a *wide* (two consecutive line) access lands in one partition
and one DRAM row, giving coalesced kernels their row-buffer locality.

Within a partition the local line stream maps onto DRAM as: consecutive
lines fill a row buffer (``lines_per_row`` lines), then move to the next
bank, so streaming enjoys both row hits and bank-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig


@dataclass(slots=True, unsafe_hash=True)
class DecodedAddress:
    """All the coordinates the memory system needs for one access.

    Slotted (not frozen): one of these is built per memory access, and a
    frozen dataclass pays an ``object.__setattr__`` per field in ``__init__``
    — measurably slow on the hot path.  Treat instances as immutable.
    """

    line: int  # global cache-line number
    partition: int  # which memory partition / L2 slice
    local_line: int  # line index within the partition
    cache_set: int  # L2 set within the slice
    tag: int  # L2 tag within the set
    bank: int  # DRAM bank within the partition
    row: int  # DRAM row within the bank


class AddressMapper:
    """Decodes byte addresses under a given :class:`GPUConfig` geometry."""

    __slots__ = (
        "_line_shift", "_n_partitions", "_n_sets", "_set_shift", "_set_mask",
        "_n_banks", "_lines_per_row", "_ilv", "_ilv_shift", "_ilv_mask",
    )

    def __init__(self, config: GPUConfig) -> None:
        line = config.l2.line_bytes
        if line & (line - 1):
            raise ValueError("line size must be a power of two")
        self._line_shift = line.bit_length() - 1
        self._n_partitions = config.n_partitions
        self._n_sets = config.l2.n_sets
        self._set_mask = self._n_sets - 1
        self._set_shift = self._n_sets.bit_length() - 1
        self._n_banks = config.n_banks
        self._lines_per_row = config.lines_per_row
        self._ilv = config.interleave_lines
        self._ilv_shift = self._ilv.bit_length() - 1
        self._ilv_mask = self._ilv - 1

    @property
    def line_bytes(self) -> int:
        return 1 << self._line_shift

    def line_of(self, addr: int) -> int:
        """Global cache-line number containing byte address ``addr``."""
        return addr >> self._line_shift

    def decode(self, addr: int) -> DecodedAddress:
        """Full decomposition of a byte address."""
        if addr < 0:
            raise ValueError("addresses are non-negative")
        line = addr >> self._line_shift
        ilv_shift = self._ilv_shift
        n_partitions = self._n_partitions
        lines_per_row = self._lines_per_row
        n_banks = self._n_banks
        granule = line >> ilv_shift
        local = (granule // n_partitions) << ilv_shift | (line & self._ilv_mask)
        return DecodedAddress(
            line,
            granule % n_partitions,
            local,
            local & self._set_mask,
            local >> self._set_shift,
            (local // lines_per_row) % n_banks,
            local // (lines_per_row * n_banks),
        )

    def encode(self, partition: int, local_line: int) -> int:
        """Inverse of :meth:`decode`: byte address of a partition-local line.

        Useful for tests and trace construction; round-trips with decode.
        """
        if not 0 <= partition < self._n_partitions:
            raise ValueError("partition out of range")
        if local_line < 0:
            raise ValueError("local_line must be non-negative")
        granule = (local_line >> self._ilv_shift) * self._n_partitions + partition
        line = granule << self._ilv_shift | (local_line & self._ilv_mask)
        return line << self._line_shift

    def local_coords(self, bank: int, row: int, line_in_row: int = 0) -> int:
        """Partition-local line number for (bank, row, offset) coordinates."""
        return (row * self._n_banks + bank) * self._lines_per_row + line_in_row
