"""Top-level GPU: SMs ↔ crossbar ↔ memory partitions, plus the thread-block
dispatcher, interval statistics, and the SM-migration (draining) mechanism.

A :class:`GPU` instance simulates one run: construct it with the kernels and
an SM partitioning, then :meth:`run` for a cycle budget or
:meth:`run_until_instructions` for a matched-instruction alone replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import repro.obs as _obs
from repro.config import GPUConfig
from repro.obs.tracer import PID_SIM, Observation
from repro.sim.address import AddressMapper
from repro.sim.backends import get_backend
from repro.sim.dram import MemoryPartition
from repro.sim.engine import Engine
from repro.sim.interconnect import Crossbar
from repro.sim.kernel import KernelProgress, KernelSpec, WarpStream
from repro.sim.sm import SM, ThreadBlockRT, WarpRT
from repro.sim.stats import (
    AppMemCounters,
    AppSMCounters,
    IntervalRecord,
    MemoryStats,
)


@dataclass
class LaunchedKernel:
    """A kernel plus its launch-time policy knobs.

    ``stream_id`` fixes the kernel's RNG seed and address-space slice
    independently of its position in the kernel list, so a matched-
    instruction *alone* replay (one kernel) observes exactly the warp
    streams it had in the shared run (where it may have been app #1).
    """

    spec: KernelSpec
    restart: bool = True  # restart the grid when it finishes (paper's method)
    stream_id: int | None = None  # default: position in the kernel list


IntervalListener = Callable[[list[IntervalRecord]], None]


class MemAccess:
    """One in-flight memory access, threaded through the whole path.

    The same object is the request-crossbar payload, the partition callback,
    and the reply-crossbar payload, so the SM → crossbar → partition →
    crossbar → SM round trip allocates exactly one object instead of a chain
    of per-hop closures.
    """

    __slots__ = ("gpu", "part", "addr", "app", "sm", "warp", "wait")

    def __init__(self, gpu, part, addr, app, sm, warp, wait):
        self.gpu = gpu
        self.part = part
        self.addr = addr
        self.app = app
        self.sm = sm
        self.warp = warp
        self.wait = wait

    def deliver(self) -> None:
        """Request-crossbar arrival: hand the access to the partition."""
        self.part.access(self.addr, self.app, self)

    def __call__(self, completion: int) -> None:
        """Partition completion callback: route the reply (if any).

        The reply crossbar carries the SM's ``memory_response`` bound method
        plus the warp directly — no per-reply wrapper hop — so this object's
        last use is here either way: recycle it (see ``GPU._acc_pool``).
        """
        if self.wait:
            self.gpu._xbar_reply_send(
                self.sm.sm_id, self.sm._memory_response_cb, self.warp
            )
        self.gpu._acc_pool.append(self)


class GPU:
    """One simulated GPU executing one or more kernels concurrently."""

    def __init__(
        self,
        config: GPUConfig,
        kernels: Sequence[LaunchedKernel | KernelSpec],
        sm_partition: Sequence[int] | None = None,
        obs: "Observation | bool | None" = None,
        allow_inactive: bool = False,
    ) -> None:
        """``sm_partition[i]`` = number of SMs initially owned by app ``i``.

        Defaults to the paper's even split.  The partition must sum to at
        most ``config.n_sms``; leftover SMs stay idle.

        ``allow_inactive`` (open-system runs): permits zero-SM entries in
        the partition — those applications start *inactive* (no thread
        blocks are dispatched for them) until :meth:`activate_app` +
        :meth:`grant_sms` admit them.  The closed-system default keeps the
        historical invariant that every application owns at least one SM.

        ``obs``: an :class:`repro.obs.Observation` to record this run into;
        defaults to the process-wide recording (``repro.obs.enable()``), or
        no observability at all — the free path — when neither is set.
        ``obs=False`` forces observability off even when a process-wide
        recording is active (alone replays use this so the shared run's
        trace stays pure).
        """
        self.config = config
        self.kernels = [
            k if isinstance(k, LaunchedKernel) else LaunchedKernel(k) for k in kernels
        ]
        n_apps = len(self.kernels)
        if n_apps < 1:
            raise ValueError("need at least one kernel")
        if sm_partition is None:
            base = config.n_sms // n_apps
            extra = config.n_sms % n_apps
            sm_partition = [base + (1 if i < extra else 0) for i in range(n_apps)]
        sm_partition = list(sm_partition)
        if len(sm_partition) != n_apps:
            raise ValueError("sm_partition length must match kernel count")
        if allow_inactive:
            if any(s < 0 for s in sm_partition):
                raise ValueError("SM counts must be non-negative")
            if not any(s > 0 for s in sm_partition):
                raise ValueError("at least one application needs an SM")
        elif any(s < 1 for s in sm_partition):
            raise ValueError("every application needs at least one SM")
        if sum(sm_partition) > config.n_sms:
            raise ValueError("sm_partition exceeds available SMs")
        #: Dispatch gate per application: inactive apps get no new thread
        #: blocks.  Closed-system runs keep every flag True forever.
        self.app_active = [s > 0 or not allow_inactive for s in sm_partition]

        # Observability: resolved once, here — every component stores its own
        # direct tracer reference (or None), so the disabled hot path is a
        # single attribute check and the simulation is bit-identical.
        if obs is None:
            obs = _obs.active()
        elif obs is False:
            obs = None
        self.obs = obs
        tracer = obs.tracer if obs is not None else None
        self._trace = tracer

        self.engine = Engine(tracer)
        self.mapper = AddressMapper(config)
        self._decode = self.mapper.decode  # pre-bound: one lookup per access
        # Backend: supplies the warp-stream and stats implementations
        # (result-equivalent across backends — see repro.sim.backends).
        self.backend = get_backend(config.backend)
        self.mem_stats: MemoryStats = self.backend.make_memory_stats(n_apps)
        self.partitions = [
            MemoryPartition(self.engine, config, p, n_apps, self.mem_stats,
                            tracer)
            for p in range(config.n_partitions)
        ]
        self.sms = [SM(self.engine, config, i, self) for i in range(config.n_sms)]
        # One crossbar per direction (Table 2): SM→partition and back.
        self.xbar_request = Crossbar(
            self.engine, config.n_partitions, config.icnt_latency,
            config.icnt_packet_cycles, tracer, _obs.PID_ICNT_REQUEST,
        )
        self.xbar_reply = Crossbar(
            self.engine, config.n_sms, config.icnt_latency,
            config.icnt_packet_cycles, tracer, _obs.PID_ICNT_REPLY,
        )
        if tracer is not None:
            tracer.set_topology(
                n_apps=n_apps,
                n_sms=config.n_sms,
                n_partitions=config.n_partitions,
                n_banks=config.n_banks,
                app_names=[k.spec.name for k in self.kernels],
            )
        # Cached bound methods for the per-request path.
        self._xbar_req_send = self.xbar_request.send
        self._xbar_reply_send = self.xbar_reply.send
        # Free-list of MemAccess objects (allocation and __init__ are
        # measurable at one object per memory access).
        self._acc_pool: list[MemAccess] = []
        self.sm_counters = [AppSMCounters() for _ in range(n_apps)]
        self.progress = [KernelProgress(k.spec) for k in self.kernels]
        self.blocks_inflight = [0] * n_apps

        # Initial ownership: app i gets the next sm_partition[i] SMs in order
        # (matches the paper's "first app gets the first half").
        cursor = 0
        for app, count in enumerate(sm_partition):
            for sm in self.sms[cursor : cursor + count]:
                sm.assign_app(app)
            cursor += count

        self._interval_listeners: list[IntervalListener] = []
        self.interval_history: list[list[IntervalRecord]] = []
        self._last_interval_end = 0
        self._mem_snap = [AppMemCounters() for _ in range(n_apps)]
        self._sm_snap = [AppSMCounters() for _ in range(n_apps)]
        self._sm_time_last = 0

        self._inst_target: tuple[int, int] | None = None  # (app, instructions)
        self._started = False

    # ------------------------------------------------------------ topology

    @property
    def n_apps(self) -> int:
        return len(self.kernels)

    def sms_of(self, app: int) -> list[SM]:
        return [sm for sm in self.sms if sm.app == app]

    def sm_counts(self) -> list[int]:
        counts = [0] * self.n_apps
        for sm in self.sms:
            if sm.app is not None:
                counts[sm.app] += 1
        return counts

    # ------------------------------------------------------------- dispatch

    def _make_streams(self, app: int, block_id: int) -> list[WarpStream]:
        kernel = self.kernels[app]
        spec = kernel.spec
        sid = kernel.stream_id if kernel.stream_id is not None else app
        make_stream = self.backend.make_stream
        return [
            make_stream(
                spec, sid, block_id, w, self.config.seed, self.config.l2.line_bytes
            )
            for w in range(spec.warps_per_block)
        ]

    def _fill_sm(self, sm: SM) -> None:
        app = sm.app
        if app is None:
            return
        if not self.app_active[app]:
            return
        kernel = self.kernels[app]
        spec = kernel.spec
        prog = self.progress[app]
        while sm.can_accept_block(spec.warps_per_block, spec.max_resident_blocks):
            if not kernel.restart and prog.blocks_remaining <= 0:
                break
            block_id = prog.next_block_id()
            block = ThreadBlockRT(app, block_id, spec.warps_per_block)
            self.blocks_inflight[app] += 1
            sm.add_block(block, self._make_streams(app, block_id))

    def block_finished(self, sm: SM, block: ThreadBlockRT) -> None:
        """SM callback: a resident thread block retired."""
        app = block.app
        self.blocks_inflight[app] -= 1
        self.progress[app].blocks_finished += 1
        if not sm.draining:
            self._fill_sm(sm)

    # ---------------------------------------------------------- memory path

    def issue_memory_request(
        self, sm: SM, warp: WarpRT, addr: int, wait: bool = True
    ) -> None:
        """Route one memory access: SM → crossbar → partition → back.

        ``wait=False`` (stores): the access still occupies the memory
        system, but no response is routed back and the warp is not woken.
        """
        decoded = self._decode(addr)
        app = sm.app
        if app is None:
            app = warp.block.app
        part = decoded.partition
        pool = self._acc_pool
        if pool:
            acc = pool.pop()
            acc.part = self.partitions[part]
            acc.addr = decoded
            acc.app = app
            acc.sm = sm
            acc.warp = warp
            acc.wait = wait
        else:
            acc = MemAccess(
                self, self.partitions[part], decoded, app, sm, warp, wait
            )
        self._xbar_req_send(part, MemAccess.deliver, acc)

    # ------------------------------------------------------------ intervals

    def add_interval_listener(self, listener: IntervalListener) -> None:
        self._interval_listeners.append(listener)

    def remove_interval_listener(self, listener: IntervalListener) -> None:
        """Detach a listener added with :meth:`add_interval_listener`."""
        self._interval_listeners.remove(listener)

    def _account_sm_time(self, now: int) -> None:
        dt = now - self._sm_time_last
        if dt <= 0:
            return
        self._sm_time_last = now
        for sm in self.sms:
            sm.account_wall_time(now)
            if sm.app is not None:
                self.sm_counters[sm.app].sm_time += dt

    def _interval_tick(self) -> None:
        now = self.engine.now
        self._account_sm_time(now)
        self.mem_stats.advance(now)
        records: list[IntervalRecord] = []
        counts = self.sm_counts()
        for app in range(self.n_apps):
            mem_now = self.mem_stats.apps[app]
            sm_now = self.sm_counters[app]
            ellc = sum(
                p.atds[app].estimated_contention_misses() for p in self.partitions
            )
            prog = self.progress[app]
            dispatched_total = (
                prog.restarts * prog.spec.blocks_total + prog.blocks_dispatched
            )
            inflight = dispatched_total - prog.blocks_finished
            unfinished = prog.blocks_remaining + inflight
            records.append(
                IntervalRecord(
                    app=app,
                    start=self._last_interval_end,
                    end=now,
                    mem=mem_now.delta(self._mem_snap[app]),
                    sm=sm_now.delta(self._sm_snap[app]),
                    ellc_miss=ellc,
                    sm_count=counts[app],
                    sm_total=self.config.n_sms,
                    tb_running=inflight,
                    tb_unfinished=unfinished,
                )
            )
            self._mem_snap[app] = mem_now.snapshot()
            self._sm_snap[app] = sm_now.snapshot()
        for p in self.partitions:
            for atd in p.atds:
                atd.reset_counters()
        self._last_interval_end = now
        self.interval_history.append(records)
        if self._trace is not None:
            self._trace.instant(
                "interval", now, PID_SIM, 0,
                {"index": len(self.interval_history) - 1},
            )
        for listener in self._interval_listeners:
            listener(records)
        self.engine.schedule(self.config.interval_cycles, self._interval_tick)

    # ---------------------------------------------------------- run control

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        for sm in self.sms:
            self._fill_sm(sm)
        self.engine.schedule(self.config.interval_cycles, self._interval_tick)

    def note_instructions(self, app: int) -> None:
        """Hook for the instruction-target stop condition."""
        if self._inst_target is None:
            return
        tapp, target = self._inst_target
        if app == tapp and self.progress[app].instructions >= target:
            self.engine.stop()

    def run(self, cycles: int) -> int:
        """Simulate ``cycles`` more core cycles; returns the clock."""
        self._start()
        end = self.engine.now + cycles
        self.engine.run(until=end)
        self._account_sm_time(self.engine.now)
        self.mem_stats.advance(self.engine.now)
        return self.engine.now

    def run_until_instructions(
        self, app: int, instructions: int, max_cycles: int = 1_000_000_000
    ) -> int:
        """Run until ``app`` has issued ``instructions`` (alone-replay mode)."""
        self._start()
        self._inst_target = (app, instructions)
        if self.progress[app].instructions >= instructions:
            return self.engine.now
        self.engine.run(until=self.engine.now + max_cycles)
        self._inst_target = None
        self._account_sm_time(self.engine.now)
        self.mem_stats.advance(self.engine.now)
        if self.progress[app].instructions < instructions:
            raise RuntimeError(
                f"app {app} issued only {self.progress[app].instructions} of "
                f"{instructions} instructions within {max_cycles} cycles"
            )
        return self.engine.now

    # -------------------------------------------------------------- control

    def set_priority_app(self, app: int | None) -> None:
        """Give one app highest memory priority everywhere (MISE/ASM epochs)."""
        for p in self.partitions:
            p.set_priority(app)

    def activate_app(self, app: int) -> None:
        """Open the dispatch gate for ``app`` (open-system arrival)."""
        self.app_active[app] = True

    def deactivate_app(
        self, app: int, on_idle: Callable[[SM], None] | None = None
    ) -> None:
        """Close the dispatch gate for ``app`` and drain its SMs to idle.

        Graceful departure: resident thread blocks retire normally, then
        each SM ends up unowned (``sm.app is None``).  ``on_idle`` fires per
        SM at the exact drain-completion cycle so callers can time-stamp the
        application's last resident cycle.
        """
        self.app_active[app] = False

        def on_drained(sm: SM) -> None:
            self._account_sm_time(self.engine.now)
            if self._trace is not None:
                self._trace.instant(
                    "sm.detach", self.engine.now, PID_SIM, sm.sm_id,
                    {"sm": sm.sm_id, "from": app},
                )
            if on_idle is not None:
                on_idle(sm)

        for sm in self.sms_of(app):
            if not sm.draining:
                self._account_sm_time(self.engine.now)
                sm.start_draining(on_drained)

    def grant_sms(self, app: int, count: int) -> int:
        """Assign up to ``count`` idle SMs to ``app``; returns how many."""
        granted = 0
        for sm in self.sms:
            if granted >= count:
                break
            if sm.app is None and not sm.draining and not sm.blocks:
                self._account_sm_time(self.engine.now)
                sm.assign_app(app)
                self._fill_sm(sm)
                granted += 1
        return granted

    def reclaim_idle_sms(self) -> None:
        """Unassign SMs still owned by inactive apps once they sit empty.

        A departed app's SMs normally go idle via the drain callback, but an
        SM whose blocks all retired *before* ``start_draining`` was called
        (or that never drained because draining was already in flight for a
        migration) can keep stale ownership.  Sweeping on interval
        boundaries keeps the idle pool accurate for admission.
        """
        for sm in self.sms:
            app = sm.app
            if (
                app is not None
                and not self.app_active[app]
                and not sm.draining
                and not sm.blocks
            ):
                self._account_sm_time(self.engine.now)
                sm.assign_app(None)

    def migrate_sms(
        self,
        from_app: int,
        to_app: int,
        count: int,
        on_each: Callable[[SM], None] | None = None,
    ) -> None:
        """Move ``count`` SMs from one app to another via draining.

        Non-blocking: donor SMs stop accepting blocks now and switch owners
        when their resident blocks retire, as in the paper's SM Draining.
        ``on_each`` fires per SM right after the ownership switch (open-
        system admission time-stamps).
        """
        donors = [sm for sm in self.sms_of(from_app) if not sm.draining]
        count = min(count, len(donors) - 1)  # never drain an app's last SM
        if count <= 0:
            return
        now_fill = self._fill_sm

        def on_drained(sm: SM) -> None:
            self._account_sm_time(self.engine.now)
            if self._trace is not None:
                self._trace.instant(
                    "sm.drained", self.engine.now, PID_SIM, sm.sm_id,
                    {"sm": sm.sm_id, "to": to_app},
                )
            sm.assign_app(to_app)
            now_fill(sm)
            if on_each is not None:
                on_each(sm)

        for sm in donors[:count]:
            self._account_sm_time(self.engine.now)
            if self._trace is not None:
                self._trace.instant(
                    "sm.migrate", self.engine.now, PID_SIM, sm.sm_id,
                    {"sm": sm.sm_id, "from": from_app, "to": to_app},
                )
            sm.start_draining(on_drained)

    # ------------------------------------------------------------- readouts

    def ipc(self, app: int) -> float:
        """Aggregate instructions per cycle for ``app`` so far."""
        now = self.engine.now
        return self.progress[app].instructions / now if now else 0.0

    def bandwidth_utilization(self, app: int | None = None) -> float:
        """Fraction of total data-bus capacity used (by one app or all)."""
        now = self.engine.now
        if now == 0:
            return 0.0
        capacity = now * self.config.n_partitions
        if app is None:
            used = sum(a.data_bus_time for a in self.mem_stats.apps)
        else:
            used = self.mem_stats.apps[app].data_bus_time
        return used / capacity

    def bandwidth_breakdown(self) -> dict[str, float]:
        """Fig. 2b decomposition: per-app data, wasted, and idle fractions."""
        now = self.engine.now
        capacity = now * self.config.n_partitions
        if capacity == 0:
            return {"idle": 1.0, "wasted": 0.0}
        busy = sum(p.busy_time for p in self.partitions)
        out: dict[str, float] = {}
        data_total = 0
        for app in range(self.n_apps):
            d = self.mem_stats.apps[app].data_bus_time
            out[f"app{app}"] = d / capacity
            data_total += d
        out["wasted"] = max(0.0, (busy - data_total) / capacity)
        out["idle"] = max(0.0, (capacity - busy) / capacity)
        return out
