"""Per-application hardware counters (paper Table 1) and time integrators.

Everything the DASE/MISE/ASM estimators read lives here: served-request
counts, per-request residence time, extra row-buffer misses, bank-level
parallelism integrals, SM stall fractions.  Counters accumulate continuously;
the GPU snapshots and differences them at interval boundaries, mirroring the
paper's "reset all counters at the beginning of each estimation interval".
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class AppMemCounters:
    """Monotonic per-application memory-system counters.

    Slotted: the memory path bumps several of these per DRAM request, and
    slot access is measurably cheaper than instance-dict access.
    """

    requests_served: int = 0  # Request_i: DRAM requests completed
    time_request: int = 0  # Σ (completion − schedule) over served requests
    erb_miss: int = 0  # ERBMiss_i: detected extra row-buffer misses
    row_hits: int = 0
    row_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    data_bus_time: int = 0  # core cycles of data-bus occupancy
    # Time integrals for BLP accounting (advanced by MemoryStats.advance):
    demanded_bank_integral: float = 0.0  # ∫ #banks executing-or-queued-for i
    executing_bank_integral: float = 0.0  # ∫ #banks executing i
    outstanding_time: float = 0.0  # ∫ [i has ≥1 outstanding DRAM request]

    def snapshot(self) -> "AppMemCounters":
        return AppMemCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta(self, earlier: "AppMemCounters") -> "AppMemCounters":
        """Counter increments since ``earlier`` (an older snapshot)."""
        return AppMemCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


class MemoryStats:
    """Shared time-integrator across all memory partitions.

    Partitions mutate instantaneous occupancy numbers (outstanding requests,
    executing banks, demanded banks) through this hub; :meth:`advance` folds
    elapsed time into the integrals *before* each mutation, which makes the
    integrals exact piecewise-constant integrals regardless of event order.
    """

    def __init__(self, n_apps: int) -> None:
        self.n_apps = n_apps
        self.apps = [AppMemCounters() for _ in range(n_apps)]
        self._last_t = 0
        # Instantaneous state per app:
        self._outstanding = [0] * n_apps  # DRAM requests in flight (all parts)
        self._executing = [0] * n_apps  # banks currently servicing app
        self._demanded = [0] * n_apps  # (partition, bank) pairs demanded
        # Partition busy-time accounting (for the Fig. 2b decomposition):
        self._active_banks_total = 0
        self.busy_time = 0.0  # ∫ [any bank active anywhere]

    def advance(self, now: int) -> None:
        dt = now - self._last_t
        if dt <= 0:
            return
        self._last_t = now
        outstanding = self._outstanding
        demanded = self._demanded
        executing = self._executing
        for i, app in enumerate(self.apps):
            if outstanding[i] > 0:
                app.outstanding_time += dt
            app.demanded_bank_integral += dt * demanded[i]
            app.executing_bank_integral += dt * executing[i]
        if self._active_banks_total > 0:
            self.busy_time += dt

    # --- hot-path transitions (advance + mutate, one call per DRAM event) --
    #
    # The memory partition funnels its three per-request state changes
    # through these methods so a backend can swap the integration strategy
    # (repro.sim.backends.vectorized batches them into a log drained per
    # flush).  The reference implementations below fold time eagerly, in
    # exactly the order the previously-inlined call sites used, so the
    # refactor is bit-identical.

    def on_enqueue(self, now: int, app: int, newly_demanded: bool) -> None:
        """A request entered the DRAM path (L2 miss) at ``now``."""
        if self._last_t < now:
            self.advance(now)
        self._outstanding[app] += 1
        if newly_demanded:
            self._demanded[app] += 1

    def on_bank_start(self, now: int, app: int) -> None:
        """A bank began servicing one of ``app``'s requests at ``now``."""
        if self._last_t < now:
            self.advance(now)
        self._executing[app] += 1
        self._active_banks_total += 1

    def on_complete(self, now: int, app: int, undemanded: bool) -> None:
        """A request finished (data left the bus) at ``now``."""
        if self._last_t < now:
            self.advance(now)
        self._executing[app] -= 1
        self._active_banks_total -= 1
        self._outstanding[app] -= 1
        if undemanded:
            self._demanded[app] -= 1
        self.apps[app].requests_served += 1

    # --- mutations (caller must advance(now) first) -----------------------

    def request_enqueued(self, app: int) -> None:
        self._outstanding[app] += 1

    def request_completed(self, app: int) -> None:
        self._outstanding[app] -= 1

    def bank_started(self, app: int) -> None:
        self._executing[app] += 1
        self._active_banks_total += 1

    def bank_finished(self, app: int) -> None:
        self._executing[app] -= 1
        self._active_banks_total -= 1

    def demanded_changed(self, app: int, delta: int) -> None:
        self._demanded[app] += delta

    # --- reads -------------------------------------------------------------

    def outstanding(self, app: int) -> int:
        return self._outstanding[app]


@dataclass(slots=True)
class AppSMCounters:
    """Per-application SM-side counters (α and instruction throughput)."""

    instructions: int = 0  # issued instructions (compute + memory)
    busy_time: float = 0.0  # Σ over SMs of cycles with ≥1 ready warp
    stall_time: float = 0.0  # Σ over SMs of cycles all-resident-warps blocked
    sm_time: float = 0.0  # Σ over SMs of wall-clock cycles assigned
    l1_hits: int = 0  # private L1 data-cache hits
    l1_misses: int = 0

    def snapshot(self) -> "AppSMCounters":
        return AppSMCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def delta(self, earlier: "AppSMCounters") -> "AppSMCounters":
        return AppSMCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def alpha(self) -> float:
        """Fraction of SM time stalled waiting on memory (paper's α)."""
        denom = self.busy_time + self.stall_time
        return self.stall_time / denom if denom > 0 else 0.0


@dataclass
class IntervalRecord:
    """Everything an estimator sees about one application in one interval."""

    app: int
    start: int
    end: int
    mem: AppMemCounters
    sm: AppSMCounters
    ellc_miss: float  # scaled contention-miss estimate from the ATDs
    sm_count: int  # SMs assigned during the interval
    sm_total: int
    tb_running: int  # thread blocks resident (TB_shared of Eq. 24)
    tb_unfinished: int  # thread blocks not yet finished (TB_sum of Eq. 24)
    extra: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end - self.start
