"""Crossbar interconnect (paper Table 2: one crossbar per direction).

Each direction is modelled as one output port per destination: a packet
occupies its destination port for ``packet_cycles`` (serialization) and
then takes ``latency`` cycles of wire time.  Ports are work-conserving
FIFOs, so bursts to one memory partition queue up even when the rest of
the crossbar is idle — the "Local-RR" arbitration of the baseline reduces
to FIFO order at the per-destination granularity we model.

At the baseline's traffic levels the crossbar is far from saturation
(~20% port utilization when DRAM is saturated), so it adds realistic
burst-queueing without becoming the bottleneck — matching the paper's
focus on DRAM-level interference.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import _NO_ARG, Engine


class CrossbarPort:
    """One output port: FIFO serialization + wire latency."""

    __slots__ = ("engine", "latency", "packet_cycles", "free_at", "packets",
                 "busy_time")

    def __init__(self, engine: Engine, latency: int, packet_cycles: int) -> None:
        self.engine = engine
        self.latency = latency
        self.packet_cycles = packet_cycles
        self.free_at = 0
        self.packets = 0
        self.busy_time = 0

    def send(self, deliver: Callable, arg: Any = _NO_ARG) -> int:
        """Enqueue one packet; ``deliver(arg)`` (or ``deliver()``) fires on
        arrival.  Returns the delivery cycle.

        Hot-path callers pass a bound method plus payload so no closure is
        allocated per packet (see :mod:`repro.sim.engine`).
        """
        now = self.engine.now
        start = now if now > self.free_at else self.free_at
        self.free_at = start + self.packet_cycles
        self.packets += 1
        self.busy_time += self.packet_cycles
        arrival = self.free_at + self.latency
        self.engine.schedule(arrival - now, deliver, arg)
        return arrival


class Crossbar:
    """One direction of the interconnect: ``n_ports`` output ports.

    Port state lives in parallel plain lists rather than per-port objects:
    ``send`` runs once per packet on the memory hot path, and indexed list
    reads/writes are measurably cheaper than attribute access on a port
    object.  :class:`CrossbarPort` remains for standalone use.
    """

    __slots__ = (
        "engine", "_schedule", "latency", "packet_cycles",
        "_free_at", "_packets", "_busy_time", "_trace", "_trace_pid",
    )

    def __init__(
        self, engine: Engine, n_ports: int, latency: int, packet_cycles: int,
        tracer: Any = None, trace_pid: int = 0,
    ) -> None:
        if n_ports < 1:
            raise ValueError("need at least one port")
        self.engine = engine
        self._schedule = engine.schedule  # cached bound method (hot path)
        self.latency = latency
        self.packet_cycles = packet_cycles
        self._free_at = [0] * n_ports
        self._packets = [0] * n_ports
        self._busy_time = [0] * n_ports
        # Observability (repro.obs.EventTracer or None); ``trace_pid`` names
        # this crossbar's direction in the exported trace.  Disabled path is
        # one attribute check in :meth:`send`.
        self._trace = tracer
        self._trace_pid = trace_pid

    def send(self, port: int, deliver: Callable, arg: Any = _NO_ARG) -> int:
        """Enqueue one packet on ``port``; same contract as
        :meth:`CrossbarPort.send`."""
        now = self.engine.now
        packet_cycles = self.packet_cycles
        free_list = self._free_at
        free_at = free_list[port]
        start = now if now > free_at else free_at
        free_list[port] = free_at = start + packet_cycles
        self._packets[port] += 1
        self._busy_time[port] += packet_cycles
        arrival = free_at + self.latency
        if self._trace is not None:
            # The slice covers port occupancy (serialization), not wire time.
            self._trace.complete(
                "icnt.pkt", start, packet_cycles, self._trace_pid, port
            )
        self._schedule(arrival - now, deliver, arg)
        return arrival

    def utilization(self, now: int) -> float:
        """Mean fraction of port-time spent transmitting."""
        if now <= 0:
            return 0.0
        return sum(min(b, now) for b in self._busy_time) / (
            now * len(self._busy_time)
        )

    @property
    def total_packets(self) -> int:
        return sum(self._packets)
