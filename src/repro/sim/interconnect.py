"""Crossbar interconnect (paper Table 2: one crossbar per direction).

Each direction is modelled as one output port per destination: a packet
occupies its destination port for ``packet_cycles`` (serialization) and
then takes ``latency`` cycles of wire time.  Ports are work-conserving
FIFOs, so bursts to one memory partition queue up even when the rest of
the crossbar is idle — the "Local-RR" arbitration of the baseline reduces
to FIFO order at the per-destination granularity we model.

At the baseline's traffic levels the crossbar is far from saturation
(~20% port utilization when DRAM is saturated), so it adds realistic
burst-queueing without becoming the bottleneck — matching the paper's
focus on DRAM-level interference.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine


class CrossbarPort:
    """One output port: FIFO serialization + wire latency."""

    __slots__ = ("engine", "latency", "packet_cycles", "free_at", "packets",
                 "busy_time")

    def __init__(self, engine: Engine, latency: int, packet_cycles: int) -> None:
        self.engine = engine
        self.latency = latency
        self.packet_cycles = packet_cycles
        self.free_at = 0
        self.packets = 0
        self.busy_time = 0

    def send(self, deliver: Callable[[], None]) -> int:
        """Enqueue one packet; ``deliver`` fires on arrival.  Returns the
        delivery cycle."""
        now = self.engine.now
        start = max(now, self.free_at)
        self.free_at = start + self.packet_cycles
        self.packets += 1
        self.busy_time += self.packet_cycles
        arrival = self.free_at + self.latency
        self.engine.at(arrival, deliver)
        return arrival


class Crossbar:
    """One direction of the interconnect: ``n_ports`` output ports."""

    def __init__(
        self, engine: Engine, n_ports: int, latency: int, packet_cycles: int
    ) -> None:
        if n_ports < 1:
            raise ValueError("need at least one port")
        self.ports = [
            CrossbarPort(engine, latency, packet_cycles) for _ in range(n_ports)
        ]

    def send(self, port: int, deliver: Callable[[], None]) -> int:
        return self.ports[port].send(deliver)

    def utilization(self, now: int) -> float:
        """Mean fraction of port-time spent transmitting."""
        if now <= 0:
            return 0.0
        return sum(min(p.busy_time, now) for p in self.ports) / (
            now * len(self.ports)
        )

    @property
    def total_packets(self) -> int:
        return sum(p.packets for p in self.ports)
