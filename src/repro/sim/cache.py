"""Shared L2 cache slice (one per memory partition).

Set-associative, LRU, physically shared by all concurrent applications —
the contention this creates (an application's lines evicted by another's)
is the *shared cache interference* term of the DASE model (Eq. 11).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config import CacheConfig


@dataclass(slots=True)
class CacheStats:
    """Per-application access counters for one cache slice."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """A classic set-associative LRU cache over (set, tag) coordinates.

    Each set is an :class:`OrderedDict` from tag to owning application index;
    ordering encodes recency (last item = MRU).  Storing the owner lets the
    eviction path report *who displaced whom*, which tests use to validate
    contention accounting.
    """

    __slots__ = ("config", "_sets", "_assoc", "stats")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._assoc = config.assoc
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.stats: dict[int, CacheStats] = {}

    def _stats_for(self, app: int) -> CacheStats:
        st = self.stats.get(app)
        if st is None:
            st = self.stats[app] = CacheStats()
        return st

    def access(self, cache_set: int, tag: int, app: int) -> bool:
        """Look up (and on miss, fill) a line.  Returns True on hit.

        The fill happens immediately on miss — a simplification of MSHR
        behaviour that keeps a single access path; duplicate in-flight misses
        to the same line are rare for our generators and only shift absolute
        bandwidth slightly.
        """
        s = self._sets[cache_set]
        st = self.stats.get(app)
        if st is None:
            st = self.stats[app] = CacheStats()
        if tag in s:
            s.move_to_end(tag)
            s[tag] = app
            st.hits += 1
            return True
        st.misses += 1
        if len(s) >= self._assoc:
            s.popitem(last=False)  # evict LRU
        s[tag] = app
        return False

    def contains(self, cache_set: int, tag: int) -> bool:
        """Non-destructive presence probe (no LRU update, no counters)."""
        return tag in self._sets[cache_set]

    def occupancy_by_app(self) -> dict[int, int]:
        """Lines currently resident per application (diagnostics)."""
        out: dict[int, int] = {}
        for s in self._sets:
            for app in s.values():
                out[app] = out.get(app, 0) + 1
        return out

    def flush(self) -> None:
        """Invalidate every line (used between independent runs)."""
        for s in self._sets:
            s.clear()

    def reset_stats(self) -> None:
        self.stats = {}
