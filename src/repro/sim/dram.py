"""Memory partition: L2 slice + FR-FCFS DRAM controller.

Models every interference mechanism the DASE model charges for:

* **bank conflicts** — one request occupies a bank from scheduling until its
  data leaves the bus; requests to a busy bank wait (Eq. 9's source);
* **row-buffer interference** — each bank has an open row; a co-runner
  closing it costs tRP + tRCD on the victim's next access (Eq. 10); the
  per-(app, bank) last-row registers of Table 1 detect exactly this;
* **shared-cache contention** — the L2 slice is shared; per-app ATDs flag
  contention misses (Eq. 11);
* **data-bus serialization** — one shared data bus per partition; transfers
  are serialized even when banks operate in parallel;
* **FR-FCFS** — row hits first, then oldest-first, per bank, with an
  optional highest-priority application hook used by the MISE/ASM sampling
  epochs.

Scheduling is event-driven with *per-bank* queues: a request is considered
the moment its bank frees (or the moment it arrives at a free bank), so the
controller never scans a global queue.  Cross-bank arbitration conflicts on
the command bus are not modelled (consistent with folding all command timing
into the per-request service latency).
"""

from __future__ import annotations

from typing import Callable

from repro.config import GPUConfig
from repro.sim.address import DecodedAddress
from repro.sim.atd import AuxTagDirectory
from repro.sim.cache import SetAssocCache
from repro.sim.engine import Engine
from repro.sim.stats import MemoryStats


class DramRequest:
    """One outstanding DRAM read on behalf of an application."""

    __slots__ = ("app", "addr", "arrival", "callback", "seq")

    def __init__(
        self,
        app: int,
        addr: DecodedAddress,
        arrival: int,
        callback: Callable[[int], None],
        seq: int,
    ) -> None:
        self.app = app
        self.addr = addr
        self.arrival = arrival
        self.callback = callback
        self.seq = seq


class MemoryPartition:
    """One of the GPU's memory partitions (L2 slice + DRAM channel)."""

    def __init__(
        self,
        engine: Engine,
        config: GPUConfig,
        partition_id: int,
        n_apps: int,
        stats: MemoryStats,
    ) -> None:
        self.engine = engine
        self.config = config
        self.pid = partition_id
        self.n_apps = n_apps
        self.stats = stats

        self.l2 = SetAssocCache(config.l2)
        self.atds = [
            AuxTagDirectory(config.l2.n_sets, config.l2.assoc, config.atd_sample_sets)
            for _ in range(n_apps)
        ]

        nb = config.n_banks
        self.bank_open_row: list[int] = [-1] * nb
        self.bank_busy: list[bool] = [False] * nb
        self.bank_queues: list[list[DramRequest]] = [[] for _ in range(nb)]
        self.bus_free_at: int = 0
        # Last-row registers, per (app, bank) — Table 1's detection hardware.
        self.last_row = [[-1] * nb for _ in range(n_apps)]
        # Distinct-bank demand tracking for the BLP integrals.
        self._bank_demand = [[0] * nb for _ in range(n_apps)]
        # Queued-request counts per (bank, app) for O(1) priority checks.
        self._queued_per_app = [[0] * n_apps for _ in range(nb)]
        # Highest-priority application (None = plain FR-FCFS).
        self.priority_app: int | None = None
        # Application-aware round-robin pointer (mc_scheduler == "rr").
        self._rr_next = 0

        self._seq = 0
        # Controller issue-slot management (mc_issue_gap).
        self.next_issue_at = 0
        self._pending_banks: set[int] = set()
        self._issue_event_at = -1
        # Partition busy-time integration (any bank active) for Fig. 2b.
        self._busy_active = 0
        self._busy_last = 0
        self.busy_time = 0
        # Pre-convert timings to core cycles.
        d = config.dram
        self._t_hit = config.dram_cycles_to_core(d.tCL)
        self._t_miss = config.dram_cycles_to_core(d.tCL + d.tRP + d.tRCD)
        self._t_burst = config.dram_cycles_to_core(d.tBurst)
        self._t_faw = config.dram_cycles_to_core(d.tFAW)
        # Timestamps of the last four row activations (tFAW enforcement).
        self._activates: list[int] = []

    # ------------------------------------------------------------------ L2

    def access(
        self, addr: DecodedAddress, app: int, callback: Callable[[int], None]
    ) -> None:
        """Handle one memory access arriving at this partition.

        ``callback(completion_cycle)`` fires when the data is ready to leave
        the partition (the caller adds return-network latency).
        """
        now = self.engine.now
        mem = self.stats.apps[app]
        hit = self.l2.access(addr.cache_set, addr.tag, app)
        self.atds[app].observe(addr.cache_set, addr.tag, hit)
        if hit:
            mem.l2_hits += 1
            done = now + self.config.l2_latency
            self.engine.at(done, lambda: callback(done))
            return
        mem.l2_misses += 1
        self._seq += 1
        req = DramRequest(app, addr, now + self.config.l2_latency, callback, self._seq)
        self.stats.advance(now)
        self.stats.request_enqueued(app)
        self._demand_bank(app, addr.bank, +1)
        self.engine.at(req.arrival, lambda: self._arrive(req))

    # ----------------------------------------------------------------- DRAM

    def _demand_bank(self, app: int, bank: int, delta: int) -> None:
        d = self._bank_demand[app]
        before = d[bank] > 0
        d[bank] += delta
        after = d[bank] > 0
        if after and not before:
            self.stats.demanded_changed(app, +1)
        elif before and not after:
            self.stats.demanded_changed(app, -1)

    def _arrive(self, req: DramRequest) -> None:
        bank = req.addr.bank
        self.bank_queues[bank].append(req)
        self._queued_per_app[bank][req.app] += 1
        if not self.bank_busy[bank]:
            self._pending_banks.add(bank)
            self._try_issue()

    def _try_issue(self) -> None:
        """Issue requests to free banks, one per ``mc_issue_gap`` cycles."""
        now = self.engine.now
        while self._pending_banks:
            if now < self.next_issue_at:
                t = self.next_issue_at
                if self._issue_event_at != t:
                    # Supersedes any stale scheduled wake-up: the token makes
                    # old events no-ops instead of letting them re-arm.
                    self._issue_event_at = t
                    self.engine.at(t, lambda: self._issue_event(t))
                return
            bank = self._choose_bank()
            if bank is None:
                return
            self._pending_banks.discard(bank)
            self.next_issue_at = now + self.config.mc_issue_gap
            self._dispatch_bank(bank)

    def _issue_event(self, token: int) -> None:
        if token != self._issue_event_at:
            return  # superseded wake-up
        self._issue_event_at = -1
        self._try_issue()

    def _choose_bank(self) -> int | None:
        """Among banks wanting service, pick the one holding the best request
        (priority app first, then the oldest request across banks).

        Bank queues are FIFO by arrival, so ``queue[0].seq`` is each bank's
        oldest request; per-(bank, app) counters make the priority check O(1).
        """
        best_bank = None
        best_key: tuple[int, int] | None = None
        prio = self.priority_app
        for bank in self._pending_banks:
            queue = self.bank_queues[bank]
            if self.bank_busy[bank] or not queue:
                continue
            has_prio = (
                0 if prio is not None and self._queued_per_app[bank][prio] else 1
            )
            key = (has_prio, queue[0].seq)
            if best_key is None or key < best_key:
                best_key, best_bank = key, bank
        return best_bank

    def _pick(self, bank: int) -> DramRequest:
        """Select within one bank under the configured scheduler.

        frfcfs: priority app, then row hit, then oldest.
        rr:     priority app, then the round-robin turn-holder's requests,
                then row hit, then oldest (Jog et al.'s application-aware
                scheduling, which trades row locality for inter-application
                fairness).
        """
        queue = self.bank_queues[bank]
        open_row = self.bank_open_row[bank]
        prio = self.priority_app
        rr = self.config.mc_scheduler == "rr"
        best_i = 0
        best_key = None
        for i, r in enumerate(queue):
            if rr:
                key = (
                    0 if (prio is not None and r.app == prio) else 1,
                    0 if r.app == self._rr_next else 1,
                    0 if r.addr.row == open_row else 1,
                    r.seq,
                )
            else:
                key = (
                    0 if (prio is not None and r.app == prio) else 1,
                    0 if r.addr.row == open_row else 1,
                    r.seq,
                )
            if best_key is None or key < best_key:
                best_key, best_i = key, i
        picked = queue.pop(best_i)
        if rr:
            self._rr_next = (picked.app + 1) % self.n_apps
        return picked

    def _dispatch_bank(self, bank: int) -> None:
        """Start servicing the best queued request for a free bank."""
        queue = self.bank_queues[bank]
        if not queue or self.bank_busy[bank]:
            return
        req = self._pick(bank)
        self._queued_per_app[bank][req.app] -= 1
        now = self.engine.now
        app, addr = req.app, req.addr
        mem = self.stats.apps[app]
        row_hit = self.bank_open_row[bank] == addr.row
        activate_at = now
        if row_hit:
            mem.row_hits += 1
            latency = self._t_hit
        else:
            mem.row_misses += 1
            latency = self._t_miss
            # tFAW: the activation may have to wait for the four-activate
            # window to roll past.
            if len(self._activates) >= 4:
                activate_at = max(now, self._activates[-4] + self._t_faw)
            self._activates.append(activate_at)
            if len(self._activates) > 4:
                self._activates.pop(0)
            # Row-buffer interference detection (paper §4.2.1): the row we
            # must re-open is the one this app opened last in this bank —
            # a co-runner closed it in between.
            if self.last_row[app][bank] == addr.row:
                mem.erb_miss += 1
        self.last_row[app][bank] = addr.row

        data_ready = activate_at + latency
        bus_start = max(data_ready, self.bus_free_at)
        completion = bus_start + self._t_burst
        self.bus_free_at = completion
        self.bank_open_row[bank] = addr.row
        self.bank_busy[bank] = True

        mem.time_request += completion - now
        mem.data_bus_time += self._t_burst

        self.stats.advance(now)
        self.stats.bank_started(app)
        self._busy_advance(now)
        self._busy_active += 1
        self.engine.at(completion, lambda: self._complete(req, completion))

    def _busy_advance(self, now: int) -> None:
        if self._busy_active > 0:
            self.busy_time += now - self._busy_last
        self._busy_last = now

    def _complete(self, req: DramRequest, completion: int) -> None:
        app = req.app
        bank = req.addr.bank
        self.stats.advance(completion)
        self.stats.bank_finished(app)
        self._busy_advance(completion)
        self._busy_active -= 1
        self.stats.request_completed(app)
        self._demand_bank(app, bank, -1)
        self.stats.apps[app].requests_served += 1
        self.bank_busy[bank] = False
        req.callback(completion)
        if self.bank_queues[bank]:
            self._pending_banks.add(bank)
            self._try_issue()

    # ------------------------------------------------------------- controls

    def set_priority(self, app: int | None) -> None:
        """Give one application's requests highest priority (MISE/ASM)."""
        self.priority_app = app

    def queue_length(self) -> int:
        return sum(len(q) for q in self.bank_queues)
