"""Memory partition: L2 slice + FR-FCFS DRAM controller.

Models every interference mechanism the DASE model charges for:

* **bank conflicts** — one request occupies a bank from scheduling until its
  data leaves the bus; requests to a busy bank wait (Eq. 9's source);
* **row-buffer interference** — each bank has an open row; a co-runner
  closing it costs tRP + tRCD on the victim's next access (Eq. 10); the
  per-(app, bank) last-row registers of Table 1 detect exactly this;
* **shared-cache contention** — the L2 slice is shared; per-app ATDs flag
  contention misses (Eq. 11);
* **data-bus serialization** — one shared data bus per partition; transfers
  are serialized even when banks operate in parallel;
* **FR-FCFS** — row hits first, then oldest-first, per bank, with an
  optional highest-priority application hook used by the MISE/ASM sampling
  epochs.

Scheduling is event-driven with *per-bank* queues: a request is considered
the moment its bank frees (or the moment it arrives at a free bank), so the
controller never scans a global queue.  Cross-bank arbitration conflicts on
the command bus are not modelled (consistent with folding all command timing
into the per-request service latency).
"""

from __future__ import annotations

from typing import Callable

from repro.config import GPUConfig
from repro.obs.tracer import TID_BANK_BASE, TID_PART_BASE
from repro.sim.address import DecodedAddress
from repro.sim.atd import AuxTagDirectory
from repro.sim.cache import CacheStats, SetAssocCache
from repro.sim.engine import Engine
from repro.sim.stats import MemoryStats


class DramRequest:
    """One outstanding DRAM read on behalf of an application."""

    __slots__ = ("app", "addr", "arrival", "callback", "seq")

    def __init__(
        self,
        app: int,
        addr: DecodedAddress,
        arrival: int,
        callback: Callable[[int], None],
        seq: int,
    ) -> None:
        self.app = app
        self.addr = addr
        self.arrival = arrival
        self.callback = callback
        self.seq = seq


class MemoryPartition:
    """One of the GPU's memory partitions (L2 slice + DRAM channel)."""

    def __init__(
        self,
        engine: Engine,
        config: GPUConfig,
        partition_id: int,
        n_apps: int,
        stats: MemoryStats,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.config = config
        self.pid = partition_id
        self.n_apps = n_apps
        self.stats = stats
        # Observability (repro.obs.EventTracer or None): the disabled path
        # is one attribute check per instrumented site.  Thread-id tracks
        # are precomputed so the enabled path does no arithmetic chains.
        self._trace = tracer
        self._part_tid = TID_PART_BASE + partition_id
        self._bank_tid_base = TID_BANK_BASE + partition_id * config.n_banks

        self.l2 = SetAssocCache(config.l2)
        self.atds = [
            AuxTagDirectory(config.l2.n_sets, config.l2.assoc, config.atd_sample_sets)
            for _ in range(n_apps)
        ]

        nb = config.n_banks
        self.bank_open_row: list[int] = [-1] * nb
        self.bank_busy: list[bool] = [False] * nb
        self.bank_queues: list[list[DramRequest]] = [[] for _ in range(nb)]
        self.bus_free_at: int = 0
        # Last-row registers, per (app, bank) — Table 1's detection hardware.
        self.last_row = [[-1] * nb for _ in range(n_apps)]
        # Distinct-bank demand tracking for the BLP integrals.
        self._bank_demand = [[0] * nb for _ in range(n_apps)]
        # Queued-request counts per (bank, app) for O(1) priority checks.
        self._queued_per_app = [[0] * n_apps for _ in range(nb)]
        # Highest-priority application (None = plain FR-FCFS).
        self.priority_app: int | None = None
        # Application-aware round-robin pointer (mc_scheduler == "rr").
        self._rr_next = 0

        self._seq = 0
        self._queued_total = 0  # running Σ len(bank_queues): O(1) telemetry
        self._req_pool: list[DramRequest] = []  # DramRequest free-list
        # Controller issue-slot management (mc_issue_gap).
        self.next_issue_at = 0
        self._pending_banks: set[int] = set()
        self._issue_event_at = -1
        # Partition busy-time integration (any bank active) for Fig. 2b.
        self._busy_active = 0
        self._busy_last = 0
        self.busy_time = 0
        # Pre-resolve hot-path config scalars (attribute-chase removal).
        self._l2_latency = config.l2_latency
        self._issue_gap = config.mc_issue_gap
        self._rr_mode = config.mc_scheduler == "rr"
        # Pre-convert timings to core cycles.
        d = config.dram
        self._t_hit = config.dram_cycles_to_core(d.tCL)
        self._t_miss = config.dram_cycles_to_core(d.tCL + d.tRP + d.tRCD)
        self._t_burst = config.dram_cycles_to_core(d.tBurst)
        self._t_faw = config.dram_cycles_to_core(d.tFAW)
        # Timestamps of the last four row activations (tFAW enforcement).
        self._activates: list[int] = []
        # Cached bound methods: attribute lookup on ``self`` allocates a
        # fresh bound-method object per call; these run ~100k times/run.
        self._schedule = engine.schedule
        self._arrive_cb = self._arrive
        self._complete_cb = self._complete
        self._issue_cb = self._issue_event

    # ------------------------------------------------------------------ L2

    def access(
        self, addr: DecodedAddress, app: int, callback: Callable[[int], None]
    ) -> None:
        """Handle one memory access arriving at this partition.

        ``callback(completion_cycle)`` fires when the data is ready to leave
        the partition (the caller adds return-network latency).
        """
        now = self.engine.now
        stats = self.stats
        mem = stats.apps[app]
        cache_set = addr.cache_set
        tag = addr.tag
        # Inlined SetAssocCache.access (L2 probe/fill): this is the hottest
        # memory-path function and the call layer is measurable.
        l2 = self.l2
        s = l2._sets[cache_set]
        cstats = l2.stats
        st = cstats.get(app)
        if st is None:
            st = cstats[app] = CacheStats()
        if tag in s:
            s.move_to_end(tag)
            s[tag] = app
            st.hits += 1
            hit = True
        else:
            st.misses += 1
            if len(s) >= l2._assoc:
                s.popitem(last=False)
            s[tag] = app
            hit = False
        atd = self.atds[app]
        if cache_set in atd._sampled:  # most sets are unsampled: skip call
            atd.observe(cache_set, tag, hit)
        if self._trace is not None:
            self._trace.instant(
                "l2.probe", now, app, self._part_tid, {"hit": 1 if hit else 0}
            )
        l2_latency = self._l2_latency
        if hit:
            mem.l2_hits += 1
            self._schedule(l2_latency, callback, now + l2_latency)
            return
        mem.l2_misses += 1
        self._seq += 1
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.app = app
            req.addr = addr
            req.arrival = now + l2_latency
            req.callback = callback
            req.seq = self._seq
        else:
            req = DramRequest(app, addr, now + l2_latency, callback, self._seq)
        bank = addr.bank  # _demand_bank(app, bank, +1), partition-local part
        d = self._bank_demand[app]
        v = d[bank]
        d[bank] = v + 1
        # advance + request_enqueued + demanded_changed, one backend-
        # overridable call (repro.sim.backends).
        stats.on_enqueue(now, app, v == 0)
        self._schedule(l2_latency, self._arrive_cb, req)

    # ----------------------------------------------------------------- DRAM

    def _demand_bank(self, app: int, bank: int, delta: int) -> None:
        d = self._bank_demand[app]
        before = d[bank] > 0
        d[bank] += delta
        after = d[bank] > 0
        if after and not before:
            self.stats.demanded_changed(app, +1)
        elif before and not after:
            self.stats.demanded_changed(app, -1)

    def _arrive(self, req: DramRequest) -> None:
        bank = req.addr.bank
        self.bank_queues[bank].append(req)
        self._queued_per_app[bank][req.app] += 1
        self._queued_total += 1
        if self._trace is not None:
            self._trace.instant(
                "dram.enqueue", self.engine.now, req.app, self._part_tid,
                {"bank": bank},
            )
        if not self.bank_busy[bank]:
            pending = self._pending_banks
            if not pending:
                # Fast path: the arbiter's pending set would hold only this
                # bank, so _try_issue's choose-discard round is a no-op.
                now = self.engine.now
                if now >= self.next_issue_at:
                    self.next_issue_at = now + self._issue_gap
                    self._dispatch_bank(bank)
                    return
            pending.add(bank)
            self._try_issue()

    def _try_issue(self) -> None:
        """Issue requests to free banks, one per ``mc_issue_gap`` cycles."""
        now = self.engine.now
        pending = self._pending_banks
        while pending:
            if now < self.next_issue_at:
                t = self.next_issue_at
                if self._issue_event_at != t:
                    # Supersedes any stale scheduled wake-up: the token makes
                    # old events no-ops instead of letting them re-arm.
                    self._issue_event_at = t
                    self._schedule(t - now, self._issue_cb, t)
                return
            bank = self._choose_bank()
            if bank is None:
                return
            pending.discard(bank)
            self.next_issue_at = now + self._issue_gap
            self._dispatch_bank(bank)

    def _issue_event(self, token: int) -> None:
        if token != self._issue_event_at:
            return  # superseded wake-up
        self._issue_event_at = -1
        self._try_issue()

    def _choose_bank(self) -> int | None:
        """Among banks wanting service, pick the one holding the best request
        (priority app first, then the oldest request across banks).

        Bank queues are FIFO by arrival, so ``queue[0].seq`` is each bank's
        oldest request; per-(bank, app) counters make the priority check O(1).
        """
        pending = self._pending_banks
        if len(pending) == 1:
            # Fast path: a single candidate needs no arbitration key.
            (bank,) = pending
            if self.bank_busy[bank] or not self.bank_queues[bank]:
                return None
            return bank
        busy = self.bank_busy
        queues = self.bank_queues
        prio = self.priority_app
        if prio is None:
            # Common case (plain FR-FCFS): oldest head request wins, no
            # priority bit — skip the tuple-key construction entirely.
            best_bank = None
            best_seq = 0
            for bank in pending:
                if busy[bank]:
                    continue
                queue = queues[bank]
                if not queue:
                    continue
                seq = queue[0].seq
                if best_bank is None or seq < best_seq:
                    best_seq, best_bank = seq, bank
            return best_bank
        best_bank = None
        best_key: tuple[int, int] | None = None
        queued_per_app = self._queued_per_app
        for bank in pending:
            queue = queues[bank]
            if busy[bank] or not queue:
                continue
            key = (0 if queued_per_app[bank][prio] else 1, queue[0].seq)
            if best_key is None or key < best_key:
                best_key, best_bank = key, bank
        return best_bank

    def _pick(self, bank: int) -> DramRequest:
        """Select within one bank under the configured scheduler.

        frfcfs: priority app, then row hit, then oldest.
        rr:     priority app, then the round-robin turn-holder's requests,
                then row hit, then oldest (Jog et al.'s application-aware
                scheduling, which trades row locality for inter-application
                fairness).
        """
        queue = self.bank_queues[bank]
        open_row = self.bank_open_row[bank]
        prio = self.priority_app
        if self._rr_mode:
            return self._pick_rr(bank, queue, open_row, prio)
        # FR-FCFS.  ``queue`` stays sorted by ``seq`` (appends are in seq
        # order; pops never reorder), so "oldest" is a positional scan and
        # the first row hit in queue order is the best row hit — the scan
        # can stop at the first match instead of keying every entry.
        if prio is not None and self._queued_per_app[bank][prio]:
            best_i = None
            for i, r in enumerate(queue):
                if r.app == prio:
                    if r.addr.row == open_row:
                        best_i = i
                        break
                    if best_i is None:
                        best_i = i  # oldest priority request so far
        else:
            # Streaming workloads hit the open row at the queue head almost
            # every time; check it before setting up the scan.
            if queue[0].addr.row == open_row:
                return queue.pop(0)
            best_i = 0
            for i, r in enumerate(queue):
                if r.addr.row == open_row:
                    best_i = i
                    break
        return queue.pop(best_i)

    def _pick_rr(
        self, bank: int, queue: list[DramRequest], open_row: int, prio: int | None
    ) -> DramRequest:
        best_i = 0
        best_key = None
        for i, r in enumerate(queue):
            key = (
                0 if (prio is not None and r.app == prio) else 1,
                0 if r.app == self._rr_next else 1,
                0 if r.addr.row == open_row else 1,
                r.seq,
            )
            if best_key is None or key < best_key:
                best_key, best_i = key, i
        picked = queue.pop(best_i)
        self._rr_next = (picked.app + 1) % self.n_apps
        return picked

    def _dispatch_bank(self, bank: int) -> None:
        """Start servicing the best queued request for a free bank."""
        queue = self.bank_queues[bank]
        if not queue or self.bank_busy[bank]:
            return
        req = self._pick(bank)
        app = req.app
        addr = req.addr
        row = addr.row
        self._queued_per_app[bank][app] -= 1
        self._queued_total -= 1
        now = self.engine.now
        stats = self.stats
        mem = stats.apps[app]
        last_row_app = self.last_row[app]
        activate_at = now
        if self.bank_open_row[bank] == row:
            mem.row_hits += 1
            latency = self._t_hit
            row_hit = True
        else:
            mem.row_misses += 1
            latency = self._t_miss
            row_hit = False
            # tFAW: the activation may have to wait for the four-activate
            # window to roll past.
            activates = self._activates
            if len(activates) >= 4:
                window_open = activates[-4] + self._t_faw
                if window_open > now:
                    activate_at = window_open
            activates.append(activate_at)
            if len(activates) > 4:
                activates.pop(0)
            # Row-buffer interference detection (paper §4.2.1): the row we
            # must re-open is the one this app opened last in this bank —
            # a co-runner closed it in between.
            if last_row_app[bank] == row:
                mem.erb_miss += 1
        last_row_app[bank] = row

        t_burst = self._t_burst
        data_ready = activate_at + latency
        bus_free = self.bus_free_at
        bus_start = data_ready if data_ready > bus_free else bus_free
        completion = bus_start + t_burst
        self.bus_free_at = completion
        self.bank_open_row[bank] = row
        self.bank_busy[bank] = True

        mem.time_request += completion - now
        mem.data_bus_time += t_burst

        # advance + bank_started, one backend-overridable call.
        stats.on_bank_start(now, app)
        if self._busy_active > 0:  # _busy_advance, inlined
            self.busy_time += now - self._busy_last
        self._busy_last = now
        self._busy_active += 1
        if self._trace is not None:
            self._trace.complete(
                "dram.service", now, completion - now, app,
                self._bank_tid_base + bank,
                {"row_hit": 1 if row_hit else 0, "part": self.pid,
                 "bank": bank},
            )
        self._schedule(completion - now, self._complete_cb, req)

    def _busy_advance(self, now: int) -> None:
        if self._busy_active > 0:
            self.busy_time += now - self._busy_last
        self._busy_last = now

    def _complete(self, req: DramRequest) -> None:
        completion = self.engine.now  # the event fires exactly at completion
        app = req.app
        bank = req.addr.bank
        stats = self.stats
        d = self._bank_demand[app]  # _demand_bank(app, bank, -1), local part
        v = d[bank]
        d[bank] = v - 1
        # advance + bank_finished + request_completed + demanded_changed +
        # requests_served, one backend-overridable call.
        stats.on_complete(completion, app, v == 1)
        if self._busy_active > 0:  # _busy_advance, inlined
            self.busy_time += completion - self._busy_last
        self._busy_last = completion
        self._busy_active -= 1
        self.bank_busy[bank] = False
        if self._trace is not None:
            self._trace.instant(
                "dram.reply", completion, app, self._part_tid, {"bank": bank}
            )
        req.callback(completion)
        self._req_pool.append(req)  # last use: recycle
        if self.bank_queues[bank]:
            pending = self._pending_banks
            if not pending and completion >= self.next_issue_at:
                # Fast path mirroring _arrive: sole candidate, slot open.
                self.next_issue_at = completion + self._issue_gap
                self._dispatch_bank(bank)
                return
            pending.add(bank)
            self._try_issue()

    # ------------------------------------------------------------- controls

    def set_priority(self, app: int | None) -> None:
        """Give one application's requests highest priority (MISE/ASM)."""
        self.priority_app = app

    def queue_length(self) -> int:
        """Waiting requests across all bank queues (O(1) running counter)."""
        return self._queued_total
