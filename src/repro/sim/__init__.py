"""Cycle-level GPU simulator substrate.

This subpackage replaces GPGPU-Sim in the reproduction: an event-driven,
deterministic simulator of the paper's baseline architecture — SMs with
processor-sharing warp issue, a crossbar interconnect, per-partition L2
slices, and FR-FCFS DRAM controllers with banked row buffers.
"""

from repro.sim.engine import Engine
from repro.sim.interconnect import Crossbar
from repro.sim.kernel import AccessPattern, KernelPhase, KernelSpec
from repro.sim.gpu import GPU, LaunchedKernel

__all__ = [
    "Engine",
    "GPU",
    "LaunchedKernel",
    "KernelSpec",
    "KernelPhase",
    "AccessPattern",
    "Crossbar",
]
