"""Synthetic GPGPU kernel descriptions and their address streams.

The paper drives GPGPU-Sim with 15 real CUDA kernels; we substitute
parameterized synthetic kernels (see DESIGN.md §2).  A :class:`KernelSpec`
captures exactly the characteristics the DASE model is sensitive to:

* **memory intensity** — mean compute instructions between memory
  instructions per warp (``compute_per_mem``);
* **locality** — row-buffer-friendly streaming vs random access, and cache
  reuse via a per-application hot working set (``reuse_fraction`` /
  ``working_set_lines``);
* **TLP** — warps per block and the total number of thread blocks
  (Eq. 24's TB_sum limit);
* **coalescing** — memory requests generated per memory instruction.

Each application owns a disjoint slice of the address space so concurrent
kernels never share data, only hardware.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class AccessPattern(enum.Enum):
    """Spatial behaviour of the non-reuse part of the address stream."""

    STREAM = "stream"  # sequential lines: high row locality, high BLP
    STRIDED = "strided"  # fixed stride in lines: moderate row locality
    RANDOM = "random"  # uniform over the working set: poor row locality


#: Address-space slice reserved per application, in cache lines (512 MB).
APP_SPACE_LINES = 1 << 22


@dataclass(frozen=True)
class KernelPhase:
    """One phase of a phase-shifting kernel (open-system nonstationarity).

    A phase covers ``insts`` instructions of every warp's budget and may
    override the compute/memory mix knobs for that span; ``None`` fields
    inherit the enclosing :class:`KernelSpec`.  Phase boundaries are
    *declared instruction boundaries*: a step (compute burst + memory
    instruction) never straddles them, so the per-warp instruction total is
    conserved exactly regardless of how the budget is split into phases
    (property-tested in ``tests/test_opensys.py``).
    """

    insts: int
    compute_per_mem: float | None = None
    store_fraction: float | None = None
    wide_fraction: float | None = None
    reuse_fraction: float | None = None
    pattern: AccessPattern | None = None

    def __post_init__(self) -> None:
        if self.insts < 1:
            raise ValueError("a phase covers at least one instruction")
        if self.compute_per_mem is not None and self.compute_per_mem < 0:
            raise ValueError("compute_per_mem must be non-negative")
        for name in ("store_fraction", "wide_fraction", "reuse_fraction"):
            v = getattr(self, name)
            if v is not None and not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one synthetic GPGPU application."""

    name: str
    compute_per_mem: float  # mean compute instructions per memory instruction
    pattern: AccessPattern = AccessPattern.STREAM
    warps_per_block: int = 6
    blocks_total: int = 10_000  # total thread blocks the grid launches
    insts_per_warp: int = 4_000  # instruction budget per warp
    accesses_per_mem_inst: int = 1  # >1 models uncoalesced accesses
    wide_fraction: float = 0.0  # fraction of accesses touching TWO
    # consecutive lines (one 256 B granule: same partition, same DRAM row,
    # in flight together) — this is where coalesced kernels get their
    # row-buffer locality, so it controls the saturated DRAM efficiency
    store_fraction: float = 0.0  # fraction of memory instructions that are
    # stores: they consume memory-system bandwidth but do not block the
    # warp (write-through, no write-allocate, fire-and-forget)
    working_set_lines: int = 1 << 16  # footprint of RANDOM / reuse accesses
    reuse_fraction: float = 0.0  # fraction of accesses to the hot set
    hot_set_lines: int = 2_048  # size of the cache-resident hot set
    stride_lines: int = 1  # stride for STRIDED pattern
    burst_jitter: float = 0.3  # relative jitter on compute burst lengths
    max_resident_blocks: int | None = None  # per-SM occupancy limit (models
    # register/shared-memory pressure; low values make the kernel
    # latency-sensitive because TLP can no longer hide memory time)
    phases: tuple[KernelPhase, ...] = ()  # phase schedule partitioning
    # insts_per_warp; empty = stationary behaviour (the bit-identical
    # pre-phase path — see WarpStream._refill)

    def __post_init__(self) -> None:
        if self.compute_per_mem < 0:
            raise ValueError("compute_per_mem must be non-negative")
        if not 0.0 <= self.reuse_fraction <= 1.0:
            raise ValueError("reuse_fraction must be in [0, 1]")
        if not 0.0 <= self.wide_fraction <= 1.0:
            raise ValueError("wide_fraction must be in [0, 1]")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        if self.warps_per_block < 1 or self.blocks_total < 1:
            raise ValueError("kernel needs at least one block of one warp")
        if self.insts_per_warp < 2:
            raise ValueError("warps must run at least two instructions")
        if self.accesses_per_mem_inst < 1:
            raise ValueError("memory instructions touch at least one line")
        if self.working_set_lines < 1 or self.hot_set_lines < 1:
            raise ValueError("working sets must be non-empty")
        if self.phases:
            object.__setattr__(self, "phases", tuple(self.phases))
            covered = sum(p.insts for p in self.phases)
            if covered != self.insts_per_warp:
                raise ValueError(
                    f"phases cover {covered} instructions but the warp "
                    f"budget is {self.insts_per_warp}"
                )

    @property
    def mem_fraction(self) -> float:
        """Fraction of instructions that are memory instructions."""
        return 1.0 / (1.0 + self.compute_per_mem)


#: Steps (compute burst + memory instruction) pregenerated per refill.
#: Bounded so a warp cut off by the end of the run window wastes at most
#: one chunk of RNG draws.
_CHUNK = 32


def stream_seed(seed: int, app_index: int, block_id: int, warp_id: int) -> str:
    """RNG seed string for one warp stream.

    Shared with :mod:`repro.sim.backends.vectorized` so every backend draws
    from the identical MT19937 state.
    """
    return f"{seed}/{app_index}/{block_id}/{warp_id}"


def stream_bases(
    spec: KernelSpec, app_index: int, block_id: int, warp_id: int
) -> tuple[int, int]:
    """(hot-set base line, granule-aligned streaming-region base line).

    One disjoint streaming region per warp, sized to its worst-case
    footprint; shared with the vectorized backend so both generate
    identical address streams.
    """
    base = app_index * APP_SPACE_LINES
    footprint = max(
        2,
        spec.insts_per_warp
        * spec.accesses_per_mem_inst
        * max(spec.stride_lines, 2),
    )
    warp_global = block_id * spec.warps_per_block + warp_id
    region = base + spec.hot_set_lines + (warp_global * footprint) % (
        APP_SPACE_LINES - spec.hot_set_lines - footprint
    )
    return base, region & ~1


class WarpStream:
    """Deterministic per-warp instruction/address generator.

    A warp alternates compute bursts and memory instructions until its
    instruction budget is spent.  Streams are reproducible: the RNG is seeded
    from ``(app seed, block id, warp id)`` so a shared run and its
    matched-instruction alone replay see identical behaviour.

    Steps are pregenerated in chunks (:func:`_refill`) with one tight loop
    over local variables, so the per-burst calls the SM makes are plain
    array reads.  The RNG draw order inside a chunk is exactly the draw
    order of stepwise generation, so the stream of (burst, addresses,
    is_store) values is bit-identical to the unbatched implementation under
    the SM's strict burst/memory alternation.
    """

    __slots__ = (
        "spec", "_rng", "_cursor", "_region_base", "_hot_base",
        "remaining_insts", "_line_bytes",
        "_bursts", "_addrs", "_stores", "_idx", "_gen_remaining",
        "_phases", "_gen_phase_idx", "_gen_phase_rem",
    )

    def __init__(
        self,
        spec: KernelSpec,
        app_index: int,
        block_id: int,
        warp_id: int,
        seed: int,
        line_bytes: int,
    ) -> None:
        self.spec = spec
        self._rng = random.Random(stream_seed(seed, app_index, block_id, warp_id))
        self._line_bytes = line_bytes
        # Streaming regions start past the hot set (see stream_bases).
        self._hot_base, self._region_base = stream_bases(
            spec, app_index, block_id, warp_id
        )
        self._cursor = 0
        self.remaining_insts = spec.insts_per_warp
        # Pregenerated step trace (parallel arrays) and its read cursor.
        self._bursts: list[int] = []
        self._addrs: list[list[int]] = []
        self._stores: list[bool] = []
        self._idx = 0
        self._gen_remaining = spec.insts_per_warp
        # Phase schedule: None keeps the stationary fast path untouched.
        self._phases = spec.phases or None
        self._gen_phase_idx = 0
        self._gen_phase_rem = spec.phases[0].insts if spec.phases else 0

    @property
    def done(self) -> bool:
        return self.remaining_insts <= 0

    def _refill(self) -> None:
        """Pregenerate the next chunk of (burst, addresses, is_store) steps.

        One step consumes at least one instruction, so at most
        ``remaining`` steps are left — the chunk is clamped to that, keeping
        the overshoot past the run window at zero for finishing warps.
        """
        if self._phases is not None:
            self._refill_phased()
            return
        spec = self.spec
        rng = self._rng
        uniform = rng.uniform
        rand = rng.random
        randrange = rng.randrange
        remaining = self._gen_remaining
        bursts: list[int] = []
        addr_lists: list[list[int]] = []
        stores: list[bool] = []

        mean = spec.compute_per_mem
        draw_burst = mean > 0
        jitter = spec.burst_jitter
        lo = max(0.0, mean * (1.0 - jitter))
        hi = mean * (1.0 + jitter)
        sf = spec.store_fraction
        wf = spec.wide_fraction
        rf = spec.reuse_fraction
        n_acc = spec.accesses_per_mem_inst
        pattern_random = spec.pattern is AccessPattern.RANDOM
        hot_base = self._hot_base
        hot_lines = spec.hot_set_lines
        region_base = self._region_base
        ws_lines = spec.working_set_lines
        stride = spec.stride_lines
        line_bytes = self._line_bytes
        cursor = self._cursor

        limit = remaining if 0 < remaining <= _CHUNK else (
            _CHUNK if remaining > 0 else 1  # past-done misuse: step at a time
        )
        for _ in range(limit):
            # Compute burst: same draw and the same cap as the stepwise code.
            if draw_burst:
                burst = int(round(uniform(lo, hi)))
            else:
                burst = 0
            cap = remaining - 1
            if cap < 0:
                cap = 0
            if burst > cap:
                burst = cap
            remaining -= burst
            # Memory instruction: store flag, then one or more addresses.
            # A *wide* access (``wide_fraction``) touches two consecutive
            # lines aligned to one interleave granule, so both land in the
            # same partition and DRAM row and are outstanding together —
            # the FR-FCFS controller then serves the second as a row hit.
            is_store = sf > 0.0 and rand() < sf
            remaining -= 1
            out: list[int] = []
            for _ in range(n_acc):
                wide = wf > 0.0 and rand() < wf
                if rf > 0.0 and rand() < rf:
                    line = hot_base + randrange(hot_lines)
                    wide = False  # hot-set lines are cache-resident singles
                elif pattern_random:
                    line = region_base + randrange(ws_lines)
                    if wide:
                        line &= ~1
                else:  # STREAM / STRIDED
                    if wide:
                        cursor = (cursor + 1) & ~1  # granule-align
                    line = region_base + cursor
                    cursor += 2 if wide else stride
                out.append(line * line_bytes)
                if wide:
                    out.append((line + 1) * line_bytes)
            bursts.append(burst)
            addr_lists.append(out)
            stores.append(is_store)

        self._cursor = cursor
        self._gen_remaining = remaining
        self._bursts = bursts
        self._addrs = addr_lists
        self._stores = stores
        self._idx = 0

    def _refill_phased(self) -> None:
        """Phase-aware pregeneration: same step shape as :meth:`_refill`,
        but the mix knobs come from the phase owning the step, and the
        compute burst is additionally clamped so the step's memory
        instruction stays inside the current phase — a step never straddles
        a declared phase boundary, which is what conserves the per-warp
        instruction total exactly for every split of the budget."""
        spec = self.spec
        rng = self._rng
        uniform = rng.uniform
        rand = rng.random
        randrange = rng.randrange
        remaining = self._gen_remaining
        phases = self._phases
        pidx = self._gen_phase_idx
        prem = self._gen_phase_rem
        bursts: list[int] = []
        addr_lists: list[list[int]] = []
        stores: list[bool] = []

        jitter = spec.burst_jitter
        n_acc = spec.accesses_per_mem_inst
        hot_base = self._hot_base
        hot_lines = spec.hot_set_lines
        region_base = self._region_base
        ws_lines = spec.working_set_lines
        stride = spec.stride_lines
        line_bytes = self._line_bytes
        cursor = self._cursor

        limit = remaining if 0 < remaining <= _CHUNK else (
            _CHUNK if remaining > 0 else 1  # past-done misuse: step at a time
        )
        for _ in range(limit):
            while prem <= 0 and pidx + 1 < len(phases):
                pidx += 1
                prem = phases[pidx].insts
            ph = phases[pidx]
            mean = (spec.compute_per_mem if ph.compute_per_mem is None
                    else ph.compute_per_mem)
            sf = (spec.store_fraction if ph.store_fraction is None
                  else ph.store_fraction)
            wf = (spec.wide_fraction if ph.wide_fraction is None
                  else ph.wide_fraction)
            rf = (spec.reuse_fraction if ph.reuse_fraction is None
                  else ph.reuse_fraction)
            pattern = spec.pattern if ph.pattern is None else ph.pattern
            pattern_random = pattern is AccessPattern.RANDOM

            if mean > 0:
                burst = int(round(
                    uniform(max(0.0, mean * (1.0 - jitter)),
                            mean * (1.0 + jitter))
                ))
            else:
                burst = 0
            cap = (remaining if remaining < prem else prem) - 1
            if cap < 0:
                cap = 0
            if burst > cap:
                burst = cap
            remaining -= burst + 1
            prem -= burst + 1

            is_store = sf > 0.0 and rand() < sf
            out: list[int] = []
            for _ in range(n_acc):
                wide = wf > 0.0 and rand() < wf
                if rf > 0.0 and rand() < rf:
                    line = hot_base + randrange(hot_lines)
                    wide = False
                elif pattern_random:
                    line = region_base + randrange(ws_lines)
                    if wide:
                        line &= ~1
                else:  # STREAM / STRIDED
                    if wide:
                        cursor = (cursor + 1) & ~1
                    line = region_base + cursor
                    cursor += 2 if wide else stride
                out.append(line * line_bytes)
                if wide:
                    out.append((line + 1) * line_bytes)
            bursts.append(burst)
            addr_lists.append(out)
            stores.append(is_store)

        self._cursor = cursor
        self._gen_remaining = remaining
        self._gen_phase_idx = pidx
        self._gen_phase_rem = prem
        self._bursts = bursts
        self._addrs = addr_lists
        self._stores = stores
        self._idx = 0

    def next_compute_burst(self) -> int:
        """Length of the next compute burst, in instructions (may be 0)."""
        i = self._idx
        if i >= len(self._bursts):
            self._refill()
            i = 0
        burst = self._bursts[i]
        self.remaining_insts -= burst
        return burst

    def next_mem_access(self) -> tuple[list[int], bool]:
        """(byte addresses, is_store) for the next memory instruction."""
        i = self._idx
        if i >= len(self._addrs):
            self._refill()
            i = 0
        self._idx = i + 1
        self.remaining_insts -= 1
        return self._addrs[i], self._stores[i]

    def next_mem_addresses(self) -> list[int]:
        """Byte addresses touched by the next memory instruction."""
        return self.next_mem_access()[0]


@dataclass
class KernelProgress:
    """Mutable run-time bookkeeping for one launched kernel."""

    spec: KernelSpec
    blocks_dispatched: int = 0
    blocks_finished: int = 0
    restarts: int = 0
    instructions: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def blocks_remaining(self) -> int:
        return self.spec.blocks_total - self.blocks_dispatched

    def next_block_id(self) -> int:
        """Dispatch the next thread block, restarting the grid if exhausted.

        The paper's methodology restarts an application that finishes before
        the 5M-cycle window closes; restarting the grid reproduces that.
        """
        if self.blocks_remaining <= 0:
            self.restarts += 1
            self.blocks_dispatched = 0
        bid = self.blocks_dispatched
        self.blocks_dispatched += 1
        return bid + self.restarts * self.spec.blocks_total
