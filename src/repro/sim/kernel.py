"""Synthetic GPGPU kernel descriptions and their address streams.

The paper drives GPGPU-Sim with 15 real CUDA kernels; we substitute
parameterized synthetic kernels (see DESIGN.md §2).  A :class:`KernelSpec`
captures exactly the characteristics the DASE model is sensitive to:

* **memory intensity** — mean compute instructions between memory
  instructions per warp (``compute_per_mem``);
* **locality** — row-buffer-friendly streaming vs random access, and cache
  reuse via a per-application hot working set (``reuse_fraction`` /
  ``working_set_lines``);
* **TLP** — warps per block and the total number of thread blocks
  (Eq. 24's TB_sum limit);
* **coalescing** — memory requests generated per memory instruction.

Each application owns a disjoint slice of the address space so concurrent
kernels never share data, only hardware.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field


class AccessPattern(enum.Enum):
    """Spatial behaviour of the non-reuse part of the address stream."""

    STREAM = "stream"  # sequential lines: high row locality, high BLP
    STRIDED = "strided"  # fixed stride in lines: moderate row locality
    RANDOM = "random"  # uniform over the working set: poor row locality


#: Address-space slice reserved per application, in cache lines (512 MB).
APP_SPACE_LINES = 1 << 22


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one synthetic GPGPU application."""

    name: str
    compute_per_mem: float  # mean compute instructions per memory instruction
    pattern: AccessPattern = AccessPattern.STREAM
    warps_per_block: int = 6
    blocks_total: int = 10_000  # total thread blocks the grid launches
    insts_per_warp: int = 4_000  # instruction budget per warp
    accesses_per_mem_inst: int = 1  # >1 models uncoalesced accesses
    wide_fraction: float = 0.0  # fraction of accesses touching TWO
    # consecutive lines (one 256 B granule: same partition, same DRAM row,
    # in flight together) — this is where coalesced kernels get their
    # row-buffer locality, so it controls the saturated DRAM efficiency
    store_fraction: float = 0.0  # fraction of memory instructions that are
    # stores: they consume memory-system bandwidth but do not block the
    # warp (write-through, no write-allocate, fire-and-forget)
    working_set_lines: int = 1 << 16  # footprint of RANDOM / reuse accesses
    reuse_fraction: float = 0.0  # fraction of accesses to the hot set
    hot_set_lines: int = 2_048  # size of the cache-resident hot set
    stride_lines: int = 1  # stride for STRIDED pattern
    burst_jitter: float = 0.3  # relative jitter on compute burst lengths
    max_resident_blocks: int | None = None  # per-SM occupancy limit (models
    # register/shared-memory pressure; low values make the kernel
    # latency-sensitive because TLP can no longer hide memory time)

    def __post_init__(self) -> None:
        if self.compute_per_mem < 0:
            raise ValueError("compute_per_mem must be non-negative")
        if not 0.0 <= self.reuse_fraction <= 1.0:
            raise ValueError("reuse_fraction must be in [0, 1]")
        if not 0.0 <= self.wide_fraction <= 1.0:
            raise ValueError("wide_fraction must be in [0, 1]")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        if self.warps_per_block < 1 or self.blocks_total < 1:
            raise ValueError("kernel needs at least one block of one warp")
        if self.insts_per_warp < 2:
            raise ValueError("warps must run at least two instructions")
        if self.accesses_per_mem_inst < 1:
            raise ValueError("memory instructions touch at least one line")
        if self.working_set_lines < 1 or self.hot_set_lines < 1:
            raise ValueError("working sets must be non-empty")

    @property
    def mem_fraction(self) -> float:
        """Fraction of instructions that are memory instructions."""
        return 1.0 / (1.0 + self.compute_per_mem)


class WarpStream:
    """Deterministic per-warp instruction/address generator.

    A warp alternates compute bursts and memory instructions until its
    instruction budget is spent.  Streams are reproducible: the RNG is seeded
    from ``(app seed, block id, warp id)`` so a shared run and its
    matched-instruction alone replay see identical behaviour.
    """

    __slots__ = (
        "spec", "_rng", "_cursor", "_region_base", "_hot_base",
        "remaining_insts", "_line_bytes",
    )

    def __init__(
        self,
        spec: KernelSpec,
        app_index: int,
        block_id: int,
        warp_id: int,
        seed: int,
        line_bytes: int,
    ) -> None:
        self.spec = spec
        self._rng = random.Random(f"{seed}/{app_index}/{block_id}/{warp_id}")
        self._line_bytes = line_bytes
        base = app_index * APP_SPACE_LINES
        self._hot_base = base
        # Streaming regions start past the hot set, one disjoint region per
        # warp, sized to the warp's worst-case footprint.
        footprint = max(
            2,
            spec.insts_per_warp
            * spec.accesses_per_mem_inst
            * max(spec.stride_lines, 2),
        )
        warp_global = block_id * spec.warps_per_block + warp_id
        region = base + spec.hot_set_lines + (warp_global * footprint) % (
            APP_SPACE_LINES - spec.hot_set_lines - footprint
        )
        self._region_base = region & ~1  # granule-aligned for wide accesses
        self._cursor = 0
        self.remaining_insts = spec.insts_per_warp

    @property
    def done(self) -> bool:
        return self.remaining_insts <= 0

    def next_compute_burst(self) -> int:
        """Length of the next compute burst, in instructions (may be 0)."""
        spec = self.spec
        mean = spec.compute_per_mem
        if mean <= 0:
            burst = 0
        else:
            jitter = spec.burst_jitter
            lo = max(0.0, mean * (1.0 - jitter))
            hi = mean * (1.0 + jitter)
            burst = int(round(self._rng.uniform(lo, hi)))
        burst = min(burst, max(0, self.remaining_insts - 1))
        self.remaining_insts -= burst
        return burst

    def next_mem_access(self) -> tuple[list[int], bool]:
        """(byte addresses, is_store) for the next memory instruction."""
        is_store = (
            self.spec.store_fraction > 0.0
            and self._rng.random() < self.spec.store_fraction
        )
        return self.next_mem_addresses(), is_store

    def next_mem_addresses(self) -> list[int]:
        """Byte addresses touched by the next memory instruction.

        A *wide* access (``wide_fraction``) touches two consecutive lines
        aligned to one interleave granule, so both land in the same
        partition and DRAM row and are outstanding together — the FR-FCFS
        controller then serves the second as a row hit.
        """
        spec = self.spec
        self.remaining_insts -= 1
        rng = self._rng
        out: list[int] = []
        for _ in range(spec.accesses_per_mem_inst):
            wide = spec.wide_fraction > 0.0 and rng.random() < spec.wide_fraction
            if spec.reuse_fraction > 0.0 and rng.random() < spec.reuse_fraction:
                line = self._hot_base + rng.randrange(spec.hot_set_lines)
                wide = False  # hot-set lines are cache-resident singles
            elif spec.pattern is AccessPattern.RANDOM:
                line = self._region_base + rng.randrange(spec.working_set_lines)
                if wide:
                    line &= ~1
            else:  # STREAM / STRIDED
                if wide:
                    self._cursor = (self._cursor + 1) & ~1  # granule-align
                line = self._region_base + self._cursor
                self._cursor += 2 if wide else spec.stride_lines
            out.append(line * self._line_bytes)
            if wide:
                out.append((line + 1) * self._line_bytes)
        return out


@dataclass
class KernelProgress:
    """Mutable run-time bookkeeping for one launched kernel."""

    spec: KernelSpec
    blocks_dispatched: int = 0
    blocks_finished: int = 0
    restarts: int = 0
    instructions: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def blocks_remaining(self) -> int:
        return self.spec.blocks_total - self.blocks_dispatched

    def next_block_id(self) -> int:
        """Dispatch the next thread block, restarting the grid if exhausted.

        The paper's methodology restarts an application that finishes before
        the 5M-cycle window closes; restarting the grid reproduces that.
        """
        if self.blocks_remaining <= 0:
            self.restarts += 1
            self.blocks_dispatched = 0
        bid = self.blocks_dispatched
        self.blocks_dispatched += 1
        return bid + self.restarts * self.spec.blocks_total
