"""Streaming Multiprocessor model.

Warps resident on an SM alternate compute bursts and memory instructions.
Ready warps share the SM's issue bandwidth equally — a processor-sharing
queue, simulated exactly with the classic virtual-time construction so the
engine only sees one event per burst completion instead of one per cycle.

The SM stalls (the paper's α) when *every* resident warp is blocked on
memory: that is precisely when TLP fails to hide memory latency, the
condition DASE's Eq. 15 models.
"""

from __future__ import annotations

import enum
import heapq
from typing import TYPE_CHECKING, Callable

from repro.config import GPUConfig
from repro.sim.cache import CacheStats, SetAssocCache
from repro.sim.engine import Engine
from repro.sim.kernel import WarpStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.gpu import GPU


class WarpState(enum.Enum):
    READY = "ready"  # executing a compute burst (sharing issue slots)
    BLOCKED = "blocked"  # waiting on outstanding memory requests
    DONE = "done"


class WarpRT:
    """Run-time state of one resident warp."""

    __slots__ = ("stream", "block", "state", "pending", "work", "vfinish")

    def __init__(self, stream: WarpStream, block: "ThreadBlockRT") -> None:
        self.stream = stream
        self.block = block
        self.state = WarpState.BLOCKED  # set READY on first burst
        self.pending = 0  # outstanding memory responses
        self.work = 0  # instructions in the current burst (incl. mem inst)
        self.vfinish = 0.0


class ThreadBlockRT:
    """Run-time state of one resident thread block."""

    __slots__ = ("app", "block_id", "warps_total", "warps_done")

    def __init__(self, app: int, block_id: int, warps_total: int) -> None:
        self.app = app
        self.block_id = block_id
        self.warps_total = warps_total
        self.warps_done = 0

    @property
    def done(self) -> bool:
        return self.warps_done >= self.warps_total


class SM:
    """One streaming multiprocessor.

    Owned by at most one application at a time; ownership changes only
    through the draining protocol (:meth:`start_draining` →
    ``on_drained`` callback → reassignment by the dispatcher).
    """

    def __init__(self, engine: Engine, config: GPUConfig, sm_id: int, gpu: "GPU") -> None:
        self.engine = engine
        self.config = config
        self.sm_id = sm_id
        self.gpu = gpu
        # Direct tracer reference (or None): the GPU resolves observability
        # once at construction; the disabled path is one attribute check.
        self._trace = gpu._trace

        self.app: int | None = None
        self.blocks: list[ThreadBlockRT] = []
        self.draining = False
        self.on_drained: Callable[["SM"], None] | None = None

        # Hot-path config scalars.
        self._issue_width = config.issue_width
        self._l1_latency = config.l1_latency

        # Processor-sharing state.
        self._V = 0.0  # virtual time
        self._t_last = 0  # real time of last advance
        self._n_active = 0
        self._heap: list[tuple[float, int, WarpRT]] = []
        self._seq = 0
        self._gen = 0  # generation token for lazy event invalidation
        self._blocked = 0  # resident warps waiting on memory

        # α accounting (owned-app attribution happens at advance time).
        self.busy_time = 0.0
        self.stall_time = 0.0

        # Private L1 data cache (Table 2), invalidated on ownership change.
        self.l1: SetAssocCache | None = (
            SetAssocCache(config.l1) if config.l1_enabled else None
        )
        line = config.l2.line_bytes
        self._l1_line_shift = line.bit_length() - 1
        self._l1_set_mask = config.l1.n_sets - 1
        self._l1_set_bits = config.l1.n_sets.bit_length() - 1

        # Cached bound methods (see MemoryPartition.__init__).
        self._schedule = engine.schedule
        self._on_completion_cb = self._on_completion
        self._memory_response_cb = self.memory_response

    # ------------------------------------------------------------- capacity

    def max_resident_blocks(
        self, warps_per_block: int, kernel_limit: int | None = None
    ) -> int:
        by_warps = self.config.max_warps_per_sm // warps_per_block
        limit = min(self.config.max_blocks_per_sm, by_warps)
        if kernel_limit is not None:
            limit = min(limit, kernel_limit)
        return max(0, limit)

    def can_accept_block(
        self, warps_per_block: int, kernel_limit: int | None = None
    ) -> bool:
        if self.draining or self.app is None:
            return False
        return len(self.blocks) < self.max_resident_blocks(
            warps_per_block, kernel_limit
        )

    @property
    def resident_warps(self) -> int:
        return self._n_active + self._blocked

    # --------------------------------------------------------------- timing

    def _advance(self, now: int) -> None:
        dt = now - self._t_last
        if dt <= 0:
            return
        if self._n_active > 0:
            self._V += dt * self._issue_width / self._n_active
            self.busy_time += dt
            if self.app is not None:
                self.gpu.sm_counters[self.app].busy_time += dt
        elif self._blocked > 0:
            self.stall_time += dt
            if self.app is not None:
                self.gpu.sm_counters[self.app].stall_time += dt
                if self._trace is not None:
                    # The whole [t_last, now) slice was an all-warps-blocked
                    # stall — exactly the α window of DASE's Eq. 15.
                    self._trace.complete(
                        "sm.stall", self._t_last, dt, self.app, self.sm_id
                    )
        self._t_last = now

    def _reschedule(self) -> None:
        """Re-arm the burst-completion event after any state change."""
        self._gen += 1
        if not self._heap or self._n_active == 0:
            return
        vfirst = self._heap[0][0]
        dt = (vfirst - self._V) * self._n_active / self._issue_width
        fire_at = self._t_last + max(0, int(dt + 0.999999))
        now = self.engine.now
        self._schedule(
            fire_at - now if fire_at > now else 0, self._on_completion_cb, self._gen
        )

    def _on_completion(self, gen: int) -> None:
        if gen != self._gen:
            return  # stale event: state changed since scheduling
        now = self.engine.now
        self._advance(now)
        # Pop-and-dispatch in one pass: _burst_done never touches the heap,
        # _V, or _n_active, so interleaving is equivalent to the two-phase
        # collect-then-dispatch form but skips the intermediate list.
        limit = self._V + 1e-7 * max(1.0, abs(self._V))
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= limit:
            warp = heappop(heap)[2]
            self._n_active -= 1
            self._burst_done(warp)
        self._reschedule()

    # ----------------------------------------------------------- warp logic

    def add_block(self, block: ThreadBlockRT, streams: list[WarpStream]) -> None:
        if self.app is None or block.app != self.app:
            raise RuntimeError("block dispatched to an SM owned by another app")
        self.blocks.append(block)
        now = self.engine.now
        self._advance(now)
        for stream in streams:
            warp = WarpRT(stream, block)
            self._start_burst(warp)
        self._reschedule()

    def _start_burst(self, warp: WarpRT) -> None:
        """Begin the warp's next compute burst (caller advanced the clock)."""
        burst = warp.stream.next_compute_burst()
        warp.work = burst + 1  # +1: the memory instruction itself
        warp.state = WarpState.READY
        warp.vfinish = self._V + warp.work
        self._seq += 1
        heapq.heappush(self._heap, (warp.vfinish, self._seq, warp))
        self._n_active += 1

    def _l1_lookup(self, addr: int, app: int) -> bool:
        """Probe/fill the private L1 for one address; True on hit."""
        if self.l1 is None:
            return False
        line = addr >> self._l1_line_shift
        cache_set = line & self._l1_set_mask
        tag = line >> self._l1_set_bits
        return self.l1.access(cache_set, tag, app)

    def _burst_done(self, warp: WarpRT) -> None:
        """A warp finished its compute burst + memory instruction issue."""
        gpu = self.gpu
        app = self.app
        if app is not None:
            gpu.sm_counters[app].instructions += warp.work
            gpu.progress[app].instructions += warp.work
            if gpu._inst_target is not None:
                gpu.note_instructions(app)
        else:
            app = warp.block.app
        addresses, is_store = warp.stream.next_mem_access()
        if is_store:
            # Write-through, no-allocate: the store consumes memory-system
            # bandwidth but the warp does not wait for it — one wake-up
            # event regardless of how many lines the store touches.
            for addr in addresses:
                gpu.issue_memory_request(self, warp, addr, wait=False)
            warp.state = WarpState.BLOCKED
            warp.pending = 1
            self._blocked += 1
            self._schedule(self._l1_latency, self._memory_response_cb, warp)
            return
        l1 = self.l1
        if l1 is None:
            misses = addresses
        else:
            # Inlined SetAssocCache.access (L1 probe/fill) — runs once per
            # address of every load burst.
            counters = gpu.sm_counters[app]
            line_shift = self._l1_line_shift
            set_mask = self._l1_set_mask
            set_bits = self._l1_set_bits
            l1_sets = l1._sets
            assoc = l1._assoc
            cstats = l1.stats
            st = cstats.get(app)
            if st is None:
                st = cstats[app] = CacheStats()
            misses = []
            for addr in addresses:
                line = addr >> line_shift
                s = l1_sets[line & set_mask]
                tag = line >> set_bits
                if tag in s:
                    s.move_to_end(tag)
                    s[tag] = app
                    st.hits += 1
                    counters.l1_hits += 1
                else:
                    st.misses += 1
                    if len(s) >= assoc:
                        s.popitem(last=False)
                    s[tag] = app
                    counters.l1_misses += 1
                    misses.append(addr)
        warp.state = WarpState.BLOCKED
        self._blocked += 1
        if not misses:
            # Every line hit in the L1: the warp resumes after the hit
            # latency without touching the shared memory system — a single
            # event for the whole all-hits burst.
            warp.pending = 1
            self._schedule(self._l1_latency, self._memory_response_cb, warp)
            return
        warp.pending = len(misses)
        issue = gpu.issue_memory_request
        for addr in misses:
            issue(self, warp, addr)

    def memory_response(self, warp: WarpRT) -> None:
        """One of the warp's outstanding requests returned."""
        warp.pending -= 1
        if warp.pending > 0:
            return
        now = self.engine.now
        self._advance(now)
        self._blocked -= 1
        if warp.stream.done:
            warp.state = WarpState.DONE
            self._warp_finished(warp)
        else:
            self._start_burst(warp)
            self._reschedule()

    def _warp_finished(self, warp: WarpRT) -> None:
        block = warp.block
        block.warps_done += 1
        if block.done:
            self.blocks.remove(block)
            self.gpu.block_finished(self, block)
            if self.draining and not self.blocks:
                self._drained()

    # ------------------------------------------------------------- draining

    def start_draining(self, on_drained: Callable[["SM"], None]) -> None:
        """Stop accepting blocks; call back once resident work finishes."""
        self.draining = True
        self.on_drained = on_drained
        if not self.blocks:
            self._drained()

    def _drained(self) -> None:
        self.draining = False
        cb, self.on_drained = self.on_drained, None
        self.app = None
        if cb is not None:
            cb(self)

    def assign_app(self, app: int | None) -> None:
        if self.blocks:
            raise RuntimeError("cannot reassign an SM with resident blocks")
        if self.l1 is not None and app != self.app:
            self.l1.flush()  # no cross-application L1 leakage
        self.app = app

    # ------------------------------------------------------------ wall time

    def account_wall_time(self, now: int) -> None:
        """Fold elapsed time into counters (interval boundaries, run end)."""
        self._advance(now)
