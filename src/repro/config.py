"""GPU configuration (paper Table 2).

Every structural and timing parameter of the simulated GPU lives here so
experiments can reproduce the paper's GTX480-like baseline or deviate from it
(e.g. Figure 8b varies the SM count).  All timings are expressed in *GPU core
cycles*; DRAM-domain timings from the paper (924 MHz) are converted with
:attr:`GPUConfig.dram_clock_ratio`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DRAMTimings:
    """DRAM timing constraints, in DRAM-clock cycles (paper Table 2).

    ``tRP``/``tRCD`` are the precharge and row-activate delays the paper's
    row-buffer-interference term charges (Eq. 10).  ``tCL`` is column access
    latency and ``tBurst`` the data-bus occupancy of one 128 B line transfer.
    """

    tRP: int = 12
    tRCD: int = 12
    tCL: int = 12
    tBurst: int = 4
    tFAW: int = 44  # four-activate window: at most 4 row activations per
    # rolling tFAW; binds row-miss-heavy (random/strided) traffic well below
    # the data-bus peak, as on real GDDR

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles a row-buffer miss costs over a hit (tRP + tRCD)."""
        return self.tRP + self.tRCD


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one L2 cache slice (one per memory partition)."""

    size_bytes: int = 128 * 1024  # 768 KB total / 6 partitions
    line_bytes: int = 128
    assoc: int = 8

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError("cache size must be a multiple of line*assoc")
        n = self.size_bytes // (self.line_bytes * self.assoc)
        if n & (n - 1):
            raise ValueError(f"number of sets must be a power of two, got {n}")


#: Names accepted by :attr:`GPUConfig.backend`.  The list lives here (not in
#: ``repro.sim.backends``) so config validation has no import cycle and no
#: NumPy dependency; the backends package validates against the same tuple.
KNOWN_BACKENDS = ("reference", "vectorized")


@dataclass(frozen=True)
class GPUConfig:
    """Full simulated-GPU configuration.  Defaults follow paper Table 2.

    The paper's GTX480-like baseline: 16 SMs at 1400 MHz (max 48 warps each),
    6 memory controllers behind one crossbar, FR-FCFS scheduling over
    16 DRAM banks per controller at 924 MHz, 128 B cache lines.
    """

    # --- SMs -------------------------------------------------------------
    n_sms: int = 16
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    issue_width: int = 1  # instructions issued per SM cycle

    # --- Memory system ---------------------------------------------------
    # --- Per-SM L1 data cache (Table 2: 16 KB, 4-way) ---------------------
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=16 * 1024, assoc=4)
    )
    l1_enabled: bool = True
    l1_latency: int = 1  # L1 hit turnaround, core cycles

    n_partitions: int = 6
    n_banks: int = 16
    interleave_lines: int = 2  # cache lines per partition-interleave granule
    # (2 × 128 B = 256 B, as on real GPUs) — wide two-line accesses stay in
    # one partition and hit the same DRAM row
    l2: CacheConfig = field(default_factory=CacheConfig)
    dram: DRAMTimings = field(default_factory=DRAMTimings)
    row_bytes: int = 2048  # DRAM row-buffer size
    mc_queue_depth: int = 64  # outstanding requests per memory controller
    mc_issue_gap: int = 10  # min core cycles between request issues per MC;
    # folds command-bus occupancy / tCCD / tFAW into one knob and caps DRAM
    # data-bus efficiency near the ~60-70% real controllers reach (the same
    # effect the paper's 0.6 factor in Eq. 20 accounts for)

    # --- Clocks ----------------------------------------------------------
    core_clock_mhz: float = 1400.0
    dram_clock_mhz: float = 924.0

    # --- Interconnect ----------------------------------------------------
    icnt_latency: int = 20  # crossbar one-way wire latency, core cycles
    icnt_packet_cycles: int = 2  # per-port serialization per packet
    l2_latency: int = 10  # L2 hit lookup latency, core cycles

    mc_scheduler: str = "frfcfs"  # "frfcfs" (baseline) or "rr":
    # application-aware round-robin à la Jog et al. [11], which serves
    # applications' requests in turn to curb starvation (related-work
    # comparison; see benchmarks/test_memsched_comparison.py)

    # --- Estimation ------------------------------------------------------
    interval_cycles: int = 50_000  # DASE sampling interval (paper §4.4)
    atd_sample_sets: int = 8  # sampled ATD sets (paper §6)
    reqmax_factor: float = 0.6  # empirical factor in Eq. 20
    alpha_clamp: float = 0.3  # α above this is treated as 1 (paper §4.2.1:
    # "setting α to 1 makes DASE more accurate when α is large"; with the
    # interference time already capped at α·T, a stalled-at-all SM is best
    # modelled by the undamped ratio — see benchmarks/test_ablation_alpha.py)

    # --- Reproducibility ---------------------------------------------------
    seed: int = 12345

    # --- Execution backend -------------------------------------------------
    backend: str = "reference"  # simulator core implementation; one of
    # KNOWN_BACKENDS.  Backends are *result-equivalent*: selecting one may
    # change how the core computes, never what it computes (address streams
    # and integer counters are identical; see src/repro/sim/backends/).
    # Because of that contract the field is excluded from config
    # fingerprints — a cache or golden recorded under one backend is valid
    # under any other.

    @property
    def dram_clock_ratio(self) -> float:
        """Core cycles per DRAM cycle (>1: DRAM is slower than the core)."""
        return self.core_clock_mhz / self.dram_clock_mhz

    def dram_cycles_to_core(self, dram_cycles: float) -> int:
        """Convert a DRAM-domain delay into (rounded-up) core cycles."""
        return int(math.ceil(dram_cycles * self.dram_clock_ratio))

    @property
    def time_per_request(self) -> int:
        """T_perReq of Eq. 20: core cycles of data-bus time per served request."""
        return self.dram_cycles_to_core(self.dram.tBurst)

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.l2.line_bytes

    def with_sms(self, n_sms: int) -> "GPUConfig":
        """A copy of this config with a different SM count (Figure 8b)."""
        return replace(self, n_sms=n_sms)

    def __post_init__(self) -> None:
        if self.n_sms < 1:
            raise ValueError("need at least one SM")
        if self.n_partitions < 1:
            raise ValueError("need at least one memory partition")
        if self.n_banks & (self.n_banks - 1):
            raise ValueError("bank count must be a power of two")
        if self.row_bytes % self.l2.line_bytes:
            raise ValueError("row size must be a multiple of the line size")
        if not 0.0 < self.reqmax_factor <= 1.0:
            raise ValueError("reqmax_factor must be in (0, 1]")
        if self.mc_scheduler not in ("frfcfs", "rr"):
            raise ValueError("mc_scheduler must be 'frfcfs' or 'rr'")
        if self.interleave_lines & (self.interleave_lines - 1):
            raise ValueError("interleave_lines must be a power of two")
        if self.backend not in KNOWN_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}: expected one of "
                f"{', '.join(KNOWN_BACKENDS)}"
            )


#: The paper's baseline configuration (Table 2).
BASELINE = GPUConfig()
