"""Hash-addressed, schema-versioned results store.

One :class:`ResultStore` directory accumulates the typed outputs of every
figure driver across runs, seeds, backends, and PRs — the longitudinal
counterpart of the per-run (``run.json``), per-model (``audit.json``),
and per-sweep (``sweep.json``) observability scopes.

Layout::

    <dir>/index.json            # append-ordered log of recordings
    <dir>/records/<id>.json     # one content-addressed record per file

Every record (schema :data:`RECORD_SCHEMA`) embeds

* the canonical :class:`~repro.store.registry.ScenarioSpec` dict and its
  sha256 ``scenario_id``;
* the typed driver payload plus its ``payload_schema`` tag
  (``repro.store.fig2/1``, ``repro.store.accuracy/1``, …);
* provenance — config fingerprint, git revision, creation time, repro
  version, and the schema versions of every embedded payload family.

The ``record_id`` is a sha256 over the canonical JSON of
``(scenario_id, payload_schema, payload)`` **only** — provenance is
deliberately excluded, so re-running the same scenario with the same seed
produces byte-identical record content at the identical address
(content-addressing doubles as deduplication), while the index still logs
one entry per recording so trajectories show every run.  All writes go
through :func:`repro.harness.persist.atomic_write_json`, so concurrent
recorders land whole files and the last index writer wins without torn
reads.

Corrupt or missing store state is always reported as a one-line
:class:`ValueError` (the same contract as ``repro inspect``), never a
traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.harness.persist import atomic_write_json

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.store.registry import ScenarioSpec

#: Schema tag of one stored record.
RECORD_SCHEMA = "repro.store.record/1"

#: Schema tag of the store index file.
INDEX_SCHEMA = "repro.store.index/1"

#: Payload schema used for imported legacy per-figure JSON artifacts whose
#: shape predates the registry (``degradation.json``, ``churn.json``,
#: ``results/*.json``).
LEGACY_SCHEMA = "repro.store.legacy/1"


def canonical_json(obj: Any) -> str:
    """The canonical serialization everything in the store is hashed over:
    sorted keys, no whitespace — byte-stable across processes and platforms."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_id(scenario_id: str, payload_schema: str, payload: Any) -> str:
    """The record's content address: sha256 over the canonical JSON of what
    was *computed*, never over when/where it was computed (provenance)."""
    blob = canonical_json({
        "scenario_id": scenario_id,
        "payload_schema": payload_schema,
        "payload": payload,
    })
    return hashlib.sha256(blob.encode()).hexdigest()


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass
class StoreRecord:
    """One recorded result: scenario identity + typed payload + provenance."""

    record_id: str
    scenario_id: str
    scenario: dict[str, Any]
    payload_schema: str
    payload: Any
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": RECORD_SCHEMA,
            "record_id": self.record_id,
            "scenario_id": self.scenario_id,
            "scenario": self.scenario,
            "payload_schema": self.payload_schema,
            "payload": self.payload,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StoreRecord":
        if d.get("schema") != RECORD_SCHEMA:
            raise ValueError(
                f"not a store record (schema {d.get('schema')!r}, "
                f"expected {RECORD_SCHEMA})"
            )
        return cls(
            record_id=d["record_id"],
            scenario_id=d["scenario_id"],
            scenario=dict(d.get("scenario") or {}),
            payload_schema=d.get("payload_schema", LEGACY_SCHEMA),
            payload=d.get("payload"),
            provenance=dict(d.get("provenance") or {}),
        )


class ResultStore:
    """Content-addressed record files plus an append-ordered index.

    The index is the source of truth for *recordings* (one entry per
    :meth:`record` / :meth:`import_legacy` call, in order); the record
    files are the source of truth for *content* (one file per distinct
    result).  :meth:`gc` reconciles the two.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"store path {self.directory} exists but is not a directory"
            )

    # ------------------------------------------------------------- layout

    @property
    def index_path(self) -> pathlib.Path:
        return self.directory / "index.json"

    @property
    def records_dir(self) -> pathlib.Path:
        return self.directory / "records"

    def record_path(self, record_id: str) -> pathlib.Path:
        return self.records_dir / f"{record_id}.json"

    # -------------------------------------------------------------- index

    def index(self) -> list[dict[str, Any]]:
        """The recording log, oldest first.  Missing store → empty list;
        corrupt index → one-line ValueError (the inspect error contract)."""
        path = self.index_path
        if not path.is_file():
            if self.directory.is_dir() and any(
                self.records_dir.glob("*.json")
            ):
                raise ValueError(
                    f"store index {path} is missing but {self.records_dir} "
                    "holds records — restore the index or re-import"
                )
            return []
        try:
            with path.open() as fh:
                text = fh.read()
        except OSError as exc:
            raise ValueError(f"store index {path} is unreadable: {exc}") from exc
        if not text.strip():
            # An empty (or whitespace-only) index is an initialized-but-empty
            # store — e.g. a touched index.json — not corruption; callers like
            # `repro store list` / `repro trajectory` should see "no records".
            return []
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"store index {path} is corrupt (not valid JSON: {exc})"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != INDEX_SCHEMA
            or not isinstance(payload.get("records"), list)
        ):
            raise ValueError(
                f"store index {path} does not carry schema {INDEX_SCHEMA}"
            )
        return payload["records"]

    def _write_index(self, entries: list[dict[str, Any]]) -> None:
        atomic_write_json(
            self.index_path, {"schema": INDEX_SCHEMA, "records": entries}
        )

    # ---------------------------------------------------------- recording

    def record(
        self,
        scenario: "ScenarioSpec | dict[str, Any]",
        payload: Any,
        payload_schema: str,
        provenance: dict[str, Any] | None = None,
    ) -> StoreRecord:
        """Store one typed result and log it in the index.

        ``scenario`` is a :class:`~repro.store.registry.ScenarioSpec` (or
        its canonical dict).  Identical content re-records to the same
        address — the file is rewritten with identical bytes — but the
        index gains a fresh entry either way, so a trajectory over the
        scenario sees every recording.
        """
        from repro.store.registry import ScenarioSpec

        if isinstance(scenario, ScenarioSpec):
            scenario_dict = scenario.canonical()
            scenario_id = scenario.scenario_id()
            name = scenario.name
        else:
            scenario_dict = dict(scenario)
            scenario_id = ScenarioSpec.id_of(scenario_dict)
            name = str(scenario_dict.get("name", "unnamed"))
        payload = json.loads(canonical_json(payload))  # JSON-safe, key-sorted
        record_id = content_id(scenario_id, payload_schema, payload)
        prov = {
            "git_rev": git_revision(),
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "schemas": {"record": RECORD_SCHEMA, "payload": payload_schema},
        }
        prov.update(provenance or {})
        rec = StoreRecord(
            record_id=record_id,
            scenario_id=scenario_id,
            scenario=scenario_dict,
            payload_schema=payload_schema,
            payload=payload,
            provenance=prov,
        )
        # Read the index before touching disk (a half-written store should
        # fail here, not after adding files), then content first, then the
        # index entry: a crash in between leaves an orphan record file
        # (removable by gc), never an index entry pointing at nothing.
        entries = self.index()
        existing = self.record_path(record_id)
        if existing.is_file():
            # Same address → same content by construction; keep the first
            # writer's provenance on disk (first-seen wins for the file).
            rec_on_disk = self._load_file(existing)
            rec.provenance = rec_on_disk.provenance
        else:
            atomic_write_json(existing, rec.to_dict())
        entries.append({
            "seq": len(entries),
            "record_id": record_id,
            "scenario_id": scenario_id,
            "scenario_name": name,
            "payload_schema": payload_schema,
            "created_at": prov["created_at"],
            "git_rev": prov.get("git_rev"),
        })
        self._write_index(entries)
        return rec

    def import_legacy(
        self,
        path: str | os.PathLike,
        scenario_name: str | None = None,
        payload_schema: str | None = None,
    ) -> StoreRecord:
        """Migrate a pre-registry per-figure JSON artifact into the store.

        The parsed payload is stored verbatim under a synthetic legacy
        scenario (name = ``scenario_name`` or the file stem), so
        :meth:`export_payload` re-emits it byte-identically to the
        original figure artifact (``indent=1, sort_keys=True`` + trailing
        newline — the format every fig driver writes).
        """
        from repro.store.registry import ScenarioSpec

        p = pathlib.Path(path)
        if not p.is_file():
            raise ValueError(f"{p} does not exist")
        try:
            with p.open() as fh:
                payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{p} is not valid JSON: {exc}") from exc
        spec = ScenarioSpec(
            name=scenario_name or p.stem,
            kind="legacy-import",
        )
        return self.record(
            spec, payload, payload_schema or LEGACY_SCHEMA,
            provenance={"imported_from": p.name},
        )

    # ------------------------------------------------------------ loading

    def _load_file(self, path: pathlib.Path) -> StoreRecord:
        if not path.is_file():
            raise ValueError(f"record {path.stem[:12]}… not found in {self.directory}")
        try:
            with path.open() as fh:
                payload = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"record file {path} is corrupt (not valid JSON: {exc})"
            ) from exc
        rec = StoreRecord.from_dict(payload)
        actual = content_id(rec.scenario_id, rec.payload_schema, rec.payload)
        if actual != rec.record_id:
            raise ValueError(
                f"record file {path} fails its content hash "
                f"(stored {rec.record_id[:12]}…, computed {actual[:12]}…)"
            )
        return rec

    def load(self, ref: str) -> StoreRecord:
        """Load a record by reference:

        * a full record id or any unambiguous hex prefix (≥ 4 chars);
        * ``<scenario-name>@<n>`` — the *n*-th recording of that scenario
          in index order (negative indices count from the latest, so
          ``fig2@-1`` is the most recent fig2 recording).
        """
        entries = self.index()
        if "@" in ref:
            name, _, idx_s = ref.rpartition("@")
            try:
                idx = int(idx_s)
            except ValueError:
                raise ValueError(f"bad record reference {ref!r}") from None
            matching = [
                e for e in entries
                if e.get("scenario_name") == name
                or e.get("scenario_id") == name
            ]
            if not matching:
                raise ValueError(
                    f"no recordings of scenario {name!r} in {self.directory}"
                )
            if not -len(matching) <= idx < len(matching):
                raise ValueError(
                    f"scenario {name!r} has {len(matching)} recordings; "
                    f"index {idx} is out of range"
                )
            return self._load_file(
                self.record_path(matching[idx]["record_id"])
            )
        if len(ref) < 4:
            raise ValueError(
                f"record id prefix {ref!r} is too short (need >= 4 chars)"
            )
        ids = sorted({
            e["record_id"] for e in entries
            if str(e.get("record_id", "")).startswith(ref)
        })
        if not ids and self.record_path(ref).is_file():
            ids = [ref]  # full id of an orphan (not indexed) record
        if not ids:
            raise ValueError(f"no record matches {ref!r} in {self.directory}")
        if len(ids) > 1:
            raise ValueError(
                f"record id prefix {ref!r} is ambiguous "
                f"({len(ids)} matches)"
            )
        return self._load_file(self.record_path(ids[0]))

    def records_for(self, scenario: str) -> list[StoreRecord]:
        """All recordings of one scenario (by registry name or id), in
        index order — the series a trajectory renders."""
        return [
            self._load_file(self.record_path(e["record_id"]))
            for e in self.index()
            if e.get("scenario_name") == scenario
            or e.get("scenario_id") == scenario
        ]

    def scenarios(self) -> list[dict[str, Any]]:
        """One summary row per distinct scenario id, in first-seen order."""
        rows: dict[str, dict[str, Any]] = {}
        for e in self.index():
            row = rows.setdefault(e["scenario_id"], {
                "scenario_id": e["scenario_id"],
                "scenario_name": e.get("scenario_name", "?"),
                "payload_schema": e.get("payload_schema", "?"),
                "records": 0,
                "first": e.get("created_at"),
                "last": e.get("created_at"),
            })
            row["records"] += 1
            row["last"] = e.get("created_at")
        return list(rows.values())

    def export_payload(self, ref: str) -> str:
        """Re-emit a record's payload in the figure-artifact format
        (``indent=1, sort_keys=True`` + trailing newline) — byte-identical
        to the legacy JSON it was imported from."""
        rec = self.load(ref)
        return json.dumps(rec.payload, indent=1, sort_keys=True) + "\n"

    # ----------------------------------------------------------------- gc

    def gc(self, keep: int | None = None) -> dict[str, int]:
        """Reconcile index and record files.

        Removes orphan record files (present on disk, absent from the
        index — e.g. a recorder crashed between content and index write).
        With ``keep=N``, additionally prunes each scenario's recording log
        to its newest N entries, then drops any record file no surviving
        entry references.  Returns counters.
        """
        entries = self.index()
        pruned = 0
        if keep is not None:
            if keep < 1:
                raise ValueError(f"gc keep must be >= 1, got {keep}")
            per: dict[str, int] = {}
            for e in reversed(entries):
                per[e["scenario_id"]] = per.get(e["scenario_id"], 0) + 1
            drop_budget = {
                sid: n - keep for sid, n in per.items() if n > keep
            }
            kept_entries: list[dict[str, Any]] = []
            for e in entries:  # oldest first: drop from the front
                sid = e["scenario_id"]
                if drop_budget.get(sid, 0) > 0:
                    drop_budget[sid] -= 1
                    pruned += 1
                    continue
                kept_entries.append(e)
            for seq, e in enumerate(kept_entries):
                e["seq"] = seq
            entries = kept_entries
            self._write_index(entries)
        referenced = {e["record_id"] for e in entries}
        orphans = 0
        if self.records_dir.is_dir():
            for f in self.records_dir.glob("*.json"):
                if f.stem not in referenced:
                    try:
                        f.unlink()
                        orphans += 1
                    except OSError:
                        pass
        return {
            "entries": len(entries),
            "pruned": pruned,
            "orphans_removed": orphans,
        }


def iter_payloads(
    store: ResultStore, scenario: str | None = None
) -> Iterable[tuple[dict[str, Any], StoreRecord]]:
    """(index entry, loaded record) pairs in recording order, optionally
    restricted to one scenario name or id."""
    for e in store.index():
        if scenario is not None and not (
            e.get("scenario_name") == scenario
            or e.get("scenario_id") == scenario
        ):
            continue
        yield e, store._load_file(store.record_path(e["record_id"]))
