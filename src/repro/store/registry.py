"""Declarative scenario registry.

A :class:`ScenarioSpec` names everything that determines a figure
driver's output — workload set, policy, fault/arrival configuration,
backend, seeds, cycle budget, and driver-specific parameters — and
derives a canonical sha256 **scenario id** from it.  Two runs that should
produce the same science get the same id; changing any field changes the
id (enforced by a hypothesis test).  Seed *order* is immaterial: seeds
are a set of replications, so they are sorted before hashing.

The module-level :data:`SCENARIOS` registry maps each figure driver to a
builder that turns CLI arguments into a spec, so ``repro fig2 --store …``
and programmatic use agree on identity.  Specs are data, not behaviour:
the driver still runs through :mod:`repro.harness.experiments`; the spec
only fixes *which* experiment the resulting record claims to be.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping

from repro.store.records import canonical_json

#: Schema tag for the canonical scenario dict embedded in records.
SCENARIO_SCHEMA = "repro.store.scenario/1"


def _tuplize(value: Any) -> Any:
    """Recursively freeze lists into tuples so specs stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplize(v) for v in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, hashable experiment identity.

    ``params`` holds driver-specific knobs (e.g. fig8b's SM-count sweep
    axis, churn rates) as a sorted tuple of ``(key, value)`` pairs so
    construction order never leaks into the id.
    """

    name: str
    kind: str
    workloads: tuple[tuple[str, ...], ...] = ()
    policy: str | None = None
    faults: tuple[float, ...] = ()
    arrivals: tuple[float, ...] = ()
    backend: str | None = None
    seeds: tuple[int, ...] = ()
    cycles: int | None = None
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", _tuplize(self.workloads))
        object.__setattr__(self, "faults", _tuplize(self.faults))
        object.__setattr__(self, "arrivals", _tuplize(self.arrivals))
        object.__setattr__(self, "seeds", _tuplize(self.seeds))
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted(_tuplize(params)))
        object.__setattr__(self, "params", params)

    # ----------------------------------------------------------- identity

    def canonical(self) -> dict[str, Any]:
        """The canonical dict the scenario id is hashed over.  Seeds are
        sorted (replication sets, not sequences); params were sorted at
        construction time."""
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "workloads": [list(w) for w in self.workloads],
            "policy": self.policy,
            "faults": list(self.faults),
            "arrivals": list(self.arrivals),
            "backend": self.backend,
            "seeds": sorted(self.seeds),
            "cycles": self.cycles,
            "params": [[k, v] for k, v in self.params],
        }

    @staticmethod
    def id_of(canonical_dict: Mapping[str, Any]) -> str:
        """sha256 of a canonical scenario dict (seeds re-sorted so dicts
        from foreign sources hash identically to native specs)."""
        d = dict(canonical_dict)
        d.setdefault("schema", SCENARIO_SCHEMA)
        if isinstance(d.get("seeds"), (list, tuple)):
            d["seeds"] = sorted(d["seeds"])
        return hashlib.sha256(canonical_json(d).encode()).hexdigest()

    def scenario_id(self) -> str:
        return self.id_of(self.canonical())

    # --------------------------------------------------------- derivation

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The single-replication variant of this spec."""
        return replace(self, seeds=(seed,))

    @classmethod
    def from_canonical(cls, d: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        kwargs = {k: _tuplize(v) for k, v in d.items() if k in known}
        if "params" in kwargs:
            kwargs["params"] = tuple(
                (k, _tuplize(v)) for k, v in kwargs["params"]
            )
        return cls(**kwargs)


#: Figure-driver registry: name → builder(seed, backend, **kwargs) → spec.
SCENARIOS: dict[str, Callable[..., ScenarioSpec]] = {}

#: The typed payload schema each figure driver's record carries.
PAYLOAD_SCHEMAS: dict[str, str] = {
    "fig2": "repro.store.fig2/1",
    "fig3": "repro.store.fig3/1",
    "fig4": "repro.store.fig4/1",
    "fig5": "repro.store.accuracy/1",
    "fig6": "repro.store.accuracy/1",
    "fig7": "repro.store.distribution/1",
    "fig8a": "repro.store.sensitivity/1",
    "fig8b": "repro.store.sensitivity/1",
    "fig9": "repro.store.fig9/1",
    "fig-degradation": "repro.store.degradation/1",
    "fig-churn": "repro.store.churn/1",
}


def register_scenario(
    name: str,
) -> Callable[[Callable[..., ScenarioSpec]], Callable[..., ScenarioSpec]]:
    def deco(fn: Callable[..., ScenarioSpec]) -> Callable[..., ScenarioSpec]:
        SCENARIOS[name] = fn
        return fn
    return deco


def scenario_for(
    name: str,
    seed: int | None = None,
    backend: str | None = None,
    **kwargs: Any,
) -> ScenarioSpec:
    """Build the registered spec for figure driver ``name``.

    Unknown drivers raise a one-line :class:`ValueError` listing what is
    registered (the inspect error contract — callers surface it verbatim).
    """
    try:
        builder = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {name!r} (registered: {known})"
        ) from None
    return builder(seed=seed, backend=backend, **kwargs)


def _pairs(pairs: Iterable[Iterable[str]] | None) -> tuple[tuple[str, ...], ...]:
    from repro.harness.experiments import DEFAULT_PAIRS

    if pairs is None:
        return tuple(tuple(p) for p in DEFAULT_PAIRS)
    return tuple(tuple(p) for p in pairs)


def _seeds(seed: int | None) -> tuple[int, ...]:
    from repro.config import GPUConfig

    return (GPUConfig.seed if seed is None else seed,)


def _pair_scenario(
    fig: str, kind: str, seed: int | None, backend: str | None,
    pairs: Iterable[Iterable[str]] | None = None,
    policy: str | None = None,
    **params: Any,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=fig,
        kind=kind,
        workloads=_pairs(pairs),
        policy=policy,
        backend=backend,
        seeds=_seeds(seed),
        params=tuple(sorted(params.items())),
    )


@register_scenario("fig2")
def _fig2(seed=None, backend=None, pairs=None, **kw) -> ScenarioSpec:
    if pairs is None:
        pairs = (("SD", "SB"), ("SD", "VA"), ("SD", "SA"))
    return _pair_scenario("fig2", "unfairness-baseline", seed, backend, pairs, **kw)


@register_scenario("fig3")
def _fig3(seed=None, backend=None, **kw) -> ScenarioSpec:
    # Single synthetic kernel swept over memory intensity — no suite
    # workloads; the cpm sweep axis is fixed by the driver.
    return ScenarioSpec(
        name="fig3", kind="service-rate-correlation",
        backend=backend, seeds=_seeds(seed),
        params=tuple(sorted(kw.items())),
    )


@register_scenario("fig4")
def _fig4(seed=None, backend=None, partners=None, **kw) -> ScenarioSpec:
    partners = tuple(partners) if partners is not None else ("SA", "VA", "QR")
    return ScenarioSpec(
        name="fig4", kind="mbb-request-conservation",
        workloads=tuple(("SB", p) for p in partners),
        backend=backend, seeds=_seeds(seed),
        params=tuple(sorted(kw.items())),
    )


@register_scenario("fig5")
def _fig5(seed=None, backend=None, pairs=None, **kw) -> ScenarioSpec:
    return _pair_scenario("fig5", "two-app-accuracy", seed, backend, pairs, **kw)


@register_scenario("fig6")
def _fig6(seed=None, backend=None, pairs=None, **kw) -> ScenarioSpec:
    return _pair_scenario("fig6", "four-app-accuracy", seed, backend, pairs, **kw)


@register_scenario("fig7")
def _fig7(seed=None, backend=None, pairs=None, **kw) -> ScenarioSpec:
    return _pair_scenario("fig7", "error-distribution", seed, backend, pairs, **kw)


@register_scenario("fig8a")
def _fig8a(seed=None, backend=None, pairs=None, splits=None, **kw) -> ScenarioSpec:
    if splits is not None:
        kw["splits"] = _tuplize(splits)
    return _pair_scenario("fig8a", "smsplit-sensitivity", seed, backend, pairs, **kw)


@register_scenario("fig8b")
def _fig8b(seed=None, backend=None, pairs=None, sm_counts=None, **kw) -> ScenarioSpec:
    if sm_counts is not None:
        kw["sm_counts"] = _tuplize(sm_counts)
    return _pair_scenario("fig8b", "smcount-sensitivity", seed, backend, pairs, **kw)


@register_scenario("fig9")
def _fig9(seed=None, backend=None, pairs=None, **kw) -> ScenarioSpec:
    if pairs is None:
        from repro.harness.experiments import pair_list

        pairs = tuple(p for p in pair_list() if "BG" not in p)
    return _pair_scenario(
        "fig9", "fairness-policy", seed, backend, pairs, policy="dase_fair", **kw
    )


@register_scenario("fig-degradation")
def _fig_degradation(
    seed=None, backend=None, pair=None, sigmas=None, **kw
) -> ScenarioSpec:
    from repro.harness.experiments import DEFAULT_SIGMAS

    return ScenarioSpec(
        name="fig-degradation",
        kind="fault-degradation",
        workloads=(tuple(pair) if pair is not None else ("SD", "SB"),),
        faults=tuple(DEFAULT_SIGMAS if sigmas is None else sigmas),
        backend=backend,
        seeds=(7,) if seed is None else (seed,),
        params=tuple(sorted(kw.items())),
    )


@register_scenario("fig-churn")
def _fig_churn(
    seed=None, backend=None, base=None, pool=None, rates=None, **kw
) -> ScenarioSpec:
    from repro.opensys.churn import DEFAULT_RATES

    return ScenarioSpec(
        name="fig-churn",
        kind="open-system-churn",
        workloads=(
            tuple(base) if base is not None else ("SD", "SB"),
            tuple(pool) if pool is not None else ("NN", "VA", "SC"),
        ),
        arrivals=tuple(DEFAULT_RATES if rates is None else rates),
        backend=backend,
        seeds=(2016,) if seed is None else (seed,),
        params=tuple(sorted(kw.items())),
    )
