"""repro.store — scenario registry + hash-addressed results store.

The longitudinal (fourth) observability scope, above run → model → sweep:

* :class:`ScenarioSpec` (:mod:`repro.store.registry`) — a declarative,
  hashable experiment identity (workloads, policy, faults, arrivals,
  backend, seeds, cycle budget → canonical sha256 scenario id); every
  figure driver registers a builder in :data:`SCENARIOS`;
* :class:`ResultStore` (:mod:`repro.store.records`) — content-addressed,
  schema-versioned JSON records (``repro.store.record/1``) under one
  store directory with an append-ordered index, atomic writes, full
  provenance, and a migration shim for legacy per-figure JSON;
* :mod:`repro.store.trajectory` — cross-run accuracy/fairness/perf
  series per scenario, rendered as text tables and a self-contained
  HTML dashboard (``repro trajectory``).

CLI surface: ``repro store list|show|record|import|gc|diff`` and
``repro trajectory`` (see docs/results-store.md).
"""

from __future__ import annotations

from repro.store.records import (
    INDEX_SCHEMA,
    LEGACY_SCHEMA,
    RECORD_SCHEMA,
    ResultStore,
    StoreRecord,
    canonical_json,
    content_id,
    iter_payloads,
)
from repro.store.registry import (
    PAYLOAD_SCHEMAS,
    SCENARIO_SCHEMA,
    SCENARIOS,
    ScenarioSpec,
    register_scenario,
    scenario_for,
)
from repro.store.trajectory import (
    EXTRACTORS,
    export_trajectory_report,
    load_bench_trajectory,
    metrics_of,
    render_trajectory_report,
    trajectory,
    trajectory_table,
)

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "SCENARIO_SCHEMA",
    "PAYLOAD_SCHEMAS",
    "register_scenario",
    "scenario_for",
    "ResultStore",
    "StoreRecord",
    "RECORD_SCHEMA",
    "INDEX_SCHEMA",
    "LEGACY_SCHEMA",
    "canonical_json",
    "content_id",
    "iter_payloads",
    "EXTRACTORS",
    "metrics_of",
    "trajectory",
    "trajectory_table",
    "load_bench_trajectory",
    "render_trajectory_report",
    "export_trajectory_report",
]
