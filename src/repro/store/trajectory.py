"""Cross-run trajectory views over a :class:`~repro.store.records.ResultStore`.

The longitudinal surface of the observability stack: where ``repro
inspect`` summarizes one recording and ``repro diff`` compares two, a
trajectory walks *every* recording of each scenario in index order and
extracts the headline metrics the paper defends — DASE estimation error,
unfairness, harmonic speedup — into per-scenario series.  Rendered two
ways:

* :func:`trajectory_table` — a text table per scenario (one row per
  recording, one column per metric) for terminals and CI logs;
* :func:`render_trajectory_report` — a self-contained HTML dashboard
  (inline SVG sparklines in the repo's standard charting idiom, via
  :mod:`repro.obs.report`), optionally folding in the committed
  ``BENCH_trajectory.json`` perf history so accuracy/fairness trends and
  benchmark trends read off one page.

Metric extraction is keyed by ``payload_schema`` (:data:`EXTRACTORS`);
unknown schemas fall back to the payload's top-level numeric scalars, so
legacy imports still chart.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Callable

from repro.store.records import ResultStore, StoreRecord, iter_payloads


def _mean(vals: list[float]) -> float | None:
    return sum(vals) / len(vals) if vals else None


def _metrics_fig2(p: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    unf = [v for v in (p.get("unfairness") or {}).values()
           if isinstance(v, (int, float))]
    if unf:
        out["unfairness.mean"] = _mean(unf)
        out["unfairness.max"] = max(unf)
    if isinstance(p.get("sd_alone_bw"), (int, float)):
        out["sd_alone_bw"] = p["sd_alone_bw"]
    return out


def _metrics_fig3(p: dict) -> dict[str, float]:
    out = {}
    if isinstance(p.get("correlation"), (int, float)):
        out["correlation"] = p["correlation"]
    return out


def _metrics_fig4(p: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    alone = p.get("alone_rate")
    if isinstance(alone, (int, float)):
        out["alone_rate"] = alone
        ratios = [
            sum(pair) / alone
            for pair in (p.get("shared_rates") or {}).values()
            if alone and isinstance(pair, list) and len(pair) == 2
        ]
        if ratios:  # conservation: shared-sum ÷ alone ≈ 1.0
            out["conservation.mean"] = _mean(ratios)
    return out


def _metrics_accuracy(p: dict) -> dict[str, float]:
    return {
        f"error.{m}": v
        for m, v in (p.get("mean_error") or {}).items()
        if isinstance(v, (int, float))
    }


def _metrics_distribution(p: dict) -> dict[str, float]:
    # fig7 payload: model → {bin label → fraction}; the headline
    # longitudinal signal is the best-bin mass (fraction of estimates
    # within 10% of the measured slowdown).
    out: dict[str, float] = {}
    for model, bins in p.items():
        if isinstance(bins, dict) and bins:
            first = next(iter(sorted(bins)))
            for label, frac in bins.items():
                if label.startswith("<"):
                    first = label
                    break
            if isinstance(bins.get(first), (int, float)):
                out[f"{model}.{first}"] = bins[first]
    return out


def _metrics_sensitivity(p: dict) -> dict[str, float]:
    return {
        f"error.{label}": v
        for label, v in (p.get("dase_errors") or {}).items()
        if isinstance(v, (int, float))
    }


def _metrics_fig9(p: dict) -> dict[str, float]:
    out = {}
    for k in ("mean_unfairness_improvement", "mean_hspeedup_improvement"):
        if isinstance(p.get(k), (int, float)):
            out[k.removeprefix("mean_")] = p[k]
    return out


def _metrics_degradation(p: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    errs = {float(s): v for s, v in (p.get("dase_error") or {}).items()}
    unfs = {float(s): v for s, v in (p.get("unfairness") or {}).items()}
    if errs:
        top = max(errs)
        out["error.clean"] = errs.get(0.0, errs[min(errs)])
        out[f"error.sigma{top:g}"] = errs[top]
    if unfs:
        top = max(unfs)
        out[f"unfairness.sigma{top:g}"] = unfs[top]
    if "error_monotone" in p:
        out["error_monotone"] = 1.0 if p["error_monotone"] else 0.0
    return out


def _metrics_churn(p: dict) -> dict[str, float]:
    out: dict[str, float] = {}
    for policy, curve in (p.get("dase_error") or {}).items():
        vals = [v for v in curve.values() if isinstance(v, (int, float))]
        if vals:
            out[f"error.{policy}"] = _mean(vals)
    if isinstance(p.get("disagreements"), list):
        out["metric_disagreements"] = float(len(p["disagreements"]))
    return out


def _metrics_generic(p: Any) -> dict[str, float]:
    """Fallback for unknown/legacy schemas: top-level numeric scalars."""
    if not isinstance(p, dict):
        return {}
    return {
        k: float(v) for k, v in p.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


#: payload schema tag → extractor(payload) → {metric name: value}.
EXTRACTORS: dict[str, Callable[[Any], dict[str, float]]] = {
    "repro.store.fig2/1": _metrics_fig2,
    "repro.store.fig3/1": _metrics_fig3,
    "repro.store.fig4/1": _metrics_fig4,
    "repro.store.accuracy/1": _metrics_accuracy,
    "repro.store.distribution/1": _metrics_distribution,
    "repro.store.sensitivity/1": _metrics_sensitivity,
    "repro.store.fig9/1": _metrics_fig9,
    "repro.store.degradation/1": _metrics_degradation,
    "repro.store.churn/1": _metrics_churn,
}


def metrics_of(record: StoreRecord) -> dict[str, float]:
    """Headline metrics of one record, per its payload schema."""
    extractor = EXTRACTORS.get(record.payload_schema, _metrics_generic)
    try:
        return extractor(record.payload)
    except (TypeError, ValueError, KeyError):
        return {}


def trajectory(
    store: ResultStore, scenario: str | None = None
) -> dict[str, dict[str, Any]]:
    """Per-scenario metric series over the store's recording log.

    Series are grouped by scenario *name* (the registry key), not exact
    scenario id, so replications with different seeds chart as one
    trajectory; the per-point ``scenario_id`` stays available for drill-
    down.  Returns ``{name: {"points": [...], "metrics": {metric:
    [(recording#, value)]}}}``.
    """
    out: dict[str, dict[str, Any]] = {}
    for entry, rec in iter_payloads(store, scenario):
        name = entry.get("scenario_name", "?")
        row = out.setdefault(name, {"points": [], "metrics": {}})
        idx = len(row["points"])
        metrics = metrics_of(rec)
        row["points"].append({
            "record_id": rec.record_id,
            "scenario_id": rec.scenario_id,
            "created_at": entry.get("created_at"),
            "git_rev": entry.get("git_rev"),
            "metrics": metrics,
        })
        for m, v in metrics.items():
            row["metrics"].setdefault(m, []).append((idx, v))
    return out


def trajectory_table(
    store: ResultStore, scenario: str | None = None
) -> str:
    """Text view: one block per scenario, one row per recording."""
    from repro.obs.inspect import _table

    traj = trajectory(store, scenario)
    if not traj:
        return "store holds no recordings" + (
            f" of scenario {scenario!r}" if scenario else ""
        )
    blocks: list[str] = []
    for name, row in traj.items():
        metric_names = sorted(row["metrics"])
        heads = ["#", "record", "rev"] + metric_names
        rows = []
        for i, pt in enumerate(row["points"]):
            rev = (pt.get("git_rev") or "-")[:9]
            cells = [str(i), pt["record_id"][:12], rev]
            for m in metric_names:
                v = pt["metrics"].get(m)
                cells.append("-" if v is None else f"{v:.4g}")
            rows.append(cells)
        blocks.append(
            f"scenario {name} ({len(rows)} recording"
            f"{'s' if len(rows) != 1 else ''})\n" + _table(heads, rows)
        )
    return "\n\n".join(blocks)


def load_bench_trajectory(
    path: str | os.PathLike,
) -> dict[str, list[tuple[int, float]]]:
    """Series from the committed ``BENCH_trajectory.json`` perf history:
    bench name → [(record#, normalized seconds)]."""
    p = pathlib.Path(path)
    if not p.is_file():
        return {}
    try:
        with p.open() as fh:
            payload = json.load(fh)
    except (json.JSONDecodeError, OSError):
        return {}
    series: dict[str, list[tuple[int, float]]] = {}
    for i, rec in enumerate(payload.get("records") or []):
        for bench, row in (rec.get("benches") or {}).items():
            v = row.get("normalized", row.get("seconds"))
            if isinstance(v, (int, float)):
                series.setdefault(bench, []).append((i, float(v)))
    return series


def _sparkline(name: str, metric: str, points: list[tuple[int, float]],
               slot: int) -> str:
    from repro.obs.report import line_chart

    return line_chart(
        f"{name} · {metric}",
        [{"label": metric, "slot": slot, "points": points}],
        y_label=metric, x_label="recording #",
    )


def render_trajectory_report(
    store: ResultStore,
    scenario: str | None = None,
    bench_path: str | os.PathLike | None = None,
    title: str = "repro longitudinal trajectory",
) -> str:
    """Self-contained HTML dashboard: per-scenario metric sparklines plus
    (when available) the committed benchmark perf history."""
    from repro.obs.report import line_chart, render_page

    traj = trajectory(store, scenario)
    body: list[str] = []
    for name, row in traj.items():
        n = len(row["points"])
        body.append(
            f"<h2>scenario {name}</h2>"
            f"<p class='note'>{n} recording{'s' if n != 1 else ''} · "
            f"scenario ids {', '.join(sorted({pt['scenario_id'][:12] for pt in row['points']}))}"
            "</p>"
        )
        for slot, (metric, points) in enumerate(sorted(row["metrics"].items())):
            chart = _sparkline(name, metric, points, slot)
            if chart:
                body.append(chart)
        # Point provenance table under each scenario.
        rows = "".join(
            f"<tr><td>{i}</td><td><code>{pt['record_id'][:12]}</code></td>"
            f"<td><code>{(pt.get('git_rev') or '-')[:9]}</code></td>"
            f"<td>{pt.get('created_at') or '-'}</td></tr>"
            for i, pt in enumerate(row["points"])
        )
        body.append(
            "<details><summary>recordings</summary>"
            "<table><thead><tr><th>#</th><th>record</th><th>rev</th>"
            f"<th>recorded</th></tr></thead><tbody>{rows}</tbody></table>"
            "</details>"
        )
    if not traj:
        body.append("<p class='note'>store holds no recordings yet</p>")
    bench = load_bench_trajectory(bench_path) if bench_path else {}
    if bench:
        body.append("<h2>benchmark perf history (BENCH_trajectory.json)</h2>")
        series = [
            {"label": bench_name, "slot": slot, "points": points}
            for slot, (bench_name, points) in enumerate(sorted(bench.items()))
        ]
        chart = line_chart(
            "normalized benchmark seconds per committed record",
            series, y_label="normalized s", x_label="record #",
        )
        if chart:
            body.append(chart)
    return render_page(
        title,
        "generated by repro trajectory — hash-addressed results store, "
        "longitudinal scope",
        "\n".join(body),
    )


def export_trajectory_report(
    path: str | os.PathLike,
    store: ResultStore,
    scenario: str | None = None,
    bench_path: str | os.PathLike | None = None,
    title: str = "repro longitudinal trajectory",
) -> str:
    html = render_trajectory_report(
        store, scenario=scenario, bench_path=bench_path, title=title
    )
    with open(path, "w") as fh:
        fh.write(html)
    return html
