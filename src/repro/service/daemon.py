"""The ``repro serve`` daemon: a local HTTP job API over the harness.

One :class:`ReproService` owns four things:

* a **job table** of deduplicated jobs (keyed by the protocol fingerprint,
  so two tenants asking the same question subscribe to one simulation);
* the **admission queue** (:class:`~repro.service.queue.AdmissionQueue`)
  deciding which tenant's request runs next;
* a single **scheduler thread** that drains the queue through the hardened
  :func:`~repro.harness.parallel.run_jobs` harness — one request at a time,
  fanned out across ``jobs`` worker processes, with the telemetry bus and
  sweep checkpoints under ``state_dir`` so a kill -9'd daemon resumes
  mid-sweep on restart;
* a **journal** (``state_dir/journal.jsonl``) of accepted submissions and
  terminal states, replayed on startup to re-enqueue interrupted work.

Endpoints (all JSON; see docs/service.md for the schema):

=======  =========================  ==========================================
POST     /v1/jobs                   submit {tenant, kind, spec}
GET      /v1/jobs                   list known jobs
GET      /v1/jobs/<id>              status / result
GET      /v1/jobs/<id>/stream       JSONL event stream (``?sse=1`` for SSE)
POST     /v1/jobs/<id>/cancel       cancel a queued job
GET      /v1/scenarios              registered + recorded scenarios
GET      /v1/queue                  queue state, fairness metrics, audit
GET      /v1/report                 SweepStats over the daemon's bus
GET      /v1/healthz                liveness
POST     /v1/shutdown               graceful stop
=======  =========================  ==========================================

Misbehaving clients get one-line JSON errors: malformed JSON and protocol
violations are 400, oversized bodies 413, unknown jobs 404 — the daemon
never dies on a bad request.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service import protocol
from repro.service.queue import AdmissionQueue, QueuedRequest

ENDPOINT_FILE = "endpoint.json"
JOURNAL_FILE = "journal.jsonl"

#: Job lifecycle states.
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled"
)
TERMINAL = (DONE, FAILED, CANCELLED)


class Job:
    """One deduplicated unit of service work and its event history."""

    def __init__(self, job_id: str, kind: str, spec: dict[str, Any]) -> None:
        self.job_id = job_id
        self.kind = kind
        self.spec = spec
        self.state = QUEUED
        self.tenants: list[str] = []
        self.rids: list[str] = []
        self.events: list[dict[str, Any]] = []
        self.result: Any = None
        self.error: str | None = None
        self.record_id: str | None = None
        self.scenario_id: str | None = None
        self.queue_entry: QueuedRequest | None = None
        self.submitted_t = time.time()
        self.finished_t: float | None = None
        self.simulations = 0  # times this job actually executed

    def subscribe(self, tenant: str, rid: str) -> None:
        if tenant not in self.tenants:
            self.tenants.append(tenant)
        self.rids.append(rid)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": protocol.SCHEMA,
            "job": self.job_id,
            "kind": self.kind,
            "spec": self.spec,
            "status": self.state,
            "tenants": list(self.tenants),
            "subscribers": len(self.rids),
            "simulations": self.simulations,
            "result": self.result,
            "error": self.error,
            "record_id": self.record_id,
            "scenario_id": self.scenario_id,
        }


class ReproService:
    """The daemon: job table + admission queue + scheduler + HTTP server."""

    def __init__(
        self,
        state_dir: str | os.PathLike,
        *,
        store_dir: str | None = None,
        cache_dir: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        policy: str = "fair",
        retries: int = 0,
        allow_chaos: bool = False,
    ) -> None:
        self.state_dir = pathlib.Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.store_dir = store_dir
        self.cache_dir = cache_dir or str(self.state_dir / "cache")
        self.host = host
        self._port = port
        self.n_jobs = max(1, jobs)
        self.retries = retries
        self.allow_chaos = allow_chaos
        self.queue = AdmissionQueue(policy)
        self.jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._stopping = False
        self._server: ThreadingHTTPServer | None = None
        self._scheduler: threading.Thread | None = None
        self._ckpt_dir = str(self.state_dir / "ckpt")
        self._bus_dir = str(self.state_dir / "bus")
        self._chaos_dir = self.state_dir / "chaos"
        self._journal_path = self.state_dir / JOURNAL_FILE
        for d in (self._ckpt_dir, self._bus_dir, self.cache_dir):
            pathlib.Path(d).mkdir(parents=True, exist_ok=True)
        self._recover()

    # ------------------------------------------------------------- journal

    def _journal(self, record: dict[str, Any]) -> None:
        record = dict(record, ts=time.time())
        with self._journal_path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _recover(self) -> None:
        """Replay the journal: re-enqueue interrupted jobs, keep tombstones
        of completed ones (their payloads live in the results store)."""
        if not self._journal_path.is_file():
            return
        submits: dict[str, dict] = {}
        terminal: dict[str, dict] = {}
        for line in self._journal_path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a kill -9: ignore
            if rec.get("t") == "submit":
                entry = submits.setdefault(
                    rec["job"],
                    {"kind": rec["kind"], "spec": rec["spec"], "tenants": []},
                )
                entry["tenants"].append(rec["tenant"])
            elif rec.get("t") == "terminal":
                terminal[rec["job"]] = rec
        for job_id, entry in submits.items():
            job = Job(job_id, entry["kind"], entry["spec"])
            fin = terminal.get(job_id)
            if fin is not None:
                job.state = fin.get("state", DONE)
                job.record_id = fin.get("record_id")
                job.scenario_id = fin.get("scenario_id")
                job.tenants = entry["tenants"]
                job.events.append(protocol.event(
                    "done" if job.state == DONE else job.state,
                    job=job_id, recovered=True, record_id=job.record_id,
                ))
                self.jobs[job_id] = job
                continue
            # Interrupted: re-enqueue under the first tenant; the sweep
            # checkpoint under state_dir restores finished sub-jobs.
            self.jobs[job_id] = job
            for tenant in entry["tenants"]:
                req = self.queue.submit(tenant, job_id)
                job.subscribe(tenant, req.rid)
                if job.queue_entry is None:
                    job.queue_entry = req
            job.events.append(protocol.event(
                "queued", job=job_id, recovered=True,
                tenants=list(job.tenants),
            ))

    # ----------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Bind the server, start the scheduler, write the endpoint file."""
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((self.host, self._port), handler)
        self._server.daemon_threads = True
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler",
            daemon=True,
        )
        self._scheduler.start()
        endpoint = {
            "schema": protocol.SCHEMA,
            "host": self.host,
            "port": self.port,
            "url": self.url,
            "pid": os.getpid(),
        }
        (self.state_dir / ENDPOINT_FILE).write_text(
            json.dumps(endpoint, indent=1, sort_keys=True) + "\n"
        )
        return self.url

    def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            self._server.serve_forever(poll_interval=0.2)
        finally:
            self.stop()

    def stop(self) -> None:
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            self._cond.notify_all()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._scheduler is not None and self._scheduler.is_alive():
            self._scheduler.join(timeout=10.0)

    # ---------------------------------------------------------- submission

    def submit(self, request: protocol.JobRequest) -> dict[str, Any]:
        """Admit (or dedup) one validated request; returns the receipt."""
        job_id = request.job_id
        with self._cond:
            job = self.jobs.get(job_id)
            fresh = job is None or job.state in (FAILED, CANCELLED)
            if fresh:
                job = Job(job_id, request.kind, request.spec)
                self.jobs[job_id] = job
            req = None
            if fresh:
                req = self.queue.submit(request.tenant, job_id)
                job.queue_entry = req
            rid = req.rid if req is not None else f"sub{len(job.rids) + 1}"
            job.subscribe(request.tenant, rid)
            self._journal({
                "t": "submit", "job": job_id, "tenant": request.tenant,
                "kind": request.kind, "spec": request.spec, "rid": rid,
            })
            self._emit(job, protocol.event(
                "queued", job=job_id, tenant=request.tenant,
                deduped=not fresh, status=job.state,
            ))
            if fresh:
                self._cond.notify_all()
            return {
                "schema": protocol.SCHEMA,
                "job": job_id,
                "status": job.state,
                "deduped": not fresh,
                "tenant": request.tenant,
            }

    def cancel(self, job_id: str) -> dict[str, Any]:
        with self._cond:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            if job.state == QUEUED and job.queue_entry is not None:
                removed = self.queue.cancel(job.queue_entry.rid)
                if removed is not None:
                    job.state = CANCELLED
                    job.finished_t = time.time()
                    self._journal({
                        "t": "terminal", "job": job_id, "state": CANCELLED,
                    })
                    self._emit(job, protocol.event("cancelled", job=job_id))
                    self._cond.notify_all()
            return {
                "schema": protocol.SCHEMA,
                "job": job_id,
                "status": job.state,
                "cancelled": job.state == CANCELLED,
            }

    def _emit(self, job: Job, event: dict[str, Any]) -> None:
        """Append one stream event (caller holds the lock)."""
        job.events.append(event)
        self._cond.notify_all()

    # ----------------------------------------------------------- scheduler

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and len(self.queue) == 0:
                    self._cond.wait(timeout=0.5)
                if self._stopping:
                    return
                entry = self.queue.next()
                if entry is None:  # racing cancel emptied the queue
                    continue
                job = self.jobs[entry.job_id]
                job.state = RUNNING
                self._emit(job, protocol.event(
                    "admitted", job=job.job_id, tenant=entry.tenant,
                    waited_s=round(entry.wait_s(entry.start_t or 0.0), 4),
                ))
                self._emit(job, protocol.event("started", job=job.job_id))
            error = None
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 - fail the job, not the daemon
                error = f"{type(exc).__name__}: {exc}"
            with self._cond:
                self.queue.complete(entry)
                if error is None:
                    job.state = DONE
                else:
                    job.state = FAILED
                    job.error = error
                job.finished_t = time.time()
                self._journal({
                    "t": "terminal", "job": job.job_id, "state": job.state,
                    "record_id": job.record_id,
                    "scenario_id": job.scenario_id,
                })
                self._emit(job, protocol.event(
                    "done" if error is None else "failed",
                    job=job.job_id, error=error, record_id=job.record_id,
                ))

    # ----------------------------------------------------------- execution

    def _progress(self, job: Job):
        service = self

        class _Progress:
            """run_jobs reporter that forwards completions as events."""

            def __init__(self) -> None:
                self.done = 0

            def job_done(self, outcome) -> None:
                self.done += 1
                with service._cond:
                    service._emit(job, protocol.event(
                        "progress", job=job.job_id, done=self.done,
                        key=outcome.job.key, ok=outcome.ok,
                        resumed=outcome.resumed,
                    ))

            def close(self) -> None:
                pass

        return _Progress()

    def _execute(self, job: Job) -> None:
        job.simulations += 1
        if job.kind in ("workload", "sweep"):
            job.result = self._run_workloads(job)
        elif job.kind == "scenario":
            job.result = self._run_scenario(job)
        else:
            job.result = self._run_chaos(job)

    def _outcome_dict(self, outcome) -> dict[str, Any]:
        res = outcome.result
        return {
            "key": outcome.job.key,
            "ok": outcome.ok,
            "attempts": outcome.attempts,
            "resumed": outcome.resumed,
            "failure_kind": outcome.failure_kind,
            "error": (outcome.error or "").strip().splitlines()[-1:] or None,
            "result": res.to_dict() if hasattr(res, "to_dict") else res,
        }

    def _run_workloads(self, job: Job) -> dict[str, Any]:
        from repro.harness import scaled_config
        from repro.harness.parallel import WorkloadJob, run_jobs

        spec = job.spec
        workloads = (
            [spec["apps"]] if job.kind == "workload" else spec["workloads"]
        )
        seed = spec.get("seed")
        cfg = scaled_config(seed=seed) if seed is not None else None
        wjobs = [
            WorkloadJob(
                apps=tuple(apps), config=cfg,
                shared_cycles=spec.get("cycles"),
                policy=spec.get("policy"), cache_dir=self.cache_dir,
                backend=spec.get("backend"),
            )
            for apps in workloads
        ]
        outcomes = run_jobs(
            wjobs, n_jobs=self.n_jobs, progress=self._progress(job),
            retries=self.retries, checkpoint=self._ckpt_dir,
            bus=self._bus_dir,
        )
        out: dict[str, Any] = {
            "kind": job.kind,
            "outcomes": [self._outcome_dict(o) for o in outcomes],
            "ok": sum(1 for o in outcomes if o.ok),
            "failed": sum(1 for o in outcomes if not o.ok),
        }
        if job.kind == "workload" and outcomes and outcomes[0].ok:
            out["result"] = out["outcomes"][0]["result"]
        if out["failed"]:
            # Keep the partial outcomes visible to subscribers, then fail.
            job.result = out
            raise RuntimeError(
                f"{out['failed']}/{len(outcomes)} workload jobs failed"
            )
        return out

    def _run_scenario(self, job: Job) -> dict[str, Any]:
        from repro.harness import figures as fg
        from repro.harness.parallel import (
            set_default_progress,
            set_sweep_defaults,
        )

        resolved = self.resolve_scenario(job.spec)
        params = resolved.get("params") or {}
        # The figure drivers run their own sweeps; route them through the
        # daemon's checkpoint + bus dirs via the ambient sweep defaults
        # (single scheduler thread, so the globals are uncontended) — the
        # same pattern `repro fig*` uses for --resume-dir/--sweep-trace.
        set_default_progress(lambda total: self._progress(job))
        set_sweep_defaults(
            retries=self.retries, checkpoint_dir=self._ckpt_dir,
            bus_dir=self._bus_dir,
        )
        try:
            run = fg.run_figure(
                resolved["name"], seed=resolved.get("seed"),
                jobs=self.n_jobs, cache_dir=self.cache_dir,
                backend=resolved.get("backend"), **params,
            )
        finally:
            set_default_progress(None)
            set_sweep_defaults(timeout_s=None, retries=0,
                               checkpoint_dir=None, bus_dir=None,
                               profile=False)
            from repro.obs import bus as obs_bus

            obs_bus.deactivate()
        out: dict[str, Any] = {
            "kind": "scenario",
            "figure": run.name,
            "payload": run.payload,
        }
        if self.store_dir is not None:
            rec, spec = fg.record_figure(self.store_dir, run)
            job.record_id = rec.record_id
            job.scenario_id = spec.scenario_id()
            out["record_id"] = rec.record_id
            out["scenario_id"] = job.scenario_id
        return out

    def _run_chaos(self, job: Job) -> dict[str, Any]:
        from repro.faults import chaos as ch
        from repro.faults.chaos import ChaosJob
        from repro.harness.parallel import run_jobs

        self._chaos_dir.mkdir(parents=True, exist_ok=True)
        spec = job.spec
        # Modes that kill or corrupt their own process (os._exit, poisoned
        # pickles) are only safe inside pool workers; run_jobs goes inline
        # when min(n_jobs, len(jobs)) <= 1, which would take the daemon
        # down with the job.  Fail such submissions cleanly instead.
        lethal = sorted({
            e["mode"] for e in spec["jobs"]
            if e["mode"] in (ch.MODE_EXIT, ch.MODE_FLAKY, ch.MODE_BAD_RESULT)
        })
        if lethal and min(self.n_jobs, len(spec["jobs"])) <= 1:
            raise RuntimeError(
                f"chaos modes {lethal} need a pooled run: submit >= 2 jobs "
                "to a daemon started with --jobs >= 2"
            )
        cjobs = [
            ChaosJob(
                name=f"{job.job_id[:12]}-{i}", mode=entry["mode"],
                payload=entry["payload"],
                state_dir=str(self._chaos_dir),
                flaky_failures=entry["flaky_failures"],
            )
            for i, entry in enumerate(spec["jobs"])
        ]
        outcomes = run_jobs(
            cjobs, n_jobs=self.n_jobs, progress=self._progress(job),
            retries=spec["retries"], bus=self._bus_dir,
        )
        out = {
            "kind": "chaos",
            "outcomes": [self._outcome_dict(o) for o in outcomes],
            "ok": sum(1 for o in outcomes if o.ok),
            "failed": sum(1 for o in outcomes if not o.ok),
        }
        if out["failed"]:
            # Same contract as workloads: partial outcomes stay visible to
            # subscribers, the job itself settles as failed.
            job.result = out
            raise RuntimeError(
                f"{out['failed']}/{len(outcomes)} chaos jobs failed"
            )
        return out

    # ------------------------------------------------------------ catalogs

    def _store(self):
        from repro.store import ResultStore

        return ResultStore(self.store_dir) if self.store_dir else None

    def scenario_catalog(self) -> list[dict[str, Any]]:
        """Registered scenario builders (default-parameter ids) plus every
        scenario already recorded in the daemon's store."""
        from repro.store import SCENARIOS, scenario_for

        rows: dict[str, dict[str, Any]] = {}
        for name in sorted(SCENARIOS):
            sid = scenario_for(name).scenario_id()
            rows[sid] = {
                "name": name, "scenario_id": sid, "source": "registry",
                "records": 0,
            }
        store = self._store()
        if store is not None:
            for row in store.scenarios():
                sid = row["scenario_id"]
                entry = rows.setdefault(sid, {
                    "name": row["scenario_name"], "scenario_id": sid,
                    "source": "store", "records": 0,
                })
                entry["records"] = row["records"]
        return sorted(rows.values(), key=lambda r: (r["name"],
                                                    r["scenario_id"]))

    def resolve_scenario(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Resolve a scenario spec (by name or by id prefix) to run_figure
        kwargs.  Ids cover registry defaults and store-recorded scenarios
        whose spec is reproducible from (name, seed, backend) alone."""
        from repro.store import SCENARIOS, scenario_for

        if spec.get("name"):
            return {k: spec.get(k) for k in ("name", "seed", "backend",
                                             "params")}
        target = spec["id"]
        candidates: dict[str, dict[str, Any]] = {}
        for name in sorted(SCENARIOS):
            sid = scenario_for(name).scenario_id()
            candidates[sid] = {"name": name, "seed": None, "backend": None,
                               "params": {}}
        store = self._store()
        if store is not None:
            for row in store.scenarios():
                sid = row["scenario_id"]
                if sid in candidates:
                    continue
                rec = store.load(f"{row['scenario_name']}@-1")
                sc = rec.scenario
                seeds = list(sc.get("seeds") or ())
                kwargs = {
                    "name": sc.get("name"),
                    "seed": seeds[0] if len(seeds) == 1 else None,
                    "backend": sc.get("backend"),
                    "params": {},
                }
                try:
                    rebuilt = scenario_for(
                        kwargs["name"], seed=kwargs["seed"],
                        backend=kwargs["backend"],
                    ).scenario_id()
                except ValueError:
                    continue
                if rebuilt == sid:  # reproducible from defaults
                    candidates[sid] = kwargs
        matches = sorted(
            sid for sid in candidates if sid.startswith(target)
        )
        if not matches:
            raise ValueError(
                f"no servable scenario matches id {target!r} "
                "(see GET /v1/scenarios)"
            )
        if len(matches) > 1:
            raise ValueError(
                f"scenario id {target!r} is ambiguous: "
                f"{', '.join(m[:12] for m in matches)}"
            )
        resolved = dict(candidates[matches[0]])
        if spec.get("seed") is not None:
            resolved["seed"] = spec["seed"]
        if spec.get("backend") is not None:
            resolved["backend"] = spec["backend"]
        if spec.get("params"):
            resolved["params"] = spec["params"]
        return resolved

    def report(self) -> dict[str, Any]:
        """SweepStats over everything the daemon's bus has seen."""
        from repro.obs.bus import SweepStats, read_bus

        records = read_bus(self._bus_dir)
        return SweepStats.from_records(records).to_dict()

    def health(self) -> dict[str, Any]:
        return {
            "schema": protocol.SCHEMA,
            "ok": True,
            "pid": os.getpid(),
            "jobs": len(self.jobs),
            "pending": len(self.queue),
            "policy": self.queue.policy,
            "store": self.store_dir,
        }


# --------------------------------------------------------------- HTTP layer


def _make_handler(service: ReproService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # ------------------------------------------------------- plumbing
        def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
            pass  # the daemon's own streams are the observable surface

        def _json(self, status: int, payload: dict[str, Any]) -> None:
            body = json.dumps(payload, indent=1, sort_keys=True).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, status: int, message: str) -> None:
            self._json(status, {"schema": protocol.SCHEMA, "error": message})

        def _body(self) -> Any:
            length = int(self.headers.get("Content-Length") or 0)
            if length > protocol.MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
            raw = self.rfile.read(length) if length else b""
            if not raw:
                raise _HttpError(400, "empty request body")
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"bad JSON: {exc}")

        # --------------------------------------------------------- routes
        def do_GET(self) -> None:  # noqa: N802 - stdlib name
            try:
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/v1/healthz":
                    self._json(200, service.health())
                elif path == "/v1/scenarios":
                    self._json(200, {
                        "schema": protocol.SCHEMA,
                        "scenarios": service.scenario_catalog(),
                    })
                elif path == "/v1/queue":
                    with service._lock:
                        snap = service.queue.snapshot()
                    self._json(200, snap)
                elif path == "/v1/report":
                    self._json(200, service.report())
                elif path == "/v1/jobs":
                    with service._lock:
                        rows = [
                            {"job": j.job_id, "kind": j.kind,
                             "status": j.state, "tenants": list(j.tenants)}
                            for j in service.jobs.values()
                        ]
                    self._json(200, {"schema": protocol.SCHEMA, "jobs": rows})
                elif path.startswith("/v1/jobs/"):
                    rest = path[len("/v1/jobs/"):]
                    if rest.endswith("/stream"):
                        self._stream(rest[:-len("/stream")])
                    else:
                        with service._lock:
                            job = service.jobs.get(rest)
                            payload = job.to_dict() if job else None
                        if payload is None:
                            self._error(404, f"unknown job {rest!r}")
                        else:
                            self._json(200, payload)
                else:
                    self._error(404, f"unknown path {path!r}")
            except _HttpError as exc:
                self._error(exc.status, exc.message)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 - never kill the daemon
                try:
                    self._error(500, f"{type(exc).__name__}: {exc}")
                except OSError:
                    pass

        def do_POST(self) -> None:  # noqa: N802 - stdlib name
            try:
                path = self.path.split("?", 1)[0].rstrip("/")
                if path == "/v1/jobs":
                    try:
                        request = protocol.parse_submit(
                            self._body(), allow_chaos=service.allow_chaos
                        )
                    except ValueError as exc:
                        raise _HttpError(400, str(exc))
                    self._json(202, service.submit(request))
                elif path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                    job_id = path[len("/v1/jobs/"):-len("/cancel")]
                    try:
                        self._json(200, service.cancel(job_id))
                    except KeyError:
                        self._error(404, f"unknown job {job_id!r}")
                elif path == "/v1/shutdown":
                    self._json(200, {"schema": protocol.SCHEMA,
                                     "stopping": True})
                    threading.Thread(target=service.stop,
                                     daemon=True).start()
                else:
                    self._error(404, f"unknown path {path!r}")
            except _HttpError as exc:
                self._error(exc.status, exc.message)
            except (BrokenPipeError, ConnectionResetError):
                pass
            except Exception as exc:  # noqa: BLE001
                try:
                    self._error(500, f"{type(exc).__name__}: {exc}")
                except OSError:
                    pass

        # ------------------------------------------------------ streaming
        def _stream(self, job_id: str) -> None:
            sse = "sse=1" in (self.path.split("?", 1) + [""])[1]
            with service._lock:
                job = service.jobs.get(job_id)
            if job is None:
                self._error(404, f"unknown job {job_id!r}")
                return
            self.send_response(200)
            self.send_header(
                "Content-Type",
                "text/event-stream" if sse else "application/x-ndjson",
            )
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            sent = 0
            while True:
                with service._cond:
                    if (
                        sent >= len(job.events)
                        and job.state not in TERMINAL
                        and not service._stopping
                    ):
                        service._cond.wait(timeout=0.5)
                    batch = job.events[sent:]
                    sent += len(batch)
                    terminal = job.state in TERMINAL or service._stopping
                if not batch and not terminal:
                    # Heartbeat so a blocked client's read never times out:
                    # a blank NDJSON line / an SSE comment, both ignorable.
                    self.wfile.write(b": ping\n\n" if sse else b"\n")
                    self.wfile.flush()
                    continue
                for event in batch:
                    line = json.dumps(event, sort_keys=True)
                    if sse:
                        self.wfile.write(f"data: {line}\n\n".encode())
                    else:
                        self.wfile.write((line + "\n").encode())
                self.wfile.flush()
                if terminal and sent >= len(job.events):
                    return

    return Handler


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
