"""Thin blocking client for the ``repro serve`` daemon.

Stdlib-only (urllib): submit jobs, poll status, iterate the JSONL event
stream, and wait for results.  Protocol errors surface as
:class:`ServiceError` carrying the daemon's one-line JSON error, so CLI
callers can keep the repository's one-line error contract.
"""

from __future__ import annotations

import json
import pathlib
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from repro.service import protocol
from repro.service.daemon import ENDPOINT_FILE, TERMINAL


class ServiceError(RuntimeError):
    """A daemon-side error (HTTP status + its one-line message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


def read_endpoint(state_dir: str) -> str:
    """The daemon URL recorded in ``state_dir`` by a running ``repro serve``."""
    path = pathlib.Path(state_dir) / ENDPOINT_FILE
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(
            f"no service endpoint under {state_dir} "
            f"(is `repro serve --state-dir {state_dir}` running?): {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"endpoint file {path} is corrupt: {exc}") from exc
    url = payload.get("url")
    if not isinstance(url, str) or not url.startswith("http"):
        raise ValueError(f"endpoint file {path} carries no url")
    return url


class ServiceClient:
    """Blocking HTTP client over one daemon endpoint."""

    def __init__(
        self,
        base_url: str | None = None,
        *,
        state_dir: str | None = None,
        timeout_s: float = 30.0,
    ) -> None:
        if base_url is None:
            if state_dir is None:
                raise ValueError("need base_url or state_dir")
            base_url = read_endpoint(state_dir)
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------ plumbing

    def _request(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except (json.JSONDecodeError, OSError):
                message = exc.reason
            raise ServiceError(exc.code, str(message)) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: "
                                  f"{exc.reason}") from exc

    # ------------------------------------------------------------- surface

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def scenarios(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/scenarios")["scenarios"]

    def queue(self) -> dict[str, Any]:
        return self._request("GET", "/v1/queue")

    def report(self) -> dict[str, Any]:
        return self._request("GET", "/v1/report")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def submit(
        self, kind: str, spec: dict[str, Any], *, tenant: str = "default"
    ) -> dict[str, Any]:
        return self._request("POST", "/v1/jobs", {
            "schema": protocol.SCHEMA, "tenant": tenant,
            "kind": kind, "spec": spec,
        })

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown")

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's JSONL events until it reaches a terminal state."""
        req = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/stream",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout_s)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get("error", "")
            except (json.JSONDecodeError, OSError):
                message = exc.reason
            raise ServiceError(exc.code, str(message)) from exc
        with resp:
            for line in resp:
                line = line.strip()
                if line:
                    yield json.loads(line.decode())

    def wait(
        self, job_id: str, *, timeout_s: float | None = None
    ) -> dict[str, Any]:
        """Block until the job is terminal; returns its final status dict."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        for _ in self.stream(job_id):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout_s}s"
                )
            continue
        status = self.status(job_id)
        if status["status"] not in TERMINAL:  # stream cut early: poll
            while status["status"] not in TERMINAL:
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} not terminal after {timeout_s}s"
                    )
                time.sleep(0.1)
                status = self.status(job_id)
        return status
