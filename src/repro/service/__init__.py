"""Simulation-as-a-service: the ``repro serve`` job daemon.

The service layer turns the repository's batch harness into a long-running
daemon with a local HTTP job API (:mod:`repro.service.daemon`), a
fairness-aware admission queue that schedules tenants the way DASE-Fair
schedules applications (:mod:`repro.service.queue`), a small JSON protocol
(:mod:`repro.service.protocol`), and a thin blocking client
(:mod:`repro.service.client`).  See docs/service.md.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ServiceError, read_endpoint
from repro.service.daemon import ReproService
from repro.service.protocol import (
    KINDS,
    SCHEMA,
    JobRequest,
    parse_submit,
    request_fingerprint,
)
from repro.service.queue import AdmissionQueue, QueueAudit, QueuedRequest

__all__ = [
    "AdmissionQueue",
    "JobRequest",
    "KINDS",
    "QueueAudit",
    "QueuedRequest",
    "ReproService",
    "SCHEMA",
    "ServiceClient",
    "ServiceError",
    "parse_submit",
    "read_endpoint",
    "request_fingerprint",
]
