"""The ``repro.service/1`` wire protocol: request validation + identity.

Every submission is normalized to a canonical ``(kind, spec)`` pair before
anything else happens; the sha256 of that canonical form is the job id, so
two equivalent submissions — same scenario and seed, same workload written
with defaults spelled out or omitted — collapse onto one job (the dedup
guarantee documented in docs/service.md).  Validation failures raise
one-line :class:`ValueError`\\ s, which the daemon maps to HTTP 400.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.store.records import canonical_json

#: Protocol schema tag carried by every request and response.
SCHEMA = "repro.service/1"

#: Request kinds the daemon accepts.  ``chaos`` is only admitted when the
#: daemon was started with ``allow_chaos`` (test/soak rigs).
KINDS = ("workload", "sweep", "scenario", "chaos")

#: Event types a job stream can carry, in lifecycle order.
EVENTS = ("queued", "admitted", "started", "progress", "done", "failed",
          "cancelled")

#: Upper bound on a submission body; a client sending more is misbehaving.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class JobRequest:
    """One validated submission: a tenant asking for a canonical job."""

    tenant: str
    kind: str
    spec: dict[str, Any]

    @property
    def job_id(self) -> str:
        return request_fingerprint(self.kind, self.spec)


def request_fingerprint(kind: str, spec: dict[str, Any]) -> str:
    """Canonical content id of one job: what dedup keys on.

    The tenant is deliberately excluded — two tenants asking the same
    question share one simulation.
    """
    blob = canonical_json({"kind": kind, "spec": spec})
    return hashlib.sha256(blob.encode()).hexdigest()


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


def _opt_int(spec: dict, key: str, *, minimum: int | None = None):
    value = spec.get(key)
    if value is None:
        return None
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{key} must be an integer, got {value!r}")
    if minimum is not None:
        _require(value >= minimum, f"{key} must be >= {minimum}, got {value}")
    return value


def _opt_str(spec: dict, key: str, choices=None):
    value = spec.get(key)
    if value is None:
        return None
    _require(isinstance(value, str), f"{key} must be a string, got {value!r}")
    if choices is not None:
        _require(value in choices,
                 f"unknown {key} {value!r}; choose from {sorted(choices)}")
    return value


def _app_list(value, what: str) -> list[str]:
    from repro.workloads import APP_NAMES

    _require(isinstance(value, (list, tuple)) and value,
             f"{what} must be a non-empty list of app names")
    apps = []
    for a in value:
        _require(isinstance(a, str) and a in APP_NAMES,
                 f"unknown app {a!r} in {what}; choose from {APP_NAMES}")
        apps.append(a)
    return apps


def _run_options(spec: dict) -> dict[str, Any]:
    """Validate the knobs shared by workload and sweep specs."""
    from repro.harness.parallel import POLICIES

    return {
        "cycles": _opt_int(spec, "cycles", minimum=1),
        "seed": _opt_int(spec, "seed"),
        "policy": _opt_str(spec, "policy", choices=POLICIES),
        "backend": _opt_str(spec, "backend"),
    }


def _normalize_workload(spec: dict) -> dict[str, Any]:
    out = _run_options(spec)
    out["apps"] = _app_list(spec.get("apps"), "apps")
    return out


def _normalize_sweep(spec: dict) -> dict[str, Any]:
    out = _run_options(spec)
    workloads = spec.get("workloads")
    _require(isinstance(workloads, (list, tuple)) and workloads,
             "workloads must be a non-empty list of app lists")
    out["workloads"] = [
        _app_list(w, f"workloads[{i}]") for i, w in enumerate(workloads)
    ]
    return out


def _normalize_scenario(spec: dict) -> dict[str, Any]:
    from repro.store import SCENARIOS

    name = _opt_str(spec, "name", choices=SCENARIOS)
    sid = _opt_str(spec, "id")
    _require(name is not None or sid is not None,
             "scenario spec needs a registered name or a scenario id")
    if sid is not None:
        _require(len(sid) >= 4 and all(c in "0123456789abcdef" for c in sid),
                 f"scenario id must be >= 4 hex chars, got {sid!r}")
    params = spec.get("params") or {}
    _require(isinstance(params, dict), "params must be an object")
    for key in params:
        _require(key in ("limit",),
                 f"unsupported scenario param {key!r} (only 'limit')")
    return {
        "name": name,
        "id": sid,
        "seed": _opt_int(spec, "seed"),
        "backend": _opt_str(spec, "backend"),
        "params": {k: _opt_int(params, k, minimum=1) for k in sorted(params)},
    }


def _normalize_chaos(spec: dict) -> dict[str, Any]:
    from repro.faults import chaos as ch

    modes = (ch.MODE_OK, ch.MODE_RAISE, ch.MODE_EXIT, ch.MODE_BAD_RESULT,
             ch.MODE_FLAKY)
    jobs = spec.get("jobs")
    _require(isinstance(jobs, (list, tuple)) and jobs,
             "chaos spec needs a non-empty jobs list")
    out_jobs = []
    for i, job in enumerate(jobs):
        _require(isinstance(job, dict), f"jobs[{i}] must be an object")
        mode = job.get("mode", ch.MODE_OK)
        _require(mode in modes,
                 f"jobs[{i}]: unknown chaos mode {mode!r} "
                 f"(hang is not servable; choose from {sorted(modes)})")
        out_jobs.append({
            "mode": mode,
            "payload": _opt_int(job, "payload") or 0,
            "flaky_failures": _opt_int(job, "flaky_failures", minimum=1) or 1,
        })
    return {
        "jobs": out_jobs,
        "retries": _opt_int(spec, "retries", minimum=0) or 0,
    }


_NORMALIZERS = {
    "workload": _normalize_workload,
    "sweep": _normalize_sweep,
    "scenario": _normalize_scenario,
    "chaos": _normalize_chaos,
}


def parse_submit(payload: Any, *, allow_chaos: bool = False) -> JobRequest:
    """Validate one submission body into a canonical :class:`JobRequest`."""
    _require(isinstance(payload, dict), "submission body must be an object")
    schema = payload.get("schema", SCHEMA)
    _require(schema == SCHEMA,
             f"unsupported schema {schema!r}; this daemon speaks {SCHEMA}")
    tenant = payload.get("tenant", "default")
    _require(isinstance(tenant, str) and 0 < len(tenant) <= 64,
             "tenant must be a short non-empty string")
    kind = payload.get("kind")
    _require(kind in KINDS,
             f"unknown kind {kind!r}; choose from {list(KINDS)}")
    if kind == "chaos" and not allow_chaos:
        raise ValueError(
            "chaos submissions are disabled (start the daemon with "
            "--allow-chaos)"
        )
    spec = payload.get("spec")
    _require(isinstance(spec, dict), "spec must be an object")
    return JobRequest(tenant=tenant, kind=kind, spec=_NORMALIZERS[kind](spec))


def event(kind: str, **fields: Any) -> dict[str, Any]:
    """Build one stream event record."""
    assert kind in EVENTS, kind
    rec = {"event": kind}
    rec.update(fields)
    return rec
