"""Fairness-aware admission control for the job daemon.

The paper's unfairness metric (max/min slowdown, Eqs. 28–30) applies
verbatim to the request queue: treat each *tenant* the way DASE-Fair treats
an application.  A tenant's slowdown for one request is

    slowdown = observed latency / isolated-service estimate

where the isolated estimate is the latency the request would have seen had
the tenant been **alone on the daemon** — computed against a per-tenant
virtual clock, so a tenant queueing behind its own backlog is not counted
as unfairness (its isolated service would have queued too; this is the
standard shared-vs-alone slowdown from the scheduling literature, and the
exact analogue of the paper's alone-run denominator).

Two policies:

* ``fair`` — serve the tenant whose head request currently projects the
  largest slowdown.  A waiting light tenant's slowdown grows as
  ``1 + wait/est`` while a backlogged flooder's stays near 1 (its isolated
  denominator already contains its own backlog), so light tenants are
  admitted promptly and max/min tenant slowdown stays low.  This is
  starvation-free: every pending head's slowdown grows monotonically with
  wall clock, and requests submitted *after* a pending head can never
  project a larger slowdown at equal estimates, so only requests already
  pending at submission time can overtake (the bound pinned by the
  hypothesis property in tests/test_service.py).
* ``fifo`` — global arrival order, the baseline the adversarial two-tenant
  test beats.

Every scheduling decision is logged to a :class:`QueueAudit` (the
``DecisionAudit`` pattern from the scheduler layer applied to admission),
and queue fairness — :func:`repro.metrics.unfairness`, Jain's index,
waiting-time Gini, tail slowdown — is exported through an obs
:class:`~repro.obs.registry.MetricsRegistry`.

The queue is deliberately a pure, clock-injectable data structure — the
daemon drives it under its own lock, tests drive it with simulated time.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import metrics as fairness_metrics
from repro.obs.registry import MetricsRegistry

#: Queue scheduling policies.
QUEUE_POLICIES = ("fair", "fifo")

#: Fallback isolated-service estimate before any completion is observed.
DEFAULT_EST_S = 1.0

#: EWMA smoothing for observed service times (same α as SweepProgress).
EST_ALPHA = 0.3


@dataclass
class QueuedRequest:
    """One admitted request and its fairness bookkeeping.

    ``iso_finish_t`` is when the request would have finished on an
    otherwise-idle daemon serving only this tenant — the denominator of
    the slowdown.  All times come from the queue's injected clock.
    """

    rid: str
    job_id: str
    tenant: str
    est_s: float
    submit_t: float
    iso_finish_t: float
    start_t: float | None = None
    finish_t: float | None = None

    @property
    def isolated_s(self) -> float:
        return max(self.iso_finish_t - self.submit_t, 1e-9)

    def wait_s(self, now: float) -> float:
        end = self.start_t if self.start_t is not None else now
        return max(0.0, end - self.submit_t)

    def slowdown(self, now: float) -> float:
        """Observed (or projected) latency over the isolated latency.

        Pending requests project completion ``est_s`` from now against the
        estimated isolated finish — that ratio is what the fair policy
        ranks.  Completed requests substitute the *actual* service time
        into both sides (alone, the request would have taken exactly its
        service time plus its own-backlog queueing), so an uncontended
        request scores 1.0 regardless of how rough the a-priori estimate
        was.
        """
        if self.finish_t is not None and self.start_t is not None:
            observed = self.finish_t - self.submit_t
            own_queue_s = max(0.0, self.isolated_s - self.est_s)
            isolated = own_queue_s + max(self.finish_t - self.start_t, 1e-9)
            return max(observed, 1e-9) / isolated
        observed = (now - self.submit_t) + self.est_s
        return max(observed, 1e-9) / self.isolated_s


@dataclass
class QueueDecision:
    """One audited scheduling decision."""

    seq: int
    now: float
    policy: str
    chosen_rid: str
    chosen_tenant: str
    candidates: dict[str, float]  # tenant -> projected head slowdown

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "now": round(self.now, 6),
            "policy": self.policy,
            "chosen": {"rid": self.chosen_rid, "tenant": self.chosen_tenant},
            "candidates": {
                t: round(s, 4) for t, s in sorted(self.candidates.items())
            },
        }


class QueueAudit:
    """DecisionAudit-style bounded log of admission decisions."""

    def __init__(self, limit: int = 256) -> None:
        self.limit = limit
        self.decisions: deque[QueueDecision] = deque(maxlen=limit)
        self.total = 0

    def record(self, decision: QueueDecision) -> None:
        self.decisions.append(decision)
        self.total += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.service.queue-audit/1",
            "total": self.total,
            "kept": len(self.decisions),
            "decisions": [d.to_dict() for d in self.decisions],
        }


class AdmissionQueue:
    """Per-tenant admission queue scheduling by projected slowdown."""

    def __init__(
        self,
        policy: str = "fair",
        *,
        default_est_s: float = DEFAULT_EST_S,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
        audit_limit: int = 256,
        completed_limit: int = 4096,
    ) -> None:
        if policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {policy!r}; "
                f"choose from {list(QUEUE_POLICIES)}"
            )
        self.policy = policy
        self.default_est_s = default_est_s
        self._clock = clock if clock is not None else time.monotonic
        self.registry = registry if registry is not None else MetricsRegistry()
        self.audit = QueueAudit(audit_limit)
        self._pending: dict[str, deque[QueuedRequest]] = {}
        self._order = itertools.count()  # FIFO tiebreak across tenants
        self._fifo: deque[QueuedRequest] = deque()
        self._iso_tail: dict[str, float] = {}  # tenant virtual clock
        self._est: dict[str, float] = {}       # per-tenant service EWMA
        self._completed: deque[QueuedRequest] = deque(maxlen=completed_limit)
        self._rids = itertools.count(1)
        self.submitted = 0
        self.scheduled = 0
        self.completed = 0

    # ------------------------------------------------------------ lifecycle

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def estimate_for(self, tenant: str) -> float:
        """Current isolated-service estimate for one of ``tenant``'s jobs."""
        return self._est.get(tenant, self.default_est_s)

    def submit(
        self,
        tenant: str,
        job_id: str,
        *,
        est_s: float | None = None,
        now: float | None = None,
    ) -> QueuedRequest:
        """Admit one request; returns its queue entry."""
        now = self._now(now)
        est = est_s if est_s is not None else self.estimate_for(tenant)
        est = max(est, 1e-9)
        # The tenant's virtual clock: had it been alone, this request would
        # start after the tenant's own previous request finished.
        iso_start = max(now, self._iso_tail.get(tenant, now))
        req = QueuedRequest(
            rid=f"r{next(self._rids)}",
            job_id=job_id,
            tenant=tenant,
            est_s=est,
            submit_t=now,
            iso_finish_t=iso_start + est,
        )
        self._iso_tail[tenant] = req.iso_finish_t
        self._pending.setdefault(tenant, deque()).append(req)
        self._fifo.append(req)
        self.submitted += 1
        self.registry.counter("service.queue.submitted").inc()
        self.registry.gauge("service.queue.pending").set(len(self))
        return req

    def __len__(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def _heads(self) -> list[QueuedRequest]:
        return [q[0] for q in self._pending.values() if q]

    def next(self, now: float | None = None) -> QueuedRequest | None:
        """Pop the next request to serve, per policy, auditing the choice."""
        now = self._now(now)
        heads = self._heads()
        if not heads:
            return None
        if self.policy == "fifo":
            chosen = min(heads, key=lambda r: r.submit_t)
        else:
            # Largest projected slowdown first; earliest submission breaks
            # ties so equal-pressure tenants round-robin deterministically.
            chosen = max(
                heads, key=lambda r: (r.slowdown(now), -r.submit_t)
            )
        self._pending[chosen.tenant].popleft()
        try:
            self._fifo.remove(chosen)
        except ValueError:  # pragma: no cover - invariant guard
            pass
        chosen.start_t = now
        self.scheduled += 1
        self.audit.record(QueueDecision(
            seq=self.audit.total + 1,
            now=now,
            policy=self.policy,
            chosen_rid=chosen.rid,
            chosen_tenant=chosen.tenant,
            candidates={r.tenant: r.slowdown(now) for r in heads},
        ))
        self.registry.gauge("service.queue.pending").set(len(self))
        return chosen

    def cancel(self, rid: str) -> QueuedRequest | None:
        """Remove one still-pending request; None if not pending."""
        for tenant, q in self._pending.items():
            for req in q:
                if req.rid == rid:
                    q.remove(req)
                    try:
                        self._fifo.remove(req)
                    except ValueError:  # pragma: no cover
                        pass
                    self.registry.counter("service.queue.cancelled").inc()
                    self.registry.gauge("service.queue.pending").set(len(self))
                    return req
        return None

    def complete(
        self, req: QueuedRequest, now: float | None = None
    ) -> float:
        """Mark a scheduled request finished; returns its slowdown."""
        now = self._now(now)
        req.finish_t = now
        self._completed.append(req)
        self.completed += 1
        if req.start_t is not None:
            service = max(now - req.start_t, 1e-9)
            prev = self._est.get(req.tenant)
            self._est[req.tenant] = (
                service if prev is None
                else EST_ALPHA * service + (1.0 - EST_ALPHA) * prev
            )
        self.registry.counter("service.queue.completed").inc()
        self.registry.histogram("service.queue.wait_s").observe(
            req.wait_s(now)
        )
        slowdown = req.slowdown(now)
        self._export_fairness(now)
        return slowdown

    # ------------------------------------------------------------- readouts

    def tenant_slowdowns(self, now: float | None = None) -> dict[str, float]:
        """Mean completed slowdown per tenant (pending heads projected in
        for tenants with no completions yet, so the readout never hides a
        tenant that is still waiting for its first grant)."""
        now = self._now(now)
        sums: dict[str, list[float]] = {}
        for req in self._completed:
            sums.setdefault(req.tenant, []).append(req.slowdown(now))
        for head in self._heads():
            if head.tenant not in sums:
                sums[head.tenant] = [head.slowdown(now)]
        return {
            t: sum(vals) / len(vals) for t, vals in sorted(sums.items())
        }

    def fairness(self, now: float | None = None) -> dict[str, Any]:
        """Queue-level fairness snapshot: the paper's metric family applied
        to tenant slowdowns plus waiting-time dispersion."""
        now = self._now(now)
        per_tenant = self.tenant_slowdowns(now)
        slowdowns = list(per_tenant.values())
        waits = [r.wait_s(now) for r in self._completed]
        out: dict[str, Any] = {
            "policy": self.policy,
            "tenants": {t: round(s, 4) for t, s in per_tenant.items()},
            "unfairness": None,
            "jains_index": None,
            "gini_wait": None,
            "p95_wait_s": None,
        }
        if slowdowns:
            out["unfairness"] = fairness_metrics.unfairness(slowdowns)
            out["jains_index"] = fairness_metrics.jains_index(slowdowns)
        if waits:
            # All-zero waits are perfectly equal; gini() refuses a zero total.
            out["gini_wait"] = (
                fairness_metrics.gini(waits) if sum(waits) > 0 else 0.0
            )
            out["p95_wait_s"] = fairness_metrics.tail_slowdown(waits, q=0.95)
        return out

    def _export_fairness(self, now: float) -> None:
        fair = self.fairness(now)
        for key, gauge in (
            ("unfairness", "service.queue.unfairness"),
            ("jains_index", "service.queue.jains_index"),
            ("gini_wait", "service.queue.gini_wait"),
        ):
            if fair[key] is not None:
                self.registry.gauge(gauge).set(round(fair[key], 6))

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """JSON-safe queue state for the daemon's /v1/queue endpoint."""
        now = self._now(now)
        return {
            "schema": "repro.service.queue/1",
            "policy": self.policy,
            "pending": {
                t: len(q) for t, q in sorted(self._pending.items()) if q
            },
            "submitted": self.submitted,
            "scheduled": self.scheduled,
            "completed": self.completed,
            "fairness": self.fairness(now),
            "metrics": self.registry.snapshot(),
            "audit": self.audit.to_dict(),
        }
