"""Random synthetic workload generation.

Beyond the 15 calibrated Table 3 applications, experiments (and stress
tests) sometimes need arbitrary kernels with controlled characteristics.
The generator draws :class:`~repro.sim.kernel.KernelSpec`s from seeded
distributions over the axes that matter to the DASE model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.kernel import AccessPattern, KernelSpec


@dataclass(frozen=True)
class GeneratorProfile:
    """Parameter ranges for random kernels.

    The defaults span the calibrated suite's range: memory intensity from
    compute-bound (cpm ≈ 120) to bandwidth-hog (cpm ≈ 3), all three access
    patterns, realistic reuse, and occupancy-limited variants.
    """

    min_compute_per_mem: int = 3
    max_compute_per_mem: int = 120
    patterns: tuple[AccessPattern, ...] = tuple(AccessPattern)
    max_reuse: float = 0.6
    min_warps_per_block: int = 4
    max_warps_per_block: int = 8
    occupancy_limited_fraction: float = 0.25
    min_working_set_lines: int = 1 << 12
    max_working_set_lines: int = 1 << 17

    def __post_init__(self) -> None:
        if self.min_compute_per_mem < 0:
            raise ValueError("compute_per_mem cannot be negative")
        if self.min_compute_per_mem > self.max_compute_per_mem:
            raise ValueError("min_compute_per_mem exceeds max")
        if not 0.0 <= self.max_reuse <= 1.0:
            raise ValueError("max_reuse must be in [0, 1]")
        if not 0.0 <= self.occupancy_limited_fraction <= 1.0:
            raise ValueError("occupancy_limited_fraction must be in [0, 1]")


class WorkloadGenerator:
    """Seeded generator of random kernels and workload mixes."""

    def __init__(self, seed: int = 2016, profile: GeneratorProfile | None = None):
        self.rng = random.Random(seed)
        self.profile = profile or GeneratorProfile()
        self._count = 0

    def kernel(self, name: str | None = None) -> KernelSpec:
        """Draw one random kernel."""
        p = self.profile
        rng = self.rng
        self._count += 1
        name = name or f"rnd{self._count:03d}"
        pattern = rng.choice(list(p.patterns))
        reuse = rng.uniform(0.0, p.max_reuse) if rng.random() < 0.5 else 0.0
        occupancy = (
            rng.randint(1, 3)
            if rng.random() < p.occupancy_limited_fraction
            else None
        )
        # Log-uniform memory intensity so both extremes are represented.
        import math

        lo, hi = math.log(p.min_compute_per_mem + 1), math.log(
            p.max_compute_per_mem + 1
        )
        cpm = int(round(math.exp(rng.uniform(lo, hi)))) - 1
        return KernelSpec(
            name,
            compute_per_mem=max(0, cpm),
            pattern=pattern,
            warps_per_block=rng.randint(
                p.min_warps_per_block, p.max_warps_per_block
            ),
            reuse_fraction=reuse,
            hot_set_lines=rng.choice([512, 1024, 2048, 4096]),
            working_set_lines=rng.randint(
                p.min_working_set_lines, p.max_working_set_lines
            ),
            max_resident_blocks=occupancy,
        )

    def workload(self, n_apps: int) -> list[KernelSpec]:
        """Draw a multiprogrammed workload of ``n_apps`` random kernels."""
        if n_apps < 1:
            raise ValueError("workloads need at least one application")
        return [self.kernel() for _ in range(n_apps)]

    def workloads(self, count: int, n_apps: int) -> list[list[KernelSpec]]:
        return [self.workload(n_apps) for _ in range(count)]
