"""Workloads: the 15 synthetic applications standing in for paper Table 3,
plus combination generators for the two- and four-application studies."""

from repro.workloads.generator import GeneratorProfile, WorkloadGenerator
from repro.workloads.suite import (
    ALL_APPS,
    APP_NAMES,
    SUITE,
    TABLE3_BW_UTILIZATION,
    app,
    four_app_workloads,
    two_app_workloads,
)

__all__ = [
    "SUITE",
    "ALL_APPS",
    "APP_NAMES",
    "TABLE3_BW_UTILIZATION",
    "app",
    "two_app_workloads",
    "four_app_workloads",
    "WorkloadGenerator",
    "GeneratorProfile",
]
