"""The 15 evaluated applications (paper Table 3), as synthetic kernels.

Each :class:`~repro.sim.kernel.KernelSpec` is calibrated so that, running
*alone* on the full baseline GPU, its DRAM bandwidth utilization lands near
the value Table 3 reports for the real CUDA kernel it stands in for.
Beyond bandwidth, the specs diversify along every axis the DASE model is
sensitive to: access pattern (row-buffer locality), cache reuse, thread-level
parallelism, and coalescing — e.g. SD (srad) is the random-access,
cache-sensitive victim the paper's motivation section studies, and SB
(sobol) is the bandwidth-hog MBB aggressor of Figure 4.

Calibration is checked by ``tests/test_suite_calibration.py`` and regenerated
by ``benchmarks/test_table3_bw_utilization.py``.
"""

from __future__ import annotations

import itertools
import random

from repro.sim.kernel import AccessPattern, KernelSpec

#: Paper Table 3 — attained DRAM bandwidth utilization running alone.
TABLE3_BW_UTILIZATION: dict[str, float] = {
    "BS": 0.65, "AA": 0.61, "CT": 0.16, "CS": 0.32, "QR": 0.14,
    "VA": 0.60, "SB": 0.68, "SA": 0.58, "SP": 0.55, "AT": 0.47,
    "SN": 0.20, "SC": 0.53, "BG": 0.21, "NN": 0.56, "SD": 0.40,
}

_S = AccessPattern.STREAM
_T = AccessPattern.STRIDED
_R = AccessPattern.RANDOM

#: The synthetic suite.  ``compute_per_mem`` values are tuned empirically
#: against the baseline config; everything else encodes the qualitative
#: character of the original kernel.
SUITE: dict[str, KernelSpec] = {
    # blackScholes: streaming, memory-bound, mixed-width accesses.
    "BS": KernelSpec(
        "BS", compute_per_mem=8, pattern=_S, warps_per_block=8,
        wide_fraction=0.56, insts_per_warp=400,
    ),
    # asyncAPI: streaming copy-like behaviour, memory-bound.
    "AA": KernelSpec(
        "AA", compute_per_mem=8, pattern=_S, warps_per_block=6,
        wide_fraction=0.46, insts_per_warp=400,
    ),
    # convolutionTexture: heavy reuse through the texture cache.
    "CT": KernelSpec(
        "CT", compute_per_mem=58, pattern=_T, stride_lines=2,
        reuse_fraction=0.55, hot_set_lines=1024, warps_per_block=8,
        insts_per_warp=1200,
    ),
    # convolutionSeparable: moderate reuse, moderate bandwidth.
    "CS": KernelSpec(
        "CS", compute_per_mem=37, pattern=_S, reuse_fraction=0.35,
        hot_set_lines=1536, warps_per_block=8, insts_per_warp=1200,
    ),
    # quasirandomGenerator: compute-bound, few memory requests.
    "QR": KernelSpec(
        "QR", compute_per_mem=126, pattern=_S, warps_per_block=8,
        insts_per_warp=1200,
    ),
    # vectorAdd: pure streaming, memory-bound.
    "VA": KernelSpec(
        "VA", compute_per_mem=8, pattern=_S, warps_per_block=6,
        wide_fraction=0.44, insts_per_warp=400,
    ),
    # sobol: the bandwidth-bound aggressor (Fig. 4's MBB example) —
    # fully coalesced wide accesses reach the best saturated efficiency.
    "SB": KernelSpec(
        "SB", compute_per_mem=3, pattern=_S, warps_per_block=6,
        wide_fraction=1.0, insts_per_warp=300,
    ),
    # scan: streaming with a touch of reuse, memory-bound.
    "SA": KernelSpec(
        "SA", compute_per_mem=8, pattern=_S, reuse_fraction=0.1,
        hot_set_lines=1024, warps_per_block=6, wide_fraction=0.39,
        insts_per_warp=400,
    ),
    # scalarProd: streaming reduction, memory-bound.
    "SP": KernelSpec(
        "SP", compute_per_mem=8, pattern=_S, warps_per_block=8,
        wide_fraction=0.32, insts_per_warp=400,
    ),
    # alignedTypes: aligned copies, mostly narrow accesses.
    "AT": KernelSpec(
        "AT", compute_per_mem=8, pattern=_S, warps_per_block=6,
        wide_fraction=0.13, insts_per_warp=400,
    ),
    # sortingNetworks: shared-memory heavy, cache friendly, low bandwidth.
    "SN": KernelSpec(
        "SN", compute_per_mem=41, pattern=_S, reuse_fraction=0.6,
        hot_set_lines=1024, warps_per_block=8, insts_per_warp=1200,
    ),
    # stencil (Parboil): streaming with neighbourhood reuse, memory-bound.
    "SC": KernelSpec(
        "SC", compute_per_mem=8, pattern=_S, reuse_fraction=0.15,
        hot_set_lines=2048, warps_per_block=8, wide_fraction=0.27,
        insts_per_warp=400,
    ),
    # BICG (PolyBench): low TLP, reuse on one operand.
    "BG": KernelSpec(
        "BG", compute_per_mem=46, pattern=_S, reuse_fraction=0.55,
        hot_set_lines=1536, warps_per_block=4, blocks_total=64,
        max_resident_blocks=2,
    ),
    # nn (Rodinia): random lookups at high rate, occupancy-limited.
    "NN": KernelSpec(
        "NN", compute_per_mem=8, pattern=_R, working_set_lines=1 << 17,
        warps_per_block=6, max_resident_blocks=2, wide_fraction=0.34,
        insts_per_warp=400,
    ),
    # srad (Rodinia): the interference-sensitive victim of Fig. 2 — random
    # access over a large footprint with real cache reuse to lose.
    "SD": KernelSpec(
        "SD", compute_per_mem=46, pattern=_R, working_set_lines=1 << 15,
        reuse_fraction=0.3, hot_set_lines=4096, warps_per_block=6,
        max_resident_blocks=2, wide_fraction=0.15, insts_per_warp=1200,
    ),
}

APP_NAMES: list[str] = list(SUITE)
ALL_APPS: list[KernelSpec] = list(SUITE.values())


def app(name: str) -> KernelSpec:
    """Look up one suite application by its Table 3 abbreviation."""
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; choose from {APP_NAMES}") from None


def two_app_workloads(names: list[str] | None = None) -> list[tuple[str, str]]:
    """All unordered two-application combinations (paper: 'all possible')."""
    names = names or APP_NAMES
    return list(itertools.combinations(names, 2))


def four_app_workloads(
    count: int = 30, seed: int = 2016, names: list[str] | None = None
) -> list[tuple[str, str, str, str]]:
    """``count`` distinct random four-application combinations (paper: 30)."""
    names = names or APP_NAMES
    rng = random.Random(seed)
    combos = list(itertools.combinations(names, 4))
    if count > len(combos):
        raise ValueError(f"only {len(combos)} four-app combinations exist")
    return rng.sample(combos, count)
