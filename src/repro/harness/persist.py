"""Persist experiment results as JSON artifacts.

Benchmarks call :func:`save_result` after each experiment so the numbers
behind EXPERIMENTS.md live in ``results/<name>.json`` alongside the text
output — machine-readable and diffable across runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
from typing import Any


def _default_dir() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def _jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses/tuples/sets into JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return round(obj, 6)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def atomic_write_json(path: str | os.PathLike, payload: Any) -> pathlib.Path:
    """Write ``payload`` as JSON atomically (temp file + rename).

    Values are written at full precision (no rounding), so objects such as
    :class:`~repro.harness.runner.WorkloadResult` survive a byte-exact
    round trip — the property the cache and determinism tests rely on.
    Safe under concurrent writers: each writer lands a complete file and
    ``os.replace`` makes the last one win without torn reads.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_json(path: str | os.PathLike) -> Any:
    """Read back a JSON file written by :func:`atomic_write_json`."""
    with pathlib.Path(path).open() as fh:
        return json.load(fh)


def save_result(name: str, payload: Any, directory: str | os.PathLike | None = None) -> pathlib.Path:
    """Write ``payload`` to ``<results dir>/<name>.json`` and return the path.

    The directory defaults to ``./results`` (override with the
    ``REPRO_RESULTS_DIR`` environment variable).
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError("result name must be a bare file stem")
    out_dir = pathlib.Path(directory) if directory else _default_dir()
    return atomic_write_json(out_dir / f"{name}.json", _jsonable(payload))


def load_result(name: str, directory: str | os.PathLike | None = None) -> Any:
    """Read back a previously saved result."""
    out_dir = pathlib.Path(directory) if directory else _default_dir()
    with (out_dir / f"{name}.json").open() as fh:
        return json.load(fh)
