"""Persist experiment results as JSON artifacts.

Benchmarks call :func:`save_result` after each experiment so the numbers
behind EXPERIMENTS.md live in ``results/<name>.json`` alongside the text
output — machine-readable and diffable across runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Any


def _default_dir() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def _jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses/tuples/sets into JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, float):
        return round(obj, 6)
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    return str(obj)


def save_result(name: str, payload: Any, directory: str | os.PathLike | None = None) -> pathlib.Path:
    """Write ``payload`` to ``<results dir>/<name>.json`` and return the path.

    The directory defaults to ``./results`` (override with the
    ``REPRO_RESULTS_DIR`` environment variable).
    """
    if not name or any(c in name for c in "/\\"):
        raise ValueError("result name must be a bare file stem")
    out_dir = pathlib.Path(directory) if directory else _default_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.json"
    with path.open("w") as fh:
        json.dump(_jsonable(payload), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_result(name: str, directory: str | os.PathLike | None = None) -> Any:
    """Read back a previously saved result."""
    out_dir = pathlib.Path(directory) if directory else _default_dir()
    with (out_dir / f"{name}.json").open() as fh:
        return json.load(fh)
