"""Process-pool experiment runner, hardened against misbehaving workers.

Figure sweeps are embarrassingly parallel: each :func:`run_workload` call
is independent of every other, and the simulator is deterministic, so a
workload produces the same :class:`WorkloadResult` whether it runs inline,
in a worker process, or is reconstructed from cache.  This module provides
the fan-out machinery:

* :class:`WorkloadJob` — a picklable description of one run (app names or
  :class:`KernelSpec` objects, config, cycles, partition, models, policy
  name, fault plan, cache directory);
* :func:`run_jobs` — execute jobs across a ``ProcessPoolExecutor`` (or
  inline for ``jobs <= 1``), returning :class:`JobOutcome` objects in
  submission order with per-job failures captured instead of aborting the
  sweep;
* :func:`run_workloads` — the convenience wrapper figure drivers use.

Policies cross the process boundary by *name* (see :data:`POLICIES`), not
as live objects, because a policy instance holds simulator state.

Hardening (docs/parallel-harness.md): ``run_jobs`` survives workers that
raise, die without unwinding (``os._exit``, SIGKILL, segfault), hang past
a per-job timeout, or return results whose pickle explodes at the parent.
A ``ProcessPoolExecutor`` whose worker dies hard marks *every* pending
future ``BrokenProcessPool`` and becomes unusable, so the pooled path runs
in **generations**: each generation gets a fresh pool, finished jobs
settle permanently, and unfinished ones carry over.  Breadcrumb files
written by the workers (``job-<i>.started`` / ``job-<i>.done``) let the
parent reconstruct *which* job took the pool down:

* ``started`` + ``done`` but the future broke → result transport failed
  (``result-transport``) — charged only when the job ran isolated, since
  in a shared pool the lost result may be a sibling's fault;
* ``started``, no ``done``, killed by the timeout enforcer → ``timeout``;
* ``started``, no ``done``, pool died with no other explanation → crash
  suspect (``crash``), with the worker's stderr tail attached — every
  concurrently-running job is blamed (the pool cannot say which worker
  died), so give crashy sweeps a retry budget;
* never ``started`` → innocent bystander, requeued without spending an
  attempt.

Crash suspects are then **isolated**: the next generations run each
suspect alone in a single-worker pool, so a further break is attributable
to exactly that job and innocent bystanders of the original break finish
their retry solo instead of being taken down by the real crasher again
and again.

Failed attempts retry up to ``retries`` times with exponential backoff +
jitter.  ``checkpoint`` (a directory) makes completed jobs durable so an
interrupted sweep resumes instead of restarting
(:class:`repro.harness.checkpoint.SweepCheckpoint`).
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import shutil
import signal
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.config import GPUConfig
from repro.harness.replay_cache import AloneReplayCache, resolve_cache
from repro.obs import bus as obs_bus
from repro.harness.runner import WorkloadResult, run_workload, scaled_config
from repro.sim.kernel import KernelSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults.plan import FaultPlan
    from repro.harness.checkpoint import SweepCheckpoint
    from repro.opensys.schedule import ArrivalSchedule

#: Policies constructible inside a worker process, by name.  Each factory
#: takes the resolved :class:`GPUConfig` of the run.
POLICIES: dict[str, Callable[[GPUConfig], object]] = {}

#: ``JobOutcome.failure_kind`` values.
FAIL_EXCEPTION = "exception"          # job raised; traceback captured
FAIL_CRASH = "crash"                  # worker died without unwinding
FAIL_TIMEOUT = "timeout"              # killed by the per-job timeout
FAIL_TRANSPORT = "result-transport"   # finished, result unpicklable/lost


def _register_policies() -> None:
    # Imported lazily so constructing a WorkloadJob never pulls in the
    # policy stack; only jobs that actually name a policy pay the import.
    from repro.policies import DASEFairPolicy

    POLICIES.setdefault("dase_fair", DASEFairPolicy)


@dataclass(frozen=True)
class WorkloadJob:
    """One picklable unit of sweep work: the arguments of ``run_workload``.

    ``apps`` may mix suite names and frozen :class:`KernelSpec` objects —
    both pickle cleanly.  ``policy`` is a :data:`POLICIES` key or None.
    ``faults`` optionally distorts the counter stream the estimators see
    (:class:`repro.faults.FaultPlan` — frozen, so it fingerprints and
    pickles like every other field).  ``arrivals`` optionally makes the
    run open-system (:class:`repro.opensys.ArrivalSchedule` — likewise
    frozen, fingerprintable, and picklable).  ``backend`` overrides
    :attr:`GPUConfig.backend` inside the worker; backends are
    result-equivalent, so it affects worker wall-clock only and is
    excluded from cache fingerprints.
    """

    apps: tuple[KernelSpec | str, ...]
    config: GPUConfig | None = None
    shared_cycles: int | None = None
    sm_partition: tuple[int, ...] | None = None
    models: tuple[str, ...] = ("DASE", "MISE", "ASM")
    policy: str | None = None
    warmup_intervals: int = 1
    cache_dir: str | None = None
    faults: "FaultPlan | None" = None
    arrivals: "ArrivalSchedule | None" = None
    backend: str | None = None

    @property
    def key(self) -> str:
        return "+".join(a if isinstance(a, str) else a.name for a in self.apps)


@dataclass
class JobOutcome:
    """Result slot for one job, in submission order.

    Exactly one of ``result``/``error`` is set; ``error`` carries the
    worker-side traceback text so a failed pair diagnoses itself without
    killing the other 104.  ``attempts`` counts executions (1 = first try
    succeeded); ``failure_kind`` classifies the *final* failure (one of
    :data:`FAIL_EXCEPTION`/:data:`FAIL_CRASH`/:data:`FAIL_TIMEOUT`/
    :data:`FAIL_TRANSPORT`); ``stderr_tail`` is the dying worker's last
    stderr output when one could be attributed; ``resumed`` marks results
    restored from a sweep checkpoint rather than executed.
    """

    index: int
    job: WorkloadJob
    result: WorkloadResult | None = None
    error: str | None = None
    duration_s: float = 0.0
    #: Alone-replay cache counters for this job ({"hits", "misses",
    #: "stores"}), or None when the job ran uncached.
    cache: dict | None = None
    attempts: int = 1
    failure_kind: str | None = None
    stderr_tail: str | None = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> WorkloadResult:
        if self.result is None:
            raise RuntimeError(
                f"workload {self.job.key!r} failed:\n{self.error}"
            )
        return self.result


def _execute_with_cache(
    job: WorkloadJob,
) -> tuple[WorkloadResult, dict | None]:
    """Run one job; returns the result plus alone-replay cache counters."""
    config = job.config or scaled_config()
    policy = None
    if job.policy is not None:
        _register_policies()
        try:
            factory = POLICIES[job.policy]
        except KeyError:
            raise ValueError(
                f"unknown policy {job.policy!r}; choose from {sorted(POLICIES)}"
            ) from None
        policy = factory(config)
    cache: AloneReplayCache | None = (
        AloneReplayCache(job.cache_dir) if job.cache_dir else None
    )
    result = run_workload(
        list(job.apps),
        config=config,
        shared_cycles=job.shared_cycles,
        sm_partition=list(job.sm_partition) if job.sm_partition else None,
        models=job.models,
        policy=policy,
        warmup_intervals=job.warmup_intervals,
        alone_cache=cache,
        faults=job.faults,
        arrivals=job.arrivals,
        backend=job.backend,
    )
    cache_stats = (
        {"hits": cache.hits, "misses": cache.misses, "stores": cache.stores}
        if cache is not None
        else None
    )
    return result, cache_stats


def execute_job(job: WorkloadJob) -> WorkloadResult:
    """Run one job in the current process (the worker entry point)."""
    return _execute_with_cache(job)[0]


def _run_job(job) -> tuple[object, dict | None]:
    """Execute one job of any flavour.

    A job exposing ``execute()`` (e.g. :class:`repro.faults.ChaosJob`)
    runs that; everything else is a :class:`WorkloadJob`.
    """
    execute = getattr(job, "execute", None)
    if execute is not None:
        return execute(), None
    return _execute_with_cache(job)


def _guarded(indexed_job: tuple[int, WorkloadJob]) -> JobOutcome:
    """Top-level (picklable) wrapper: never raises, captures tracebacks."""
    index, job = indexed_job
    t0 = time.perf_counter()
    try:
        result, cache_stats = _run_job(job)
        return JobOutcome(index, job, result=result,
                          duration_s=time.perf_counter() - t0,
                          cache=cache_stats)
    except Exception:
        return JobOutcome(index, job, error=traceback.format_exc(),
                          duration_s=time.perf_counter() - t0,
                          failure_kind=FAIL_EXCEPTION)


# --------------------------------------------------------------------------
# Worker-side breadcrumbs: the parent cannot ask a dead worker what it was
# doing, so workers leave evidence on disk *before* doing anything risky.
# --------------------------------------------------------------------------


def _worker_stderr_init(scratch: str) -> None:
    """Pool initializer: tee this worker's OS-level stderr into the sweep
    scratch directory, so a hard death (segfault banner, fatal-error dump,
    anything written to fd 2) survives the process and can be attached to
    the blamed job's outcome."""
    try:
        path = os.path.join(scratch, f"stderr-{os.getpid()}.log")
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        os.dup2(fd, 2)
        os.close(fd)
    except OSError:  # pragma: no cover - scratch vanished; run uncaptured
        pass


def _job_backend(job) -> str | None:
    """The backend a job will effectively simulate under (bus labelling)."""
    backend = getattr(job, "backend", None)
    if backend:
        return backend
    config = getattr(job, "config", None)
    if config is not None and getattr(config, "backend", None):
        return config.backend
    return "reference" if isinstance(job, WorkloadJob) else None


def _observed_run(
    index: int,
    job,
    attempt: int,
    ch: "obs_bus.WorkerChannel | None",
    sweep: str | None,
    profile: bool,
    bus_dir: str | None,
    submit_ts: float | None = None,
    serialize: bool = False,
) -> JobOutcome:
    """Run one guarded attempt, bracketed by bus records when enabled.

    Shared by the inline path and the pooled worker entry so both emit
    the same job_start/span/job_end stream (the inline==pooled SweepStats
    determinism contract).  ``serialize`` additionally times a result
    pickle round — the transport cost a pooled job pays and an inline one
    does not, so it is only recorded in workers.
    """
    if ch is None:
        outcome = _guarded((index, job))
        outcome.attempts = attempt
        return outcome
    ch.job_start(
        sweep or "?", index, getattr(job, "key", repr(job)),
        attempt=attempt, submit_ts=submit_ts,
    )
    prof = None
    if profile and bus_dir:
        import cProfile

        prof = cProfile.Profile()
        prof.enable()
    try:
        outcome = _guarded((index, job))
    finally:
        if prof is not None:
            prof.disable()
            try:
                prof.dump_stats(
                    str(obs_bus.profile_path(bus_dir, index, attempt))
                )
            except OSError:  # pragma: no cover - bus dir vanished
                pass
    outcome.attempts = attempt
    if serialize:
        import pickle

        t0 = time.perf_counter()
        try:
            n_bytes = len(pickle.dumps(outcome))
        except Exception:  # noqa: BLE001 - poison results still get a span
            n_bytes = -1
        ch.span("serialize", time.perf_counter() - t0, n_bytes=n_bytes)
    ch.job_end(
        ok=outcome.ok,
        cache=outcome.cache,
        backend=_job_backend(job),
        failure_kind=outcome.failure_kind,
    )
    return outcome


def _tracked(
    index: int,
    job,
    scratch: str,
    attempt: int,
    sweep: str | None = None,
    submit_ts: float | None = None,
    bus_dir: str | None = None,
    profile: bool = False,
) -> JobOutcome:
    """Worker entry point: breadcrumbs around the guarded execution."""
    started = {
        "pid": os.getpid(),
        "t0": time.time(),
        "key": getattr(job, "key", repr(job)),
        "attempt": attempt,
    }
    base = pathlib.Path(scratch)
    try:
        (base / f"job-{index}.started").write_text(json.dumps(started))
    except OSError:  # pragma: no cover - scratch vanished mid-sweep
        pass
    ch = obs_bus.activate(bus_dir) if bus_dir else None
    outcome = _observed_run(
        index, job, attempt, ch, sweep, profile, bus_dir,
        submit_ts=submit_ts, serialize=ch is not None,
    )
    try:
        (base / f"job-{index}.done").write_text("1")
    except OSError:  # pragma: no cover
        pass
    return outcome


def _read_started(scratch: pathlib.Path, index: int) -> dict | None:
    try:
        return json.loads((scratch / f"job-{index}.started").read_text())
    except (OSError, ValueError):
        return None


def _stderr_tail(
    scratch: pathlib.Path, started: dict | None, limit: int = 2000
) -> str | None:
    """Last ``limit`` characters the blamed worker wrote to stderr."""
    if not started:
        return None
    try:
        text = (scratch / f"stderr-{started['pid']}.log").read_text(
            errors="replace"
        )
    except (OSError, KeyError):
        return None
    text = text.strip()
    return text[-limit:] if text else None


# --------------------------------------------------------------------------
# Ambient sweep configuration
# --------------------------------------------------------------------------

#: Ambient progress factory (``total_jobs -> reporter or None``): lets a
#: CLI entry point attach live progress to every sweep an experiment driver
#: runs without threading a kwarg through each driver's signature.
_PROGRESS_FACTORY: Callable[[int], object] | None = None


def set_default_progress(factory: Callable[[int], object] | None) -> None:
    """Install (or clear, with None) the ambient sweep-progress factory.

    The factory is called with the job count of each sweep and returns an
    object with ``job_done(outcome)`` / ``close()`` (duck-typed; see
    :class:`repro.obs.SweepProgress`), or None to skip that sweep.
    """
    global _PROGRESS_FACTORY
    _PROGRESS_FACTORY = factory


_UNSET = object()

#: Ambient resilience defaults, consumed by :func:`run_jobs` when the
#: caller passes None — the same pattern as the progress factory, so the
#: CLI's ``--timeout/--retries/--resume-dir`` flags reach every sweep a
#: figure driver runs without new parameters on each driver.
_SWEEP_DEFAULTS: dict = {
    "timeout_s": None,
    "retries": 0,
    "backoff_s": 0.5,
    "checkpoint_dir": None,
    "bus_dir": None,
    "profile": False,
}

#: Monotone per-process counter distinguishing sweeps that share one bus
#: directory (a figure driver may run several run_jobs calls).
_SWEEP_SEQ = 0


def set_sweep_defaults(
    timeout_s=_UNSET, retries=_UNSET, backoff_s=_UNSET, checkpoint_dir=_UNSET,
    bus_dir=_UNSET, profile=_UNSET,
) -> None:
    """Set ambient defaults for sweep resilience (only the passed ones).

    ``bus_dir`` enables the cross-worker telemetry bus
    (:mod:`repro.obs.bus`) for every subsequent sweep; ``profile``
    additionally cProfiles each job into the bus directory.
    """
    if timeout_s is not _UNSET:
        _SWEEP_DEFAULTS["timeout_s"] = timeout_s
    if retries is not _UNSET:
        if retries is not None and retries < 0:
            raise ValueError("retries must be >= 0")
        _SWEEP_DEFAULTS["retries"] = retries
    if backoff_s is not _UNSET:
        _SWEEP_DEFAULTS["backoff_s"] = backoff_s
    if checkpoint_dir is not _UNSET:
        _SWEEP_DEFAULTS["checkpoint_dir"] = checkpoint_dir
    if bus_dir is not _UNSET:
        _SWEEP_DEFAULTS["bus_dir"] = bus_dir
    if profile is not _UNSET:
        _SWEEP_DEFAULTS["profile"] = bool(profile)


def sweep_defaults() -> dict:
    """A copy of the current ambient sweep defaults."""
    return dict(_SWEEP_DEFAULTS)


def _backoff_sleep(backoff_s: float, generation: int) -> None:
    if backoff_s <= 0:
        return
    delay = min(backoff_s * (2 ** generation), 30.0)
    delay *= 1.0 + 0.25 * (2.0 * random.random() - 1.0)  # ±25% jitter
    time.sleep(delay)


# --------------------------------------------------------------------------
# The sweep loop
# --------------------------------------------------------------------------


@dataclass
class _Pending:
    """Parent-side state for one not-yet-settled job."""

    job: object
    attempts: int = 0            # attempts consumed so far
    last: JobOutcome | None = None
    #: Blamed for an unexplained pool break: next attempt runs isolated
    #: (alone in a single-worker pool) so guilt becomes attributable.
    suspect: bool = False


def run_jobs(
    jobs: Sequence[WorkloadJob],
    n_jobs: int | None = None,
    progress=None,
    *,
    timeout_s: float | None = None,
    retries: int | None = None,
    backoff_s: float | None = None,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
    bus: "str | os.PathLike | None" = None,
    profile: bool | None = None,
) -> list[JobOutcome]:
    """Execute ``jobs``, fanning out across ``n_jobs`` worker processes.

    ``n_jobs`` of None/0/1 runs inline (no pool, no pickling) — handy for
    debugging and for callers that just want the failure-capturing
    contract.  Outcomes always come back ordered by submission index,
    regardless of which worker finished first, and a job that fails — by
    raising, by killing its worker, by hanging past ``timeout_s``, or by
    returning a result the parent cannot unpickle — is returned as a
    failed :class:`JobOutcome` rather than aborting the rest.

    ``retries`` re-runs failed attempts (any failure kind) up to that many
    extra times, sleeping ``backoff_s · 2^generation`` (±25% jitter)
    between generations.  ``timeout_s`` kills a worker whose job exceeds
    it (pooled runs only; inline jobs cannot be preempted).  ``checkpoint``
    names a directory for partial-sweep durability: completed
    :class:`WorkloadResult`s are restored from it instead of recomputed,
    and newly completed ones are appended to it.  Each of these falls back
    to the ambient default (:func:`set_sweep_defaults`) when None.

    ``progress`` (or, if None, the factory installed with
    :func:`set_default_progress`) receives each :class:`JobOutcome` as it
    *finishes* — completion order, not submission order — via
    ``job_done``, then ``close()`` when the sweep ends.

    ``bus`` names a :mod:`repro.obs.bus` directory: every worker (and the
    inline path) streams job_start/span/job_end records into its own
    JSONL channel there, and the parent adds sweep + settled-outcome
    records, so crashed jobs still leave an attributable trail.
    ``profile`` (requires ``bus``) cProfiles each job attempt into the
    same directory for a sweep-wide merged hot-function table.  Both fall
    back to the ambient defaults when None.
    """
    global _SWEEP_SEQ
    indexed = list(enumerate(jobs))
    if not indexed:
        return []
    if timeout_s is None:
        timeout_s = _SWEEP_DEFAULTS["timeout_s"]
    if retries is None:
        retries = _SWEEP_DEFAULTS["retries"]
    if backoff_s is None:
        backoff_s = _SWEEP_DEFAULTS["backoff_s"]
    if checkpoint is None:
        checkpoint = _SWEEP_DEFAULTS["checkpoint_dir"]
    if bus is None:
        bus = _SWEEP_DEFAULTS["bus_dir"]
    if profile is None:
        profile = _SWEEP_DEFAULTS["profile"]
    profile = bool(profile)
    bus_dir = os.fspath(bus) if bus is not None else None
    from repro.harness.checkpoint import resolve_checkpoint

    cp = resolve_checkpoint(checkpoint, jobs)

    prog = progress
    if prog is None and _PROGRESS_FACTORY is not None:
        prog = _PROGRESS_FACTORY(len(indexed))

    ch = None
    sweep_id = None
    prev_ch = None
    if bus_dir is not None:
        _SWEEP_SEQ += 1
        sweep_id = f"{os.getpid()}-{_SWEEP_SEQ}"
        prev_ch = obs_bus.current()
        ch = obs_bus.activate(bus_dir)
        ch.record(
            {"t": "sweep", "sweep": sweep_id, "n_jobs": len(indexed),
             "ts": time.time()},
            flush=True,
        )

    outcomes: dict[int, JobOutcome] = {}

    def settle(outcome: JobOutcome) -> None:
        outcomes[outcome.index] = outcome
        if ch is not None:
            # The parent's settled verdict: the only record a job whose
            # worker died hard gets beyond its job_start, and the source
            # of failure attribution in the sweep trace.
            ch.record(
                {"t": "outcome", "sweep": sweep_id, "job": outcome.index,
                 "key": getattr(outcome.job, "key", repr(outcome.job)),
                 "ok": outcome.ok, "failure_kind": outcome.failure_kind,
                 "duration_s": outcome.duration_s,
                 "attempts": outcome.attempts,
                 "resumed": outcome.resumed, "ts": time.time()},
                flush=True,
            )
        if cp is not None and outcome.ok and not outcome.resumed:
            cp.record(outcome)
        if prog is not None:
            prog.job_done(outcome)

    try:
        if cp is not None:
            for index, result in sorted(cp.load().items()):
                settle(JobOutcome(
                    index, jobs[index], result=result, resumed=True,
                ))
        todo = [(i, job) for i, job in indexed if i not in outcomes]
        workers = min(n_jobs or 1, len(indexed))
        if workers <= 1:
            _run_inline(
                todo, retries, backoff_s, settle,
                ch=ch, sweep=sweep_id, profile=profile, bus_dir=bus_dir,
            )
        elif todo:
            _run_pool(
                todo, workers, timeout_s, retries, backoff_s, settle,
                sweep=sweep_id, bus_dir=bus_dir, profile=profile,
            )
        return [outcomes[i] for i in range(len(indexed))]
    finally:
        if prog is not None:
            prog.close()
        if ch is not None and prev_ch is not ch:
            # We opened this channel for the sweep; hand the previous one
            # (if any) back so nested/sequential sweeps compose.
            obs_bus.deactivate()
            if prev_ch is not None:
                obs_bus.activate(prev_ch.directory)


def _run_inline(
    todo: list[tuple[int, object]],
    retries: int,
    backoff_s: float,
    settle: Callable[[JobOutcome], None],
    ch: "obs_bus.WorkerChannel | None" = None,
    sweep: str | None = None,
    profile: bool = False,
    bus_dir: str | None = None,
) -> None:
    """The no-pool path: sequential, with the same retry accounting.

    Timeouts are not enforced inline — there is no worker to kill without
    taking the caller down with it.  With a bus enabled the parent's own
    channel doubles as the worker channel (no dequeue/serialize spans —
    there is no transport).
    """
    for index, job in todo:
        attempt = 0
        while True:
            attempt += 1
            outcome = _observed_run(
                index, job, attempt, ch, sweep, profile, bus_dir,
            )
            if outcome.ok or attempt > retries:
                break
            _backoff_sleep(backoff_s, attempt - 1)
        settle(outcome)


def _run_pool(
    todo: list[tuple[int, object]],
    workers: int,
    timeout_s: float | None,
    retries: int,
    backoff_s: float,
    settle: Callable[[JobOutcome], None],
    sweep: str | None = None,
    bus_dir: str | None = None,
    profile: bool = False,
) -> None:
    """Generation-based resilient pool execution (module docstring)."""
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="repro-sweep-"))
    pending: dict[int, _Pending] = {
        i: _Pending(job=job) for i, job in todo
    }
    generation = 0
    stalled = 0
    try:
        while pending:
            # Crash suspects run one at a time in their own pool: a break
            # there is attributable beyond doubt, and innocents blamed in
            # a shared break get a solo retry the crasher cannot ruin.
            suspects = sorted(i for i in pending if pending[i].suspect)
            batch = suspects[:1] if suspects else sorted(pending)
            for i in batch:  # clear breadcrumbs from earlier generations
                for suffix in (".started", ".done"):
                    try:
                        (scratch / f"job-{i}{suffix}").unlink()
                    except OSError:
                        pass
            killed: set[int] = set()
            broken: dict[int, str] = {}
            progressed = 0  # settles + blamed attempts this generation

            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(batch)),
                initializer=_worker_stderr_init,
                initargs=(str(scratch),),
            )
            fut_index = {}
            try:
                for i in batch:
                    p = pending[i]
                    fut = pool.submit(
                        _tracked, i, p.job, str(scratch), p.attempts + 1,
                        sweep=sweep,
                        submit_ts=time.time() if bus_dir else None,
                        bus_dir=bus_dir, profile=profile,
                    )
                    fut_index[fut] = i
            except BrokenProcessPool:
                # Pool died while we were still submitting; unsubmitted
                # jobs simply stay pending for the next generation.
                pass
            not_done = set(fut_index)
            try:
                while not_done:
                    done, not_done = wait(
                        not_done, timeout=0.05, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        i = fut_index[fut]
                        try:
                            outcome = fut.result()
                        except BrokenProcessPool:
                            broken[i] = "process pool broken"
                            continue
                        except BaseException as exc:
                            broken[i] = f"{type(exc).__name__}: {exc}"
                            continue
                        p = pending[i]
                        p.attempts += 1
                        p.suspect = False  # it completed; exonerated
                        outcome.attempts = p.attempts
                        progressed += 1
                        if outcome.ok or p.attempts > retries:
                            settle(outcome)
                            del pending[i]
                        else:
                            p.last = outcome  # retry next generation
                    if timeout_s is not None and not_done:
                        now = time.time()
                        for i in batch:
                            if i in killed or i in broken or i not in pending:
                                continue
                            if (scratch / f"job-{i}.done").exists():
                                continue
                            info = _read_started(scratch, i)
                            if info and now - info["t0"] > timeout_s:
                                try:
                                    os.kill(info["pid"], signal.SIGKILL)
                                except (OSError, KeyError):
                                    pass
                                killed.add(i)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

            # Post-mortem: assign blame for futures the pool never served.
            # If the breakage has an *explained* cause — a timeout kill or
            # a job that finished but whose result broke transport — then
            # started-but-unfinished jobs are treated as innocent victims
            # of the teardown and requeued for free.  With no explanation,
            # the crasher must be among them, so they all pay an attempt.
            explained = bool(killed) or any(
                (scratch / f"job-{i}.done").exists() for i in broken
            )
            for i, msg in sorted(broken.items()):
                p = pending.get(i)
                if p is None:
                    continue
                started = _read_started(scratch, i)
                done = (scratch / f"job-{i}.done").exists()
                if i in killed:
                    kind = FAIL_TIMEOUT
                    desc = (
                        f"killed after exceeding the per-job timeout "
                        f"of {timeout_s}s"
                    )
                elif done:
                    if len(batch) > 1:
                        # Ambiguous in a shared pool: this job's finished
                        # result may have been dropped when a *sibling's*
                        # poisonous result broke the transport.  Isolate;
                        # alone, a repeat is attributable beyond doubt.
                        p.suspect = True
                        progressed += 1
                        continue
                    kind = FAIL_TRANSPORT
                    desc = f"worker finished but the result was lost: {msg}"
                elif started is not None and not explained:
                    kind = FAIL_CRASH
                    desc = (
                        f"worker (pid {started.get('pid')}) died without "
                        f"unwinding: {msg}"
                    )
                    p.suspect = True  # isolate its next attempt
                else:
                    # Never started, or an innocent victim of an explained
                    # teardown: requeue without spending an attempt.
                    continue
                p.attempts += 1
                progressed += 1
                tail = _stderr_tail(scratch, started)
                key = getattr(p.job, "key", repr(p.job))
                error = (
                    f"[{kind}] job {key!r} attempt {p.attempts}: {desc}"
                )
                if tail:
                    error += f"\n--- worker stderr tail ---\n{tail}"
                outcome = JobOutcome(
                    i, p.job, error=error, attempts=p.attempts,
                    failure_kind=kind, stderr_tail=tail,
                )
                if p.attempts > retries:
                    settle(outcome)
                    del pending[i]
                else:
                    p.last = outcome

            if progressed == 0:
                stalled += 1
                if stalled >= 3:
                    # Nothing settles and nothing is even blamable — e.g.
                    # the pool dies before any job starts, repeatedly.
                    # Fail the remainder rather than spin forever.
                    for i in sorted(pending):
                        p = pending.pop(i)
                        key = getattr(p.job, "key", repr(p.job))
                        settle(JobOutcome(
                            i, p.job, attempts=p.attempts,
                            failure_kind=FAIL_CRASH,
                            error=(
                                f"[{FAIL_CRASH}] job {key!r}: worker pool "
                                "died repeatedly before any job made "
                                "progress; giving up on the remainder"
                            ),
                        ))
                    break
            else:
                stalled = 0
            if pending:
                _backoff_sleep(backoff_s, generation)
            generation += 1
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def run_workloads(
    workloads: Sequence[Sequence[KernelSpec | str]],
    jobs: int | None = None,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    sm_partition: Sequence[int] | None = None,
    models: Sequence[str] = ("DASE", "MISE", "ASM"),
    policy: str | None = None,
    warmup_intervals: int = 1,
    cache_dir: str | None = None,
    progress=None,
    faults: "FaultPlan | None" = None,
    arrivals: "ArrivalSchedule | None" = None,
    backend: str | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
) -> list[JobOutcome]:
    """Sweep many workloads under one shared set of run parameters.

    ``cache_dir`` of None falls back to ``$REPRO_CACHE_DIR`` (see
    :func:`repro.harness.replay_cache.resolve_cache`); pass a path to
    persist alone replays across invocations.  ``progress``, ``faults``,
    ``timeout_s``, ``retries``, and ``checkpoint`` are forwarded to
    :func:`run_jobs` / each job.
    """
    if cache_dir is not None:
        AloneReplayCache(cache_dir)  # fail fast on an unusable directory
    else:
        resolved = resolve_cache(None)
        cache_dir = str(resolved.directory) if resolved else None
    specs = [
        WorkloadJob(
            apps=tuple(combo),
            config=config,
            shared_cycles=shared_cycles,
            sm_partition=tuple(sm_partition) if sm_partition else None,
            models=tuple(models),
            policy=policy,
            warmup_intervals=warmup_intervals,
            cache_dir=cache_dir,
            faults=faults,
            arrivals=arrivals,
            backend=backend,
        )
        for combo in workloads
    ]
    return run_jobs(
        specs, n_jobs=jobs, progress=progress,
        timeout_s=timeout_s, retries=retries, checkpoint=checkpoint,
    )
