"""Process-pool experiment runner.

Figure sweeps are embarrassingly parallel: each :func:`run_workload` call
is independent of every other, and the simulator is deterministic, so a
workload produces the same :class:`WorkloadResult` whether it runs inline,
in a worker process, or is reconstructed from cache.  This module provides
the fan-out machinery:

* :class:`WorkloadJob` — a picklable description of one run (app names or
  :class:`KernelSpec` objects, config, cycles, partition, models, policy
  name, cache directory);
* :func:`run_jobs` — execute jobs across a ``ProcessPoolExecutor`` (or
  inline for ``jobs <= 1``), returning :class:`JobOutcome` objects in
  submission order with per-job failures captured instead of aborting the
  sweep;
* :func:`run_workloads` — the convenience wrapper figure drivers use.

Policies cross the process boundary by *name* (see :data:`POLICIES`), not
as live objects, because a policy instance holds simulator state.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.config import GPUConfig
from repro.harness.replay_cache import AloneReplayCache, resolve_cache
from repro.harness.runner import WorkloadResult, run_workload, scaled_config
from repro.sim.kernel import KernelSpec

#: Policies constructible inside a worker process, by name.  Each factory
#: takes the resolved :class:`GPUConfig` of the run.
POLICIES: dict[str, Callable[[GPUConfig], object]] = {}


def _register_policies() -> None:
    # Imported lazily so constructing a WorkloadJob never pulls in the
    # policy stack; only jobs that actually name a policy pay the import.
    from repro.policies import DASEFairPolicy

    POLICIES.setdefault("dase_fair", DASEFairPolicy)


@dataclass(frozen=True)
class WorkloadJob:
    """One picklable unit of sweep work: the arguments of ``run_workload``.

    ``apps`` may mix suite names and frozen :class:`KernelSpec` objects —
    both pickle cleanly.  ``policy`` is a :data:`POLICIES` key or None.
    """

    apps: tuple[KernelSpec | str, ...]
    config: GPUConfig | None = None
    shared_cycles: int | None = None
    sm_partition: tuple[int, ...] | None = None
    models: tuple[str, ...] = ("DASE", "MISE", "ASM")
    policy: str | None = None
    warmup_intervals: int = 1
    cache_dir: str | None = None

    @property
    def key(self) -> str:
        return "+".join(a if isinstance(a, str) else a.name for a in self.apps)


@dataclass
class JobOutcome:
    """Result slot for one job, in submission order.

    Exactly one of ``result``/``error`` is set; ``error`` carries the
    worker-side traceback text so a failed pair diagnoses itself without
    killing the other 104.
    """

    index: int
    job: WorkloadJob
    result: WorkloadResult | None = None
    error: str | None = None
    duration_s: float = 0.0
    #: Alone-replay cache counters for this job ({"hits", "misses",
    #: "stores"}), or None when the job ran uncached.
    cache: dict | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> WorkloadResult:
        if self.result is None:
            raise RuntimeError(
                f"workload {self.job.key!r} failed:\n{self.error}"
            )
        return self.result


def _execute_with_cache(
    job: WorkloadJob,
) -> tuple[WorkloadResult, dict | None]:
    """Run one job; returns the result plus alone-replay cache counters."""
    config = job.config or scaled_config()
    policy = None
    if job.policy is not None:
        _register_policies()
        try:
            factory = POLICIES[job.policy]
        except KeyError:
            raise ValueError(
                f"unknown policy {job.policy!r}; choose from {sorted(POLICIES)}"
            ) from None
        policy = factory(config)
    cache: AloneReplayCache | None = (
        AloneReplayCache(job.cache_dir) if job.cache_dir else None
    )
    result = run_workload(
        list(job.apps),
        config=config,
        shared_cycles=job.shared_cycles,
        sm_partition=list(job.sm_partition) if job.sm_partition else None,
        models=job.models,
        policy=policy,
        warmup_intervals=job.warmup_intervals,
        alone_cache=cache,
    )
    cache_stats = (
        {"hits": cache.hits, "misses": cache.misses, "stores": cache.stores}
        if cache is not None
        else None
    )
    return result, cache_stats


def execute_job(job: WorkloadJob) -> WorkloadResult:
    """Run one job in the current process (the worker entry point)."""
    return _execute_with_cache(job)[0]


def _guarded(indexed_job: tuple[int, WorkloadJob]) -> JobOutcome:
    """Top-level (picklable) wrapper: never raises, captures tracebacks."""
    index, job = indexed_job
    t0 = time.perf_counter()
    try:
        result, cache_stats = _execute_with_cache(job)
        return JobOutcome(index, job, result=result,
                          duration_s=time.perf_counter() - t0,
                          cache=cache_stats)
    except Exception:
        return JobOutcome(index, job, error=traceback.format_exc(),
                          duration_s=time.perf_counter() - t0)


#: Ambient progress factory (``total_jobs -> reporter or None``): lets a
#: CLI entry point attach live progress to every sweep an experiment driver
#: runs without threading a kwarg through each driver's signature.
_PROGRESS_FACTORY: Callable[[int], object] | None = None


def set_default_progress(factory: Callable[[int], object] | None) -> None:
    """Install (or clear, with None) the ambient sweep-progress factory.

    The factory is called with the job count of each sweep and returns an
    object with ``job_done(outcome)`` / ``close()`` (duck-typed; see
    :class:`repro.obs.SweepProgress`), or None to skip that sweep.
    """
    global _PROGRESS_FACTORY
    _PROGRESS_FACTORY = factory


def run_jobs(
    jobs: Sequence[WorkloadJob],
    n_jobs: int | None = None,
    progress=None,
) -> list[JobOutcome]:
    """Execute ``jobs``, fanning out across ``n_jobs`` worker processes.

    ``n_jobs`` of None/0/1 runs inline (no pool, no pickling) — handy for
    debugging and for callers that just want the failure-capturing
    contract.  Outcomes always come back ordered by submission index,
    regardless of which worker finished first, and a job that raises is
    returned as a failed :class:`JobOutcome` rather than aborting the rest.

    ``progress`` (or, if None, the factory installed with
    :func:`set_default_progress`) receives each :class:`JobOutcome` as it
    *finishes* — completion order, not submission order — via
    ``job_done``, then ``close()`` when the sweep ends.
    """
    indexed = list(enumerate(jobs))
    if not indexed:
        return []
    prog = progress
    if prog is None and _PROGRESS_FACTORY is not None:
        prog = _PROGRESS_FACTORY(len(indexed))
    workers = min(n_jobs or 1, len(indexed))
    try:
        if workers <= 1:
            outcomes = []
            for ij in indexed:
                outcome = _guarded(ij)
                if prog is not None:
                    prog.job_done(outcome)
                outcomes.append(outcome)
            return outcomes
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if prog is None:
                outcomes = list(pool.map(_guarded, indexed, chunksize=1))
            else:
                # submit + as_completed so the reporter sees each job the
                # moment it finishes rather than in submission order.
                futures = [pool.submit(_guarded, ij) for ij in indexed]
                outcomes = []
                for future in as_completed(futures):
                    outcome = future.result()
                    prog.job_done(outcome)
                    outcomes.append(outcome)
        outcomes.sort(key=lambda o: o.index)
        return outcomes
    finally:
        if prog is not None:
            prog.close()


def run_workloads(
    workloads: Sequence[Sequence[KernelSpec | str]],
    jobs: int | None = None,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    sm_partition: Sequence[int] | None = None,
    models: Sequence[str] = ("DASE", "MISE", "ASM"),
    policy: str | None = None,
    warmup_intervals: int = 1,
    cache_dir: str | None = None,
    progress=None,
) -> list[JobOutcome]:
    """Sweep many workloads under one shared set of run parameters.

    ``cache_dir`` of None falls back to ``$REPRO_CACHE_DIR`` (see
    :func:`repro.harness.replay_cache.resolve_cache`); pass a path to
    persist alone replays across invocations.  ``progress`` is forwarded
    to :func:`run_jobs`.
    """
    if cache_dir is not None:
        AloneReplayCache(cache_dir)  # fail fast on an unusable directory
    else:
        resolved = resolve_cache(None)
        cache_dir = str(resolved.directory) if resolved else None
    specs = [
        WorkloadJob(
            apps=tuple(combo),
            config=config,
            shared_cycles=shared_cycles,
            sm_partition=tuple(sm_partition) if sm_partition else None,
            models=tuple(models),
            policy=policy,
            warmup_intervals=warmup_intervals,
            cache_dir=cache_dir,
        )
        for combo in workloads
    ]
    return run_jobs(specs, n_jobs=jobs, progress=progress)
