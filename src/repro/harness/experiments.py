"""One driver per paper figure/table (see DESIGN.md §4 for the index).

Every driver returns a plain data structure with the same rows/series the
paper reports, so benchmarks and examples can print or assert on them.
Cycle budgets honour ``REPRO_FULL`` (see :mod:`repro.harness.runner`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.config import GPUConfig
from repro.faults import noise_plan
from repro.harness.parallel import WorkloadJob, run_jobs, run_workloads
from repro.harness.runner import (
    WorkloadResult,
    default_shared_cycles,
    full_scale,
    run_workload,
    scaled_config,
)
from repro.metrics import error_distribution, mean
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import AccessPattern, KernelSpec
from repro.workloads import SUITE, four_app_workloads, two_app_workloads

#: Default subset of pairs used when a full 105-pair sweep would take too
#: long; chosen to span victim/aggressor/compute-bound mixes.
DEFAULT_PAIRS: list[tuple[str, str]] = [
    ("SD", "SB"), ("SD", "SA"), ("SD", "VA"), ("SD", "QR"), ("BS", "SB"),
    ("QR", "SB"), ("NN", "VA"), ("CT", "QR"), ("CS", "SC"), ("SN", "SP"),
]


def pair_list(limit: int | None = None) -> list[tuple[str, str]]:
    """Pairs to sweep: all 105 at full scale, the default subset otherwise."""
    if full_scale():
        pairs = two_app_workloads()
    else:
        pairs = list(DEFAULT_PAIRS)
    return pairs[:limit] if limit else pairs


# --------------------------------------------------------------------- Fig 2


@dataclass
class Fig2Result:
    """Unfairness of two-app combos + DRAM bandwidth decomposition."""

    combos: list[tuple[str, str]]
    unfairness: dict[str, float]  # "SD+SB" → unfairness
    slowdowns: dict[str, list[float]]
    breakdown: dict[str, dict[str, float]]  # combo → {app0, app1, wasted, idle}
    sd_alone_bw: float = 0.0

    def to_dict(self) -> dict:
        return {
            "combos": [list(c) for c in self.combos],
            "unfairness": dict(self.unfairness),
            "slowdowns": {k: list(v) for k, v in self.slowdowns.items()},
            "breakdown": {k: dict(v) for k, v in self.breakdown.items()},
            "sd_alone_bw": self.sd_alone_bw,
        }


def fig2_unfairness(
    combos: list[tuple[str, str]] | None = None,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> Fig2Result:
    """Fig. 2: unfairness of SD paired with aggressive co-runners, and the
    bandwidth decomposition explaining it."""
    combos = combos or [("SD", "SB"), ("SD", "VA"), ("SD", "SA")]
    config = config or scaled_config()
    shared_cycles = shared_cycles or default_shared_cycles()
    out = Fig2Result(combos=combos, unfairness={}, slowdowns={}, breakdown={})
    outcomes = run_workloads(
        combos, jobs=jobs, config=config, shared_cycles=shared_cycles,
        models=(), cache_dir=cache_dir, backend=backend,
    )
    for pair, outcome in zip(combos, outcomes):
        key = "+".join(pair)
        res = outcome.unwrap()
        out.unfairness[key] = res.actual_unfairness
        out.slowdowns[key] = res.actual_slowdowns
        # Re-run the shared execution to collect the bus decomposition
        # (cheap relative to the alone replays above).
        gpu = GPU(config, [
            LaunchedKernel(SUITE[n], stream_id=i) for i, n in enumerate(pair)
        ])
        gpu.run(shared_cycles)
        bd = gpu.bandwidth_breakdown()
        out.breakdown[key] = {
            pair[0]: bd["app0"], pair[1]: bd["app1"],
            "wasted": bd["wasted"], "idle": bd["idle"],
        }
    alone = GPU(config, [SUITE["SD"]])
    alone.run(shared_cycles // 2)
    out.sd_alone_bw = alone.bandwidth_utilization(0)
    return out


# --------------------------------------------------------------------- Fig 3


@dataclass
class Fig3Result:
    """IPC vs memory request service rate for one app at varying intensity."""

    points: list[tuple[float, float]]  # (requests/kcycle, IPC)
    correlation: float

    def to_dict(self) -> dict:
        return {
            "points": [list(p) for p in self.points],
            "correlation": self.correlation,
        }


def fig3_service_rate(
    config: GPUConfig | None = None, cycles: int | None = None
) -> Fig3Result:
    """Fig. 3: a memory-intensive kernel's performance is proportional to
    its request service rate.  We sweep memory intensity and measure both."""
    config = config or scaled_config()
    cycles = cycles or max(40_000, default_shared_cycles() // 6)
    points: list[tuple[float, float]] = []
    for cpm in (0, 1, 2, 4, 8, 16, 32):
        spec = KernelSpec(
            "sweep", compute_per_mem=cpm, pattern=AccessPattern.STREAM,
            warps_per_block=6, max_resident_blocks=2,
        )
        gpu = GPU(config, [spec])
        gpu.run(cycles)
        rate = gpu.mem_stats.apps[0].requests_served / cycles * 1000
        # "Performance" for a memory kernel = memory instructions retired;
        # measure it as request throughput-normalized IPC of memory ops.
        mem_ipc = gpu.progress[0].instructions / cycles / (cpm + 1)
        points.append((rate, mem_ipc))
    xs, ys = zip(*points)
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in points)
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    corr = cov / (vx * vy) if vx > 0 and vy > 0 else 0.0
    return Fig3Result(points=points, correlation=corr)


# --------------------------------------------------------------------- Fig 4


@dataclass
class Fig4Result:
    """Served requests: SB alone vs the sum when SB shares the GPU."""

    alone_rate: float  # SB alone, requests per kcycle
    shared_rates: dict[str, tuple[float, float]]  # partner → (SB, partner)

    def to_dict(self) -> dict:
        return {
            "alone_rate": self.alone_rate,
            "shared_rates": {k: list(v) for k, v in self.shared_rates.items()},
        }


def fig4_mbb_requests(
    partners: list[str] | None = None,
    config: GPUConfig | None = None,
    cycles: int | None = None,
) -> Fig4Result:
    """Fig. 4: a memory-bandwidth-bound app alone serves ≈ as many requests
    as the *sum* of all apps when it runs with others."""
    partners = partners or ["SA", "VA", "QR"]
    config = config or scaled_config()
    cycles = cycles or max(60_000, default_shared_cycles() // 3)
    alone = GPU(config, [SUITE["SB"]])
    alone.run(cycles)
    alone_rate = alone.mem_stats.apps[0].requests_served / cycles * 1000
    shared: dict[str, tuple[float, float]] = {}
    for p in partners:
        gpu = GPU(config, [
            LaunchedKernel(SUITE["SB"], stream_id=0),
            LaunchedKernel(SUITE[p], stream_id=1),
        ])
        gpu.run(cycles)
        shared[p] = (
            gpu.mem_stats.apps[0].requests_served / cycles * 1000,
            gpu.mem_stats.apps[1].requests_served / cycles * 1000,
        )
    return Fig4Result(alone_rate=alone_rate, shared_rates=shared)


# ---------------------------------------------------------------- Figs 5 - 7


@dataclass
class AccuracyResult:
    """Per-model estimation errors over a set of workloads (Figs. 5/6/7).

    ``skipped`` counts apps whose estimate was ``None`` per model, so the
    reported means state their true sample size; ``failures`` maps combo
    keys to worker tracebacks for workloads that crashed (they contribute
    nothing to the error pools and are absent from ``per_workload``).
    """

    workloads: list[tuple[str, ...]]
    per_workload: dict[str, dict[str, float]]  # combo key → model → mean err
    errors: dict[str, list[float]]  # model → all per-app errors
    results: list[WorkloadResult] = field(default_factory=list)
    skipped: dict[str, int] = field(default_factory=dict)
    failures: dict[str, str] = field(default_factory=dict)

    def mean_error(self, model: str) -> float:
        return mean(self.errors[model])

    def distribution(self, model: str) -> dict[str, float]:
        return error_distribution(self.errors[model])

    def sample_count(self, model: str) -> int:
        """Number of per-app errors actually pooled for ``model``."""
        return len(self.errors[model])

    def to_dict(self) -> dict:
        def clean(v: float) -> float | None:
            return None if v != v else v  # NaN → null in JSON records

        return {
            "workloads": [list(w) for w in self.workloads],
            "per_workload": {
                k: {m: clean(e) for m, e in row.items()}
                for k, row in self.per_workload.items()
            },
            "mean_error": {
                m: (mean(errs) if errs else None)
                for m, errs in self.errors.items()
            },
            "distribution": {
                m: self.distribution(m)
                for m in self.errors if self.errors[m]
            },
            "samples": {m: len(errs) for m, errs in self.errors.items()},
            "skipped": dict(self.skipped),
            "failures": dict(self.failures),
        }


def estimation_accuracy(
    workloads: list[tuple[str, ...]],
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    models: tuple[str, ...] = ("DASE", "MISE", "ASM"),
    sm_partition=None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> AccuracyResult:
    """Shared driver for Figs. 5, 6 and 7.

    ``jobs`` fans the workloads out across that many worker processes
    (see :mod:`repro.harness.parallel`); ``cache_dir`` memoises the alone
    replays on disk across invocations.
    """
    out = AccuracyResult(
        workloads=list(workloads),
        per_workload={},
        errors={m: [] for m in models},
        skipped={m: 0 for m in models},
    )
    outcomes = run_workloads(
        workloads, jobs=jobs, config=config, shared_cycles=shared_cycles,
        models=models, sm_partition=sm_partition, cache_dir=cache_dir,
        backend=backend,
    )
    for combo, outcome in zip(workloads, outcomes):
        key = "+".join(combo)
        if not outcome.ok:
            out.failures[key] = outcome.error or "unknown failure"
            continue
        res = outcome.result
        out.per_workload[key] = {}
        for m in models:
            errs = res.errors(m)
            out.errors[m].extend(errs)
            out.skipped[m] += res.skipped(m)
            out.per_workload[key][m] = mean(errs) if errs else float("nan")
        out.results.append(res)
    return out


def fig5_two_app_accuracy(limit: int | None = None, **kw) -> AccuracyResult:
    """Fig. 5: estimation error across two-application workloads."""
    return estimation_accuracy(pair_list(limit), **kw)


def fig6_four_app_accuracy(count: int | None = None, **kw) -> AccuracyResult:
    """Fig. 6: estimation error across four-application workloads."""
    n = count if count is not None else (30 if full_scale() else 4)
    return estimation_accuracy(four_app_workloads(n), **kw)


def fig7_error_distribution(
    two_app: AccuracyResult, four_app: AccuracyResult | None = None
) -> dict[str, dict[str, float]]:
    """Fig. 7: error histogram per model, pooled over all workloads."""
    out: dict[str, dict[str, float]] = {}
    for model in two_app.errors:
        errs = list(two_app.errors[model])
        if four_app is not None:
            errs += four_app.errors[model]
        out[model] = error_distribution(errs)
    return out


# --------------------------------------------------------------------- Fig 8


@dataclass
class SensitivityResult:
    labels: list[str]
    dase_errors: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "labels": list(self.labels),
            "dase_errors": dict(self.dase_errors),
        }


def fig8a_sm_allocation_sensitivity(
    splits: list[tuple[int, int]] | None = None,
    pairs: list[tuple[str, str]] | None = None,
    **kw,
) -> SensitivityResult:
    """Fig. 8a: DASE accuracy under uneven launch-time SM splits."""
    splits = splits or [(4, 12), (8, 8), (12, 4)]
    pairs = pairs or pair_list(3 if not full_scale() else 30)
    labels, errs = [], {}
    for a, b in splits:
        label = f"{a}+{b}"
        acc = estimation_accuracy(
            pairs, models=("DASE",), sm_partition=[a, b], **kw
        )
        labels.append(label)
        errs[label] = acc.mean_error("DASE")
    return SensitivityResult(labels=labels, dase_errors=errs)


def fig8b_sm_count_sensitivity(
    sm_counts: list[int] | None = None,
    pairs: list[tuple[str, str]] | None = None,
    shared_cycles: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
    seed: int | None = None,
) -> SensitivityResult:
    """Fig. 8b: DASE accuracy when the GPU itself has fewer/more SMs."""
    sm_counts = sm_counts or [8, 16]
    pairs = pairs or pair_list(3 if not full_scale() else 30)
    labels, errs = [], {}
    for n in sm_counts:
        overrides = {"n_sms": n}
        if seed is not None:
            overrides["seed"] = seed
        cfg = scaled_config(**overrides)
        acc = estimation_accuracy(
            pairs, config=cfg, models=("DASE",), shared_cycles=shared_cycles,
            jobs=jobs, cache_dir=cache_dir, backend=backend,
        )
        label = f"{n}SMs"
        labels.append(label)
        errs[label] = acc.mean_error("DASE")
    return SensitivityResult(labels=labels, dase_errors=errs)


# --------------------------------------------------------------------- Fig 9


@dataclass
class Fig9Result:
    """DASE-Fair vs the even split."""

    workloads: list[str]
    unfairness_even: dict[str, float]
    unfairness_fair: dict[str, float]
    hspeedup_even: dict[str, float]
    hspeedup_fair: dict[str, float]

    @property
    def mean_unfairness_improvement(self) -> float:
        """Mean relative reduction in unfairness (paper: >16.1%)."""
        vals = [
            1.0 - self.unfairness_fair[k] / self.unfairness_even[k]
            for k in self.workloads
        ]
        return mean(vals)

    @property
    def mean_hspeedup_improvement(self) -> float:
        """Mean relative H-speedup gain (paper: >3.7%)."""
        vals = [
            self.hspeedup_fair[k] / self.hspeedup_even[k] - 1.0
            for k in self.workloads
        ]
        return mean(vals)

    def to_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "unfairness_even": dict(self.unfairness_even),
            "unfairness_fair": dict(self.unfairness_fair),
            "hspeedup_even": dict(self.hspeedup_even),
            "hspeedup_fair": dict(self.hspeedup_fair),
            "mean_unfairness_improvement": self.mean_unfairness_improvement,
            "mean_hspeedup_improvement": self.mean_hspeedup_improvement,
        }


def fig9_dase_fair(
    pairs: list[tuple[str, str]] | None = None,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> Fig9Result:
    """Fig. 9: run each workload under the even policy and under DASE-Fair.

    Kernels the paper calls 'unfit' (too few thread blocks — here BG) are
    excluded, as in the paper.  The even and DASE-Fair runs of every pair
    are independent, so all 2·N runs fan out together under ``jobs``.
    """
    if pairs is None:
        pairs = [p for p in pair_list() if "BG" not in p]
    config = config or scaled_config()
    out = Fig9Result([], {}, {}, {}, {})
    even_runs = run_workloads(
        pairs, jobs=jobs, config=config, shared_cycles=shared_cycles,
        models=(), cache_dir=cache_dir, backend=backend,
    )
    fair_runs = run_workloads(
        pairs, jobs=jobs, config=config, shared_cycles=shared_cycles,
        models=(), policy="dase_fair", cache_dir=cache_dir, backend=backend,
    )
    for pair, even_o, fair_o in zip(pairs, even_runs, fair_runs):
        key = "+".join(pair)
        even, fair = even_o.unwrap(), fair_o.unwrap()
        out.workloads.append(key)
        out.unfairness_even[key] = even.actual_unfairness
        out.unfairness_fair[key] = fair.actual_unfairness
        out.hspeedup_even[key] = even.actual_hspeedup
        out.hspeedup_fair[key] = fair.actual_hspeedup
    return out


# --------------------------------------------------- degradation under faults


#: Default counter-noise intensities for the degradation sweep.  σ = 0 is
#: the exact-counter anchor; the top value is already "a counter you
#: shouldn't trust" (±~55% at one standard deviation).
DEFAULT_SIGMAS: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass
class DegradationResult:
    """DASE accuracy and DASE-Fair fairness vs counter-fault intensity.

    One point per noise σ, all sharing ``seed`` so the curve is a
    continuous deformation of a single noise realization (the injector's
    common-random-numbers contract, docs/faults.md): ``dase_error`` from
    policy-free runs (estimation degradation in isolation), ``unfairness``
    from DASE-Fair runs of the same workload (fault-misled migrations
    feeding back into the execution).
    """

    pair: tuple[str, ...]
    sigmas: list[float]
    seed: int
    dase_error: dict[float, float]  # σ → mean DASE relative error
    unfairness: dict[float, float]  # σ → actual unfairness under DASE-Fair
    failures: dict[str, str] = field(default_factory=dict)

    def error_curve(self) -> list[tuple[float, float]]:
        return [(s, self.dase_error[s]) for s in self.sigmas
                if s in self.dase_error]

    def unfairness_curve(self) -> list[tuple[float, float]]:
        return [(s, self.unfairness[s]) for s in self.sigmas
                if s in self.unfairness]

    def error_is_monotone(self, tolerance: float = 0.0) -> bool:
        """Whether DASE error is non-decreasing in σ (± ``tolerance``)."""
        curve = self.error_curve()
        return all(
            b[1] >= a[1] - tolerance for a, b in zip(curve, curve[1:])
        )

    def to_dict(self) -> dict:
        return {
            "pair": list(self.pair),
            "sigmas": list(self.sigmas),
            "seed": self.seed,
            "dase_error": {str(s): e for s, e in self.dase_error.items()},
            "unfairness": {str(s): u for s, u in self.unfairness.items()},
            "error_monotone": self.error_is_monotone(),
            "failures": dict(self.failures),
        }


def fig_degradation(
    pair: tuple[str, str] | None = None,
    sigmas: tuple[float, ...] | None = None,
    seed: int = 7,
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
) -> DegradationResult:
    """Degradation curves: estimate error and unfairness vs counter noise.

    For each σ, two independent runs of the same pair: one policy-free
    (DASE accuracy under distorted counters) and one under DASE-Fair (how
    much fairness the scheduler loses when its estimator is misled).  All
    2·N runs fan out together under ``jobs``; every σ shares the same
    fault seed, so points differ only in intensity, never in realization.

    The σ = 0 anchors are bit-identical to unfaulted runs (a null plan
    creates no injector), so the curve's origin doubles as a golden check.
    """
    pair = tuple(pair or ("SD", "SB"))
    sigmas = tuple(sigmas if sigmas is not None else DEFAULT_SIGMAS)
    shared_cycles = shared_cycles or default_shared_cycles()
    job_list: list[WorkloadJob] = []
    for policy in (None, "dase_fair"):
        for sigma in sigmas:
            job_list.append(WorkloadJob(
                apps=pair,
                config=config,
                shared_cycles=shared_cycles,
                models=("DASE",),
                policy=policy,
                cache_dir=cache_dir,
                faults=noise_plan(sigma, seed=seed) if sigma > 0 else None,
                backend=backend,
            ))
    outcomes = run_jobs(job_list, n_jobs=jobs)
    out = DegradationResult(
        pair=pair, sigmas=list(sigmas), seed=seed,
        dase_error={}, unfairness={},
    )
    n = len(sigmas)
    for sigma, outcome in zip(sigmas, outcomes[:n]):
        if not outcome.ok:
            out.failures[f"accuracy@{sigma}"] = outcome.error or "failed"
            continue
        out.dase_error[sigma] = outcome.result.mean_error("DASE")
    for sigma, outcome in zip(sigmas, outcomes[n:]):
        if not outcome.ok:
            out.failures[f"fair@{sigma}"] = outcome.error or "failed"
            continue
        out.unfairness[sigma] = outcome.result.actual_unfairness
    return out


# --------------------------------------------------------- open-system churn

# fig-churn lives with the rest of the open-system machinery; re-exported
# here so the CLI and callers find every figure driver in one module.
from repro.opensys.churn import (  # noqa: E402
    DEFAULT_RATES,
    ChurnResult,
    fig_churn,
)
