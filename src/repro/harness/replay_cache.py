"""On-disk cache of matched-instruction alone replays.

The evaluation methodology (:mod:`repro.harness.runner`) replays every
application *alone on the full GPU* for exactly the instruction count it
reached in the shared run.  The replay is a pure function of

* the kernel spec (every field of :class:`~repro.sim.kernel.KernelSpec`),
* the stream identity (``stream_id`` seeds the warp RNGs),
* the GPU configuration (including ``seed``), and
* the target instruction count,

so its result — the alone cycle count — can be memoised.  This module
stores one small JSON file per ``(spec, stream, config, instructions)``
key under a cache directory, which makes the cache safe under concurrent
writers (each entry is written atomically via a temp file + rename; two
workers racing on the same key write identical bytes).

Entries are self-verifying: each file carries a SHA-256 checksum of its
own payload, checked on every read.  A corrupt entry (truncated write,
bit flip, concurrent filesystem damage) is *quarantined* — moved into
``<dir>/quarantine/`` for post-mortem — and reported as a miss, so the
caller recomputes and re-stores a good entry instead of crashing or,
worse, silently trusting a damaged cycle count.

The cache directory defaults to ``$REPRO_CACHE_DIR`` when set; callers
normally pass an explicit directory (the CLI exposes ``--cache-dir``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import time
from typing import Any

from repro.config import GPUConfig
from repro.harness.persist import atomic_write_json
from repro.sim.kernel import KernelSpec


def _canonical(obj: Any) -> Any:
    """Reduce dataclasses/enums to plain JSON-stable values for hashing."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def fingerprint(obj: Any) -> str:
    """Stable hex digest of any dataclass/primitive structure."""
    blob = json.dumps(_canonical(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_fingerprint(spec: KernelSpec, stream_id: int) -> str:
    """Fingerprint of one kernel *as replayed*: spec fields + stream seed."""
    return fingerprint({"spec": _canonical(spec), "stream_id": stream_id})


def config_fingerprint(config: GPUConfig) -> str:
    """Fingerprint of the *semantic* configuration.

    ``backend`` selects an implementation, not a model: backends are
    result-equivalent by contract (identical address streams and integer
    counters — gated by tests/test_backends.py), so it is excluded here.
    A cache entry or golden recorded under one backend stays valid under
    every other, and both backends share one alone-replay cache.
    """
    canon = _canonical(config)
    canon.pop("backend", None)
    return fingerprint(canon)


def default_cache_dir() -> pathlib.Path | None:
    """The ``REPRO_CACHE_DIR`` directory, or None when caching is off."""
    d = os.environ.get("REPRO_CACHE_DIR", "")
    return pathlib.Path(d) if d else None


def entry_checksum(entry: dict) -> str:
    """Self-checksum of a cache entry: SHA-256 over the canonical JSON of
    every field except ``checksum`` itself."""
    body = {k: v for k, v in entry.items() if k != "checksum"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Orphan ``*.tmp`` files younger than this are left alone on cache open —
#: they may belong to a concurrent writer mid-``atomic_write_json``.
TMP_SWEEP_AGE_S = 300.0


class AloneReplayCache:
    """Maps (kernel, stream, config, instruction count) → alone cycles.

    Entries live as individual JSON files named by the key digest, plus an
    in-memory layer so repeated lookups within one process never re-read
    the disk.  ``hits``/``misses``/``stores`` counters let tests and
    benchmarks assert on cache behaviour.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache directory {self.directory} exists but is not a "
                "directory"
            )
        self._mem: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Entries moved aside because their checksum failed (see
        #: :meth:`_quarantine`); each is also counted as a miss.
        self.quarantined = 0
        #: Orphan temp files removed on open.
        self.tmp_swept = self._sweep_tmp()

    def _sweep_tmp(self) -> int:
        """Remove orphan ``.*.tmp`` files left by interrupted atomic writes.

        Only files older than :data:`TMP_SWEEP_AGE_S` go — a younger one
        may be a concurrent worker's in-flight write (``atomic_write_json``
        renames within well under a second, so anything older is dead).
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - TMP_SWEEP_AGE_S
        swept = 0
        for tmp in self.directory.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    swept += 1
            except OSError:
                continue  # raced with the owner or another sweeper
        return swept

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt entry into ``<dir>/quarantine/`` for post-mortem
        (never delete evidence) so the key recomputes to a good entry."""
        qdir = self.directory / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
        except OSError:
            # Couldn't move it (permissions, races) — still treat the
            # entry as a miss; the recompute will overwrite it in place.
            pass

    def key(
        self,
        spec: KernelSpec,
        stream_id: int,
        config: GPUConfig,
        instructions: int,
    ) -> str:
        return fingerprint(
            {
                "spec": spec_fingerprint(spec, stream_id),
                "config": config_fingerprint(config),
                "instructions": instructions,
            }
        )

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(
        self,
        spec: KernelSpec,
        stream_id: int,
        config: GPUConfig,
        instructions: int,
    ) -> int | None:
        """Cached alone-cycle count for this replay, or None."""
        key = self.key(spec, stream_id, config, instructions)
        if key in self._mem:
            self.hits += 1
            return self._mem[key]
        path = self._path(key)
        try:
            with path.open() as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            # Unreadable or not JSON: truncated write or on-disk damage.
            self._quarantine(path)
            self.misses += 1
            return None
        cycles = entry.get("alone_cycles") if isinstance(entry, dict) else None
        stored_sum = entry.get("checksum") if isinstance(entry, dict) else None
        if (
            not isinstance(cycles, int)
            or stored_sum != entry_checksum(entry)
        ):
            # Parsable but wrong: a flipped bit inside valid JSON is the
            # dangerous case — without the checksum it would be *trusted*.
            # (Pre-checksum legacy entries also land here: unverifiable
            # data is recomputed, not believed.)
            self._quarantine(path)
            self.misses += 1
            return None
        self._mem[key] = cycles
        self.hits += 1
        return cycles

    def put(
        self,
        spec: KernelSpec,
        stream_id: int,
        config: GPUConfig,
        instructions: int,
        alone_cycles: int,
    ) -> None:
        """Record one replay result (atomic; safe under concurrent writers)."""
        key = self.key(spec, stream_id, config, instructions)
        self._mem[key] = alone_cycles
        entry = {
            "kernel": spec.name,
            "stream_id": stream_id,
            "instructions": instructions,
            "alone_cycles": alone_cycles,
        }
        entry["checksum"] = entry_checksum(entry)
        atomic_write_json(self._path(key), entry)
        self.stores += 1

    def __len__(self) -> int:
        """Number of entries on disk (not just in memory)."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))


def resolve_cache(
    cache: AloneReplayCache | str | os.PathLike | None,
) -> AloneReplayCache | None:
    """Coerce a cache argument: an instance, a directory, or None.

    ``None`` falls back to ``$REPRO_CACHE_DIR`` so whole sweeps can be
    cached without threading a path through every call site.
    """
    if isinstance(cache, AloneReplayCache):
        return cache
    if cache is not None:
        return AloneReplayCache(cache)
    default = default_cache_dir()
    return AloneReplayCache(default) if default else None
