"""Shared figure-driver dispatch for the CLI and the service layer.

:func:`run_figure` executes one registered figure experiment and returns a
:class:`FigureRun` — the typed payload, the scenario-builder kwargs that
identify it, and the rendered text table.  :func:`record_figure` writes that
payload into a :class:`~repro.store.ResultStore` under its
:class:`~repro.store.ScenarioSpec` identity, exactly the way the figure
drivers' ``--store`` flag does.

``repro fig*`` and ``repro serve`` both go through these two functions, so a
scenario submitted over the service API produces the same ``record_id`` as
the direct CLI path — the store's hash addressing makes that a checkable
guarantee rather than a convention (see tests/test_service.py and the CI
``service-smoke`` job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Figure drivers runnable through :func:`run_figure`, i.e. every name in
#: the scenario registry (:data:`repro.store.SCENARIOS`).
FIGURES: tuple[str, ...] = (
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8a", "fig8b", "fig9", "fig-degradation", "fig-churn",
)


@dataclass(frozen=True)
class FigureRun:
    """One executed figure driver: payload + scenario identity + rendering.

    ``payload`` is the JSON-safe dict that ``--store`` records;
    ``scenario_kw`` are the keyword arguments the scenario builder needs to
    reconstruct the spec (pairs swept, sigma axis, ...); ``result`` keeps
    the live result object for callers that export richer artifacts.
    """

    name: str
    payload: dict[str, Any]
    scenario_kw: dict[str, Any]
    rendered: str
    seed: int | None = None
    backend: str | None = None
    result: Any = field(default=None, compare=False, repr=False)


def run_figure(
    name: str,
    *,
    seed: int | None = None,
    limit: int | None = None,
    jobs: int | None = None,
    cache_dir: str | None = None,
    backend: str | None = None,
    **driver_kw: Any,
) -> FigureRun:
    """Run figure driver ``name`` and return its :class:`FigureRun`.

    ``driver_kw`` passes figure-specific knobs through (fig-degradation's
    ``pair``/``sigmas``, fig-churn's ``base``/``pool``/``rates``/...).
    Unknown figures raise a one-line :class:`ValueError` (the inspect
    error contract).
    """
    from repro.harness import experiments as ex
    from repro.harness import report as rp
    from repro.harness import scaled_config

    if name not in FIGURES:
        raise ValueError(
            f"unknown figure {name!r}; choose from {', '.join(FIGURES)}"
        )
    par = {"jobs": jobs, "cache_dir": cache_dir, "backend": backend}
    # Figure drivers default to the GPUConfig seed; --seed pins it.
    # fig-degradation / fig-churn interpret seed as their fault/arrival
    # seed and fig8b threads it per SM count, so they take it directly.
    cfg = None
    if seed is not None and name not in ("fig-degradation", "fig-churn",
                                         "fig8b"):
        cfg = scaled_config(seed=seed)
    if name == "fig2":
        res = ex.fig2_unfairness(config=cfg, **par)
        payload, kw = res.to_dict(), {"pairs": res.combos}
        text = rp.render_fig2(res)
    elif name == "fig3":
        res = ex.fig3_service_rate(config=cfg)  # inline, no sweep
        payload, kw = res.to_dict(), {}
        text = rp.render_fig3(res)
    elif name == "fig4":
        res = ex.fig4_mbb_requests(config=cfg)  # inline, no sweep
        payload, kw = res.to_dict(), {"partners": sorted(res.shared_rates)}
        text = rp.render_fig4(res)
    elif name == "fig5":
        res = ex.fig5_two_app_accuracy(limit=limit, config=cfg, **par)
        payload, kw = res.to_dict(), {"pairs": res.workloads}
        text = rp.render_accuracy(res, "Fig 5 — two-application error")
    elif name == "fig6":
        res = ex.fig6_four_app_accuracy(count=limit, config=cfg, **par)
        payload, kw = res.to_dict(), {"pairs": res.workloads}
        text = rp.render_accuracy(res, "Fig 6 — four-application error")
    elif name == "fig7":
        two = ex.fig5_two_app_accuracy(limit=limit, config=cfg, **par)
        res = ex.fig7_error_distribution(two)
        payload, kw = res, {"pairs": two.workloads}
        text = rp.render_distribution(res)
    elif name == "fig8a":
        res = ex.fig8a_sm_allocation_sensitivity(config=cfg, **par)
        payload, kw = res.to_dict(), {"splits": res.labels}
        text = rp.render_sensitivity(res, "Fig 8a — SM split")
    elif name == "fig8b":
        res = ex.fig8b_sm_count_sensitivity(seed=seed, **par)
        payload, kw = res.to_dict(), {"sm_counts": res.labels}
        text = rp.render_sensitivity(res, "Fig 8b — SM count")
    elif name == "fig9":
        res = ex.fig9_dase_fair(config=cfg, **par)
        payload, kw = res.to_dict(), {
            "pairs": [tuple(k.split("+")) for k in res.workloads],
        }
        text = rp.render_fig9(res)
    elif name == "fig-degradation":
        res = ex.fig_degradation(seed=seed, **driver_kw, **par)
        payload, kw = res.to_dict(), {"pair": res.pair, "sigmas": res.sigmas}
        text = rp.render_degradation(res)
    else:  # fig-churn
        res = ex.fig_churn(seed=seed, **driver_kw, **par)
        payload, kw = res.to_dict(), {
            "base": res.base, "pool": res.pool, "rates": res.rates,
        }
        text = rp.render_churn(res)
    return FigureRun(name=name, payload=payload, scenario_kw=kw,
                     rendered=text, seed=seed, backend=backend, result=res)


def record_figure(store_dir: str, run: FigureRun):
    """Record ``run`` into the store at ``store_dir``.

    Returns ``(record, spec)``.  This is the single recording path shared
    by ``repro fig* --store`` and the service's scenario jobs: the spec is
    rebuilt from the run's scenario kwargs and the provenance carries the
    config fingerprint of an equivalent host invocation, so record ids are
    identical whichever entry point produced the payload.
    """
    from repro.harness import scaled_config
    from repro.harness.replay_cache import config_fingerprint
    from repro.store import PAYLOAD_SCHEMAS, ResultStore, scenario_for

    spec = scenario_for(
        run.name, seed=run.seed, backend=run.backend, **run.scenario_kw
    )
    overrides = {"seed": run.seed} if run.seed is not None else {}
    provenance = {
        "config_fingerprint": config_fingerprint(scaled_config(**overrides)),
    }
    rec = ResultStore(store_dir).record(
        spec, run.payload, PAYLOAD_SCHEMAS[run.name], provenance=provenance
    )
    return rec, spec
