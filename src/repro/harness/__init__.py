"""Evaluation harness: the paper's matched-instruction methodology
(§5 'Workloads') and one driver per figure/table (§'experiments')."""

from repro.harness.runner import (
    WorkloadResult,
    default_shared_cycles,
    full_scale,
    run_workload,
    scaled_config,
)
from repro.harness.persist import load_result, save_result
from repro.harness.telemetry import Sample, Telemetry

__all__ = [
    "WorkloadResult",
    "run_workload",
    "scaled_config",
    "default_shared_cycles",
    "full_scale",
    "Telemetry",
    "Sample",
    "save_result",
    "load_result",
]
