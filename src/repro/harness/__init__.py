"""Evaluation harness: the paper's matched-instruction methodology
(§5 'Workloads'), one driver per figure/table ('experiments'), and the
process-pool sweep runner with its alone-replay cache ('parallel')."""

from repro.harness.runner import (
    WorkloadResult,
    default_shared_cycles,
    full_scale,
    run_workload,
    scaled_config,
)
from repro.harness.checkpoint import SweepCheckpoint, resolve_checkpoint
from repro.harness.parallel import (
    FAIL_CRASH,
    FAIL_EXCEPTION,
    FAIL_TIMEOUT,
    FAIL_TRANSPORT,
    JobOutcome,
    WorkloadJob,
    run_jobs,
    run_workloads,
    set_default_progress,
    set_sweep_defaults,
    sweep_defaults,
)
from repro.harness.persist import (
    atomic_write_json,
    load_json,
    load_result,
    save_result,
)
from repro.harness.replay_cache import AloneReplayCache, resolve_cache

__all__ = [
    "WorkloadResult",
    "run_workload",
    "scaled_config",
    "default_shared_cycles",
    "full_scale",
    "WorkloadJob",
    "JobOutcome",
    "run_jobs",
    "run_workloads",
    "set_default_progress",
    "set_sweep_defaults",
    "sweep_defaults",
    "FAIL_EXCEPTION",
    "FAIL_CRASH",
    "FAIL_TIMEOUT",
    "FAIL_TRANSPORT",
    "SweepCheckpoint",
    "resolve_checkpoint",
    "AloneReplayCache",
    "resolve_cache",
    "save_result",
    "load_result",
    "atomic_write_json",
    "load_json",
]
