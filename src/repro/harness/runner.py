"""Matched-instruction evaluation methodology (paper §5).

The paper's procedure, verbatim:

1. run the heterogeneous workload for a fixed cycle window (5M cycles in
   the paper; scaled down by default here — set ``REPRO_FULL=1`` to restore
   paper scale), restarting any application that finishes early;
2. record how many instructions each application completed;
3. replay each application *alone on the full GPU* for exactly that many
   instructions;
4. actual slowdown_i = T_shared / T_alone_i (equivalently
   IPC_alone / IPC_shared over the same instruction count).

Estimator outputs are read from the same shared run, so every estimate is
compared against the ground truth of the execution it observed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.config import GPUConfig
from repro.core import ASM, DASE, MISE, PriorityRotator, SlowdownEstimator
from repro.metrics import (
    estimation_error,
    gini,
    harmonic_speedup,
    jains_index,
    tail_slowdown,
    unfairness,
)
from repro.obs import bus as obs_bus
from repro.obs.telemetry import Telemetry
from repro.obs.tracer import EventTracer, Observation
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import KernelSpec
from repro.workloads import SUITE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (replay_cache
    # imports persist, which is a sibling; only the annotation needs it)
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.harness.replay_cache import AloneReplayCache
    from repro.opensys.schedule import ArrivalSchedule


def full_scale() -> bool:
    """True when the environment requests paper-scale cycle budgets."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def default_shared_cycles() -> int:
    """Shared-run window: 5M cycles at paper scale, 120K scaled down."""
    return 5_000_000 if full_scale() else 120_000


def scaled_config(**overrides) -> GPUConfig:
    """Baseline config with the estimation interval scaled to the window.

    The paper uses 50K-cycle intervals under a 5M-cycle window (100
    intervals).  At the scaled-down default window we keep the same
    *number* of intervals per run in the same proportion by shrinking the
    interval to 12K cycles, unless the caller overrides it.
    """
    if "interval_cycles" not in overrides and not full_scale():
        overrides["interval_cycles"] = 12_000
    return GPUConfig(**overrides)


@dataclass
class WorkloadResult:
    """Everything measured for one workload run.

    Open-system runs (``arrivals=`` given) add two per-app lists:
    ``resident_cycles`` — cycles inside the app's residency window (equal
    to ``shared_cycles`` for launch-time apps that never depart; 0 for an
    arrival that was never admitted) — and ``waiting_cycles`` — admission
    latency (arrival → first owned SM).  Both stay empty for closed runs.
    An app's ``actual_slowdowns`` entry is ``None`` when it executed no
    instructions (never admitted): there is nothing to replay alone, so no
    ground truth exists for it.
    """

    names: list[str]
    sm_partition: list[int]
    shared_cycles: int
    instructions: list[int]
    alone_cycles: list[int]
    actual_slowdowns: list[float | None]
    estimates: dict[str, list[float | None]]  # model name → per-app estimate
    bandwidth: dict[str, float] = field(default_factory=dict)
    final_sm_partition: list[int] = field(default_factory=list)
    resident_cycles: list[int] = field(default_factory=list)
    waiting_cycles: list[int] = field(default_factory=list)

    @property
    def present_slowdowns(self) -> list[float]:
        """Actual slowdowns of apps that have one (closed runs: all)."""
        return [s for s in self.actual_slowdowns if s is not None]

    @property
    def actual_unfairness(self) -> float:
        return unfairness(self.present_slowdowns)

    @property
    def actual_hspeedup(self) -> float:
        return harmonic_speedup(self.present_slowdowns)

    def fairness_metrics(self) -> dict[str, float]:
        """The multi-metric fairness readout over present slowdowns.

        ``gini_wait`` (only when the run was open-system) measures how
        unevenly admission latency was distributed across the roster.
        These metrics deliberately disagree sometimes — see docs/model.md.
        """
        present = self.present_slowdowns
        out = {
            "unfairness": unfairness(present),
            "jain": jains_index(present),
            "p95": tail_slowdown(present, 0.95),
            "p99": tail_slowdown(present, 0.99),
        }
        if self.waiting_cycles:
            out["gini_wait"] = gini([float(w) for w in self.waiting_cycles])
        return out

    def errors(self, model: str) -> list[float]:
        """Per-app |estimate − actual| / actual for one model.

        Apps whose estimate is ``None`` (the model produced nothing for
        them) — or whose *actual* is ``None`` (never-admitted arrival, no
        ground truth) — are skipped here; :meth:`skipped` reports how many,
        so aggregation over workloads can state the true sample count
        instead of quietly averaging over fewer apps than it claims.
        """
        out = []
        for est, act in zip(self.estimates[model], self.actual_slowdowns):
            if est is not None and act is not None:
                out.append(estimation_error(est, act))
        return out

    def skipped(self, model: str) -> int:
        """Number of apps with no (estimate, actual) pair for ``model``."""
        return sum(
            1
            for est, act in zip(self.estimates[model], self.actual_slowdowns)
            if est is None or act is None
        )

    @property
    def skipped_counts(self) -> dict[str, int]:
        """Per-model count of apps that produced no estimate."""
        return {m: self.skipped(m) for m in self.estimates}

    def mean_error(self, model: str) -> float:
        errs = self.errors(model)
        if not errs:
            raise ValueError(f"model {model!r} produced no estimates")
        return sum(errs) / len(errs)

    def to_dict(self) -> dict:
        """Plain JSON-safe dict at full float precision (cache round trip)."""
        return {
            "names": list(self.names),
            "sm_partition": list(self.sm_partition),
            "shared_cycles": self.shared_cycles,
            "instructions": list(self.instructions),
            "alone_cycles": list(self.alone_cycles),
            "actual_slowdowns": list(self.actual_slowdowns),
            "estimates": {m: list(v) for m, v in self.estimates.items()},
            "bandwidth": dict(self.bandwidth),
            "final_sm_partition": list(self.final_sm_partition),
            "resident_cycles": list(self.resident_cycles),
            "waiting_cycles": list(self.waiting_cycles),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadResult":
        return cls(
            names=list(d["names"]),
            sm_partition=list(d["sm_partition"]),
            shared_cycles=d["shared_cycles"],
            instructions=list(d["instructions"]),
            alone_cycles=list(d["alone_cycles"]),
            actual_slowdowns=list(d["actual_slowdowns"]),
            estimates={m: list(v) for m, v in d["estimates"].items()},
            bandwidth=dict(d.get("bandwidth", {})),
            final_sm_partition=list(d.get("final_sm_partition", [])),
            resident_cycles=list(d.get("resident_cycles", [])),
            waiting_cycles=list(d.get("waiting_cycles", [])),
        )


def _resolve(spec_or_name: KernelSpec | str) -> tuple[str, KernelSpec]:
    if isinstance(spec_or_name, str):
        return spec_or_name, SUITE[spec_or_name]
    return spec_or_name.name, spec_or_name


def run_workload(
    apps: Sequence[KernelSpec | str],
    config: GPUConfig | None = None,
    shared_cycles: int | None = None,
    sm_partition: Sequence[int] | None = None,
    models: Sequence[str] = ("DASE", "MISE", "ASM"),
    policy=None,
    warmup_intervals: int = 1,
    alone_cache: "AloneReplayCache | None" = None,
    profile_path: str | None = None,
    trace: Observation | EventTracer | None = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    arrivals: "ArrivalSchedule | None" = None,
    backend: str | None = None,
) -> WorkloadResult:
    """Run one workload through the full methodology.

    ``models`` selects which estimators to attach ("DASE", "MISE", "ASM").
    ``policy`` optionally attaches an SM-allocation policy (e.g.
    :class:`~repro.policies.DASEFairPolicy`); it may reassign SMs during
    the shared run.  ``alone_cache`` memoises the alone replays (step 3):
    the replay is deterministic in (spec, stream, config, instruction
    count), so a cached cycle count is bit-identical to re-simulating.

    ``profile_path`` profiles the whole methodology (shared run + alone
    replays) under :mod:`cProfile` and dumps binary pstats data there —
    load it with ``python -m pstats`` or snakeviz; see docs/performance.md.

    ``trace`` records the *shared run* into an :class:`repro.obs.Observation`
    (or a bare :class:`~repro.obs.EventTracer`, which gets wrapped): the GPU
    emits structured events, a :class:`~repro.obs.Telemetry` is attached on
    the bundle's registry/tracer, and run-level gauges are published at the
    end.  The alone replays are never traced, so the recording describes
    exactly one execution.  Tracing never changes simulation results (see
    docs/observability.md).

    ``faults`` (a :class:`repro.faults.FaultPlan` or a pre-built injector)
    distorts the counter stream the estimators and policy *observe* — the
    simulator's own measurement is untouched.  Without a policy the shared
    run (and hence actual slowdowns, alone replays, and cache keys) is
    bit-identical to an unfaulted run and only the estimates change; with
    a policy, fault-misled migrations feed back into the run, which is the
    unfairness-degradation effect ``fig-degradation`` charts.  A null plan
    resolves to no injector at all (docs/faults.md).

    ``arrivals`` (an :class:`repro.opensys.ArrivalSchedule`) turns the run
    into an open system: the schedule's applications join the roster after
    ``apps`` and arrive/depart on interval boundaries, driven by an
    :class:`repro.opensys.OpenSystemDriver`.  Actual slowdowns are then
    normalised over each app's *residency window* rather than the whole
    run, and the result carries ``resident_cycles``/``waiting_cycles``.  A
    null schedule is the closed-system identity (docs/workloads.md).

    ``backend`` overrides :attr:`GPUConfig.backend` for this run (both the
    shared run and the alone replays).  Backends are result-equivalent
    (docs/performance.md, "phase 2 — backends"), so this changes wall-clock
    time only — results and cache keys are identical either way.
    """
    obs: Observation | None
    if trace is None:
        obs = None
    elif isinstance(trace, Observation):
        obs = trace
    elif isinstance(trace, EventTracer):
        obs = Observation(tracer=trace)
    else:
        raise TypeError(
            f"trace must be an Observation or EventTracer, not {trace!r}"
        )
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run_workload(
                apps, config, shared_cycles, sm_partition, models,
                policy, warmup_intervals, alone_cache, obs, faults, arrivals,
                backend,
            )
        finally:
            profiler.disable()
            profiler.dump_stats(profile_path)
    return _run_workload(
        apps, config, shared_cycles, sm_partition, models,
        policy, warmup_intervals, alone_cache, obs, faults, arrivals,
        backend,
    )


def _run_workload(
    apps: Sequence[KernelSpec | str],
    config: GPUConfig | None,
    shared_cycles: int | None,
    sm_partition: Sequence[int] | None,
    models: Sequence[str],
    policy,
    warmup_intervals: int,
    alone_cache: "AloneReplayCache | None",
    obs: Observation | None = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    arrivals: "ArrivalSchedule | None" = None,
    backend: str | None = None,
) -> WorkloadResult:
    config = config or scaled_config()
    if backend is not None and backend != config.backend:
        config = replace(config, backend=backend)
    shared_cycles = shared_cycles or default_shared_cycles()
    resolved = [_resolve(a) for a in apps]
    n_base = len(resolved)
    open_sched = None
    if arrivals is not None and not arrivals.is_null:
        open_sched = arrivals
        resolved += [_resolve(a.app) for a in arrivals.arrivals]
    names = [n for n, _ in resolved]
    specs = [s for _, s in resolved]
    kernels = [LaunchedKernel(s, restart=True, stream_id=i) for i, s in enumerate(specs)]

    headroom = 0
    if open_sched is not None and sm_partition is None:
        # Even split over the launch-time apps; arrivals start with no SMs.
        # When arrivals are expected, a small idle reserve lets them be
        # admitted at the next boundary instead of waiting out a full
        # block-drain (docs/workloads.md#open-system-schedules).
        if open_sched.arrivals:
            headroom = min(max(1, config.n_sms // 8), config.n_sms - n_base)
        avail = config.n_sms - headroom
        base_sms = avail // n_base
        extra = avail % n_base
        sm_partition = [
            base_sms + (1 if i < extra else 0) for i in range(n_base)
        ] + [0] * len(open_sched.arrivals)

    gpu = GPU(
        config, kernels, sm_partition, obs=obs,
        allow_inactive=open_sched is not None,
    )
    obs = gpu.obs  # picks up a process-wide recording when trace wasn't given
    initial_partition = gpu.sm_counts()

    injector = None
    if faults is not None:
        from repro.faults.inject import resolve_injector

        injector = resolve_injector(
            faults, len(specs),
            audit=None if obs is None else obs.audit,
        )

    estimators: dict[str, SlowdownEstimator] = {}
    rotator: PriorityRotator | None = None
    for model in models:
        if model == "DASE":
            estimators[model] = DASE(config)
        elif model in ("MISE", "ASM"):
            if rotator is None:
                rotator = PriorityRotator(config)
            cls = MISE if model == "MISE" else ASM
            estimators[model] = cls(config, rotator)
        else:
            raise ValueError(f"unknown model {model!r}")
    for est in estimators.values():
        if injector is not None:
            est.inject_faults(injector)
        est.attach(gpu)
    telemetry: Telemetry | None = None
    if obs is not None:
        # Fold the interval view into the same recording: one Telemetry on
        # the bundle's registry + tracer, attached after the estimators so
        # its samples see this interval's estimates.
        if obs.telemetry is None:
            obs.telemetry = Telemetry(
                estimators, registry=obs.registry, tracer=obs.tracer
            )
        telemetry = obs.telemetry
        if not telemetry.estimators:
            telemetry.estimators = estimators
        telemetry.attach(gpu)
    if policy is not None:
        # A DASE-Fair policy that would build its own private DASE adopts
        # the harness's instead (DASE is a pure observer, so sharing is
        # bit-identical) — one estimation per interval, and the audit log
        # carries a single DASE stream instead of two.
        from repro.policies.sm_alloc import DASEFairPolicy

        if (
            isinstance(policy, DASEFairPolicy)
            and policy._own_estimator
            and isinstance(estimators.get("DASE"), DASE)
        ):
            policy.use_estimator(estimators["DASE"])
        if injector is not None and hasattr(policy, "inject_faults"):
            policy.inject_faults(injector)
        policy.attach(gpu)
    driver = None
    if open_sched is not None:
        # Attached last: estimators, telemetry, and the policy all see the
        # roster as it was for the interval that just closed; membership
        # changes land before the *next* interval starts.
        from repro.opensys.driver import OpenSystemDriver

        driver = OpenSystemDriver(
            open_sched, n_base, rebalance=policy is None, headroom=headroom
        )
        driver.attach(gpu)

    # One `is None` check per *run* — the simulator's cycle loop is never
    # touched, so the disabled-bus path stays inside the <3% obs budget.
    bus_ch = obs_bus.current()
    if bus_ch is not None:
        t0 = time.perf_counter()
        gpu.run(shared_cycles)
        bus_ch.span(
            "simulate", time.perf_counter() - t0,
            cycles=shared_cycles,
            backend=config.backend,
            engine_mode="sparse" if gpu.engine._sparse else "bucket",
        )
    else:
        gpu.run(shared_cycles)
    if obs is not None:
        obs.finalize_run(gpu)
        telemetry.detach()
    instructions = [p.instructions for p in gpu.progress]
    bandwidth = {n: gpu.bandwidth_utilization(i) for i, n in enumerate(names)}
    bandwidth["total"] = gpu.bandwidth_utilization()

    resident_cycles: list[int] = []
    waiting_cycles: list[int] = []
    if driver is not None:
        run_end = gpu.engine.now
        for start, end in driver.windows(run_end):
            resident_cycles.append(0 if start is None else end - start)
        waiting_cycles = driver.waiting(run_end)

    # Alone replays: full GPU, same stream identity, same instruction count.
    alone_cycles: list[int] = []
    for i, spec in enumerate(specs):
        if driver is not None and instructions[i] == 0:
            # Never admitted (or drained before issuing anything): there is
            # nothing to replay and no ground-truth slowdown (and no span —
            # no work happened).
            alone_cycles.append(0)
            continue
        if bus_ch is not None:
            replay_t0 = time.perf_counter()
        # One replay span per app covers the cache probe *and* (on a miss)
        # the alone simulation, so cached vs uncached durations expose the
        # replay cache's economics in SweepStats.
        cached = (
            alone_cache.get(spec, i, config, instructions[i])
            if alone_cache is not None
            else None
        )
        if cached is not None:
            alone_cycles.append(cached)
        else:
            # obs=False: the alone replay never records, even under a
            # process-wide recording — the trace describes the shared run
            # only.
            alone = GPU(
                config, [LaunchedKernel(spec, restart=True, stream_id=i)],
                obs=False,
            )
            alone.run_until_instructions(
                0, instructions[i],
                max_cycles=max(4 * shared_cycles, 1_000_000),
            )
            alone_cycles.append(alone.engine.now)
            if alone_cache is not None:
                alone_cache.put(
                    spec, i, config, instructions[i], alone.engine.now
                )
        if bus_ch is not None:
            bus_ch.span(
                "replay", time.perf_counter() - replay_t0,
                app=spec.name, cached=cached is not None,
                instructions=instructions[i],
            )

    actual: list[float | None]
    if driver is not None:
        # Partial-lifetime accounting: an arrival that was resident for a
        # third of the window must not be compared against the whole window
        # — its slowdown is T_resident / T_alone over the same instructions.
        actual = [
            None if alone_cycles[i] == 0 else resident_cycles[i] / alone_cycles[i]
            for i in range(len(specs))
        ]
    else:
        actual = [shared_cycles / c for c in alone_cycles]
    estimates = {
        name: est.mean_estimates(warmup_intervals) for name, est in estimators.items()
    }
    return WorkloadResult(
        names=list(names),
        sm_partition=list(initial_partition),
        shared_cycles=shared_cycles,
        instructions=instructions,
        alone_cycles=alone_cycles,
        actual_slowdowns=actual,
        estimates=estimates,
        bandwidth=bandwidth,
        final_sm_partition=gpu.sm_counts(),
        resident_cycles=resident_cycles,
        waiting_cycles=waiting_cycles,
    )
