"""Partial-sweep checkpointing: an interrupted sweep resumes, not restarts.

A figure sweep is a list of :class:`~repro.harness.parallel.WorkloadJob`
items; each finished job's :class:`~repro.harness.runner.WorkloadResult`
round-trips JSON exactly (``to_dict``/``from_dict``).  A
:class:`SweepCheckpoint` appends one self-checksummed JSONL line per
completed job to a file *named by the sweep's identity* — the digest of
every job's fingerprint, in order — so:

* re-running the same sweep finds its own checkpoint and skips completed
  jobs (``repro fig5 --resume-dir``);
* a sweep with different jobs, parameters, or ordering gets a different
  file and never resurrects foreign results;
* a line torn by the interruption itself (the reason checkpoints exist)
  fails its checksum and is skipped — the loader is tolerant by design,
  losing at most the in-flight job.

Appending is atomic enough at JSONL granularity: each ``record`` opens,
writes one line, flushes, and closes, so concurrent sweeps over the same
directory interleave whole lines at worst (and the per-line checksum
catches the pathological torn case).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import TYPE_CHECKING, Sequence

from repro.harness.replay_cache import fingerprint
from repro.harness.runner import WorkloadResult

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.harness.parallel import JobOutcome


def _line_checksum(body: dict) -> str:
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class SweepCheckpoint:
    """Append-only completed-job store for one specific sweep.

    ``jobs`` is the full ordered job list; the checkpoint file is named by
    its collective fingerprint.  Only successful outcomes whose result is
    a :class:`WorkloadResult` are recorded (chaos/ad-hoc jobs pass
    through uncheckpointed — their results have no canonical codec).
    """

    def __init__(
        self, directory: str | os.PathLike, jobs: Sequence[object]
    ) -> None:
        self.directory = pathlib.Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"checkpoint directory {self.directory} exists but is not "
                "a directory"
            )
        self._fingerprints = [fingerprint(job) for job in jobs]
        self.digest = fingerprint(self._fingerprints)
        self.path = self.directory / f"sweep-{self.digest[:20]}.jsonl"
        #: Lines dropped by :meth:`load` (corrupt/torn/foreign).
        self.skipped_lines = 0

    # -------------------------------------------------------------- loading

    def load(self) -> dict[int, WorkloadResult]:
        """Completed results by job index; empty when starting fresh."""
        out: dict[int, WorkloadResult] = {}
        self.skipped_lines = 0
        try:
            with self.path.open() as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return out
        except OSError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                stored = obj.pop("sha256")
                if stored != _line_checksum(obj):
                    raise ValueError("checksum mismatch")
                index = obj["index"]
                if not 0 <= index < len(self._fingerprints):
                    raise ValueError("index out of range")
                if obj["fingerprint"] != self._fingerprints[index]:
                    raise ValueError("job fingerprint mismatch")
                result = WorkloadResult.from_dict(obj["result"])
            except (KeyError, TypeError, ValueError):
                self.skipped_lines += 1
                continue
            out[index] = result
        return out

    # ------------------------------------------------------------ recording

    def record(self, outcome: "JobOutcome") -> bool:
        """Append one completed job; returns whether it was checkpointable."""
        if not outcome.ok or not isinstance(outcome.result, WorkloadResult):
            return False
        body = {
            "index": outcome.index,
            "fingerprint": self._fingerprints[outcome.index],
            "result": outcome.result.to_dict(),
        }
        body["sha256"] = _line_checksum(
            {k: v for k, v in body.items() if k != "sha256"}
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(body, sort_keys=True) + "\n")
            fh.flush()
        return True


def resolve_checkpoint(
    checkpoint: "SweepCheckpoint | str | os.PathLike | None",
    jobs: Sequence[object],
) -> SweepCheckpoint | None:
    """Coerce a checkpoint argument: an instance, a directory, or None."""
    if checkpoint is None:
        return None
    if isinstance(checkpoint, SweepCheckpoint):
        return checkpoint
    return SweepCheckpoint(checkpoint, jobs)
