"""Run telemetry: per-interval time series of everything observable.

Attach a :class:`Telemetry` to a GPU and it records, per interval and per
application, the counters, derived rates, estimator outputs, and the SM
partition — the data behind every time-series plot one would make of a
run.  Export as dicts or CSV text.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.core.base import SlowdownEstimator
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


@dataclass
class Sample:
    """One application's telemetry for one interval."""

    cycle: int
    app: int
    ipc: float
    alpha: float
    requests_per_kcycle: float
    bw_share: float
    l2_hit_rate: float
    erb_miss: int
    ellc_miss: float
    sm_count: int
    estimates: dict[str, float | None] = field(default_factory=dict)


class Telemetry:
    """Interval-by-interval recorder for one GPU run."""

    def __init__(self, estimators: dict[str, SlowdownEstimator] | None = None):
        self.estimators = estimators or {}
        self.samples: list[Sample] = []
        self.gpu: GPU | None = None

    def attach(self, gpu: GPU) -> None:
        if self.gpu is not None:
            raise RuntimeError("telemetry already attached")
        self.gpu = gpu
        # Attach after estimators so their latest() reflects this interval.
        gpu.add_interval_listener(self._on_interval)

    def _on_interval(self, records: list[IntervalRecord]) -> None:
        cfg = self.gpu.config
        for rec in records:
            cycles = max(1, rec.cycles)
            accesses = rec.mem.l2_hits + rec.mem.l2_misses
            ests = {}
            for name, est in self.estimators.items():
                latest = est.latest()
                ests[name] = latest[rec.app] if latest else None
            self.samples.append(
                Sample(
                    cycle=rec.end,
                    app=rec.app,
                    ipc=rec.sm.instructions / cycles,
                    alpha=rec.sm.alpha,
                    requests_per_kcycle=rec.mem.requests_served / cycles * 1000,
                    bw_share=rec.mem.data_bus_time
                    / (cycles * cfg.n_partitions),
                    l2_hit_rate=rec.mem.l2_hits / accesses if accesses else 0.0,
                    erb_miss=rec.mem.erb_miss,
                    ellc_miss=rec.ellc_miss,
                    sm_count=rec.sm_count,
                    estimates=ests,
                )
            )

    # ------------------------------------------------------------- exports

    def series(self, app: int, fieldname: str) -> list[float]:
        """Time series of one field for one application."""
        out = []
        for s in self.samples:
            if s.app != app:
                continue
            if fieldname in s.estimates:
                out.append(s.estimates[fieldname])
            else:
                out.append(getattr(s, fieldname))
        return out

    def to_csv(self) -> str:
        """All samples as CSV text (one row per app per interval)."""
        buf = io.StringIO()
        est_names = sorted(self.estimators)
        header = [
            "cycle", "app", "ipc", "alpha", "requests_per_kcycle",
            "bw_share", "l2_hit_rate", "erb_miss", "ellc_miss", "sm_count",
        ] + [f"est_{n}" for n in est_names]
        buf.write(",".join(header) + "\n")
        for s in self.samples:
            row = [
                str(s.cycle), str(s.app), f"{s.ipc:.4f}", f"{s.alpha:.4f}",
                f"{s.requests_per_kcycle:.2f}", f"{s.bw_share:.4f}",
                f"{s.l2_hit_rate:.4f}", str(s.erb_miss),
                f"{s.ellc_miss:.1f}", str(s.sm_count),
            ]
            for n in est_names:
                v = s.estimates.get(n)
                row.append("" if v is None else f"{v:.4f}")
            buf.write(",".join(row) + "\n")
        return buf.getvalue()
