"""Deprecated location of :class:`Telemetry` — moved to ``repro.obs``.

Telemetry is the interval-granularity view of the observability layer and
now lives in :mod:`repro.obs.telemetry` next to the metrics registry and
event tracer it publishes into.  This shim keeps old imports working::

    from repro.harness.telemetry import Telemetry   # still works, warns

New code should import from :mod:`repro.obs` (or ``repro.harness``, which
re-exports it without a warning).
"""

from __future__ import annotations

import warnings

from repro.obs.telemetry import Sample, Telemetry

__all__ = ["Sample", "Telemetry"]

warnings.warn(
    "repro.harness.telemetry has moved to repro.obs.telemetry; "
    "import Telemetry/Sample from repro.obs (or repro.harness) instead",
    DeprecationWarning,
    stacklevel=2,
)
