"""Plain-text rendering of experiment results, row-for-row with the paper."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.harness.experiments import (
    AccuracyResult,
    ChurnResult,
    DegradationResult,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig9Result,
    SensitivityResult,
)


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with right-padded columns."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def render_fig2(res: Fig2Result) -> str:
    rows = []
    for key in res.unfairness:
        slow = res.slowdowns[key]
        rows.append([key, f"{res.unfairness[key]:.2f}"]
                    + [f"{s:.2f}" for s in slow])
    part1 = table(["workload", "unfairness", "slowdown(1st)", "slowdown(2nd)"], rows)
    rows2 = []
    for key, bd in res.breakdown.items():
        rows2.append([key] + [pct(v) for v in bd.values()])
    first = next(iter(res.breakdown.values()))
    part2 = table(["workload"] + list(first.keys()), rows2)
    tail = f"SD alone attains {pct(res.sd_alone_bw)} of DRAM bandwidth"
    return "\n\n".join(["Fig 2a — unfairness:", part1,
                        "Fig 2b — DRAM bandwidth decomposition:", part2, tail])


def render_fig3(res: Fig3Result) -> str:
    rows = [[f"{r:.1f}", f"{ipc:.3f}"] for r, ipc in res.points]
    body = table(["requests/kcycle", "memory IPC"], rows)
    return (
        "Fig 3 — performance vs request service rate:\n"
        f"{body}\nPearson correlation: {res.correlation:.3f}"
    )


def render_fig4(res: Fig4Result) -> str:
    rows = []
    for partner, (sb, other) in res.shared_rates.items():
        rows.append([
            f"SB+{partner}", f"{sb:.0f}", f"{other:.0f}", f"{sb + other:.0f}",
            f"{res.alone_rate:.0f}",
        ])
    body = table(
        ["workload", "SB served/kcyc", "partner", "sum", "SB alone"], rows
    )
    return "Fig 4 — MBB served-request conservation:\n" + body


def render_accuracy(res: AccuracyResult, title: str) -> str:
    models = list(res.errors)
    rows = [
        [key] + [pct(res.per_workload[key][m]) for m in models]
        for key in res.per_workload
    ]
    rows.append(
        ["MEAN"]
        + [pct(res.mean_error(m)) if res.errors[m] else "-" for m in models]
    )
    out = f"{title}:\n" + table(["workload"] + models, rows)
    samples = "  ".join(f"{m}: n={res.sample_count(m)}" for m in models)
    out += f"\nsamples pooled per model — {samples}"
    skipped = {m: n for m, n in res.skipped.items() if n}
    if skipped:
        out += "\nskipped (no estimate): " + "  ".join(
            f"{m}: {n}" for m, n in skipped.items()
        )
    if res.failures:
        out += "\nFAILED workloads: " + ", ".join(sorted(res.failures))
    return out


def render_distribution(dists: dict[str, dict[str, float]]) -> str:
    models = list(dists)
    bins = list(next(iter(dists.values())))
    rows = [[b] + [pct(dists[m][b]) for m in models] for b in bins]
    return "Fig 7 — error distribution:\n" + table(["error range"] + models, rows)


def render_sensitivity(res: SensitivityResult, title: str) -> str:
    rows = [[lab, pct(res.dase_errors[lab])] for lab in res.labels]
    return f"{title}:\n" + table(["configuration", "DASE error"], rows)


def render_fig9(res: Fig9Result) -> str:
    rows = []
    for key in res.workloads:
        rows.append([
            key,
            f"{res.unfairness_even[key]:.2f}",
            f"{res.unfairness_fair[key]:.2f}",
            f"{res.hspeedup_even[key]:.3f}",
            f"{res.hspeedup_fair[key]:.3f}",
        ])
    body = table(
        ["workload", "unf(even)", "unf(DASE-Fair)", "hsp(even)", "hsp(DASE-Fair)"],
        rows,
    )
    return (
        "Fig 9 — DASE-Fair vs even SM split:\n" + body +
        f"\nmean unfairness improvement: {pct(res.mean_unfairness_improvement)}"
        f"\nmean H-speedup improvement:  {pct(res.mean_hspeedup_improvement)}"
    )


def render_degradation(res: DegradationResult) -> str:
    rows = []
    for sigma in res.sigmas:
        err = res.dase_error.get(sigma)
        unf = res.unfairness.get(sigma)
        rows.append([
            f"{sigma:g}",
            "-" if err is None else pct(err),
            "-" if unf is None else f"{unf:.2f}",
        ])
    body = table(["noise σ", "DASE error", "unfairness (DASE-Fair)"], rows)
    verdict = (
        "monotone non-decreasing" if res.error_is_monotone()
        else "NOT monotone"
    )
    out = (
        f"Degradation under counter faults — {'+'.join(res.pair)} "
        f"(seed {res.seed}):\n" + body +
        f"\nDASE error vs σ: {verdict}"
    )
    if res.failures:
        out += "\nfailed runs:\n" + "\n".join(
            f"  {k}: {v}" for k, v in sorted(res.failures.items())
        )
    return out


def render_churn(res: ChurnResult) -> str:
    metric_names = ("unfairness", "jain", "p95", "p99", "gini_wait")
    rows = []
    for rate in res.rates:
        for label in ("even", "fair"):
            m = res.metrics.get(label, {}).get(rate, {})
            err = res.dase_error.get(label, {}).get(rate)
            rows.append(
                [f"{rate:g}", label, res.n_arrivals.get(rate, "-"),
                 "-" if err is None else pct(err)]
                + [
                    "-" if name not in m else f"{m[name]:.3f}"
                    for name in metric_names
                ]
            )
    body = table(
        ["rate/kcyc", "policy", "arrivals", "DASE err"] + list(metric_names),
        rows,
    )
    out = (
        f"Open-system churn — base {'+'.join(res.base)}, pool "
        f"{'+'.join(res.pool)} (seed {res.seed}):\n" + body
    )
    verdicts = res.verdicts()
    disagree = {d["rate"] for d in res.disagreements()}
    if verdicts:
        vrows = [
            [f"{rate:g}" + (" ⚠" if rate in disagree else "")]
            + [verdicts[rate].get(name, "-") for name in metric_names]
            for rate in res.rates if rate in verdicts
        ]
        out += "\n\nfairer policy per metric (⚠ = metrics disagree):\n"
        out += table(["rate/kcyc"] + list(metric_names), vrows)
    if res.failures:
        out += "\nfailed runs:\n" + "\n".join(
            f"  {k}: {v}" for k, v in sorted(res.failures.items())
        )
    return out
