"""Evaluation metrics (paper Eqs. 1, 2, 26, 27).

All metrics operate on plain sequences of floats so they are usable both on
measured (actual) slowdowns and on model estimates.
"""

from __future__ import annotations

from typing import Sequence


def slowdown(ipc_alone: float, ipc_shared: float) -> float:
    """Eq. 1: IPC_alone / IPC_shared (≥ 1 under contention)."""
    if ipc_shared <= 0:
        raise ValueError("shared IPC must be positive")
    return ipc_alone / ipc_shared


def unfairness(slowdowns: Sequence[float]) -> float:
    """Eq. 2: max slowdown / min slowdown (1.0 = perfectly fair)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    lo = min(slowdowns)
    if lo <= 0:
        raise ValueError("slowdowns must be positive")
    return max(slowdowns) / lo


def harmonic_speedup(slowdowns: Sequence[float]) -> float:
    """Eq. 27: N / Σ slowdown_i — the harmonic mean of per-app speedups.

    The paper writes it as N / Σ (IPC_alone / IPC_shared); since
    slowdown_i = IPC_alone/IPC_shared this is exactly N / Σ slowdown_i.
    """
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return len(slowdowns) / sum(slowdowns)


def estimation_error(estimated: float, actual: float) -> float:
    """Eq. 26: |estimated − actual| / actual, as a fraction.

    The paper reports the *average* of this over applications and workloads;
    we return the per-application value and let callers average.
    """
    if actual <= 0:
        raise ValueError("actual slowdown must be positive")
    return abs(estimated - actual) / actual


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an explicit empty-input error."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def error_distribution(
    errors: Sequence[float], edges: Sequence[float] = (0.1, 0.2, 0.3, 0.4)
) -> dict[str, float]:
    """Fig. 7 histogram: fraction of errors in each range.

    Returns bins ``<10%``, ``10-20%``, …, ``>40%`` (for the default edges),
    each as a fraction of all errors.
    """
    if not errors:
        raise ValueError("need at least one error")
    edges = sorted(edges)
    labels = [f"<{edges[0]:.0%}"]
    labels += [f"{lo:.0%}-{hi:.0%}" for lo, hi in zip(edges, edges[1:])]
    labels += [f">{edges[-1]:.0%}"]
    counts = [0] * (len(edges) + 1)
    for e in errors:
        idx = sum(1 for edge in edges if e >= edge)
        counts[idx] += 1
    total = len(errors)
    return {label: c / total for label, c in zip(labels, counts)}
