"""Evaluation metrics (paper Eqs. 1, 2, 26, 27).

All metrics operate on plain sequences of floats so they are usable both on
measured (actual) slowdowns and on model estimates.
"""

from __future__ import annotations

from typing import Sequence


def slowdown(ipc_alone: float, ipc_shared: float) -> float:
    """Eq. 1: IPC_alone / IPC_shared (≥ 1 under contention)."""
    if ipc_shared <= 0:
        raise ValueError("shared IPC must be positive")
    return ipc_alone / ipc_shared


def unfairness(slowdowns: Sequence[float]) -> float:
    """Eq. 2: max slowdown / min slowdown (1.0 = perfectly fair)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    lo = min(slowdowns)
    if lo <= 0:
        raise ValueError("slowdowns must be positive")
    return max(slowdowns) / lo


def harmonic_speedup(slowdowns: Sequence[float]) -> float:
    """Eq. 27: N / Σ slowdown_i — the harmonic mean of per-app speedups.

    The paper writes it as N / Σ (IPC_alone / IPC_shared); since
    slowdown_i = IPC_alone/IPC_shared this is exactly N / Σ slowdown_i.
    """
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return len(slowdowns) / sum(slowdowns)


def estimation_error(estimated: float, actual: float) -> float:
    """Eq. 26: |estimated − actual| / actual, as a fraction.

    The paper reports the *average* of this over applications and workloads;
    we return the per-application value and let callers average.
    """
    if actual <= 0:
        raise ValueError("actual slowdown must be positive")
    return abs(estimated - actual) / actual


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean with an explicit empty-input error."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def jains_index(slowdowns: Sequence[float]) -> float:
    """Jain's fairness index: (Σ s)² / (N · Σ s²), in (0, 1].

    1.0 iff every slowdown is equal; approaches 1/N as one application's
    slowdown dominates.  Unlike max/min unfairness (Eq. 2), Jain's index
    sees the whole distribution, so the two can rank schedules differently
    (see docs/model.md) — which is why ``fig-churn`` reports both.
    """
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    total = sum(slowdowns)
    return total * total / (len(slowdowns) * sum(s * s for s in slowdowns))


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample, in [0, 1).

    0.0 = perfectly equal; → 1 as one member takes everything.  Used on
    per-application *waiting times* in the open-system readout (how
    unevenly admission latency is distributed), where a mean alone hides
    one starved arrival behind many instant admissions.  All-zero input
    (nobody waited) is defined as perfectly equal: 0.0.
    """
    if not values:
        raise ValueError("need at least one value")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    n = len(values)
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    weighted = sum((i + 1) * v for i, v in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def tail_slowdown(slowdowns: Sequence[float], q: float = 0.99) -> float:
    """q-quantile of the slowdown distribution (linear interpolation).

    p95/p99 tail slowdowns complement unfairness ratios: they are absolute
    (a schedule can be "fair" with everyone equally slow), and they ignore
    the best-treated application entirely.
    """
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(slowdowns)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def error_distribution(
    errors: Sequence[float], edges: Sequence[float] = (0.1, 0.2, 0.3, 0.4)
) -> dict[str, float]:
    """Fig. 7 histogram: fraction of errors in each range.

    Returns bins ``<10%``, ``10-20%``, …, ``>40%`` (for the default edges),
    each as a fraction of all errors.
    """
    if not errors:
        raise ValueError("need at least one error")
    edges = sorted(edges)
    labels = [f"<{edges[0]:.0%}"]
    labels += [f"{lo:.0%}-{hi:.0%}" for lo, hi in zip(edges, edges[1:])]
    labels += [f">{edges[-1]:.0%}"]
    counts = [0] * (len(edges) + 1)
    for e in errors:
        idx = sum(1 for edge in edges if e >= edge)
        counts[idx] += 1
    total = len(errors)
    return {label: c / total for label, c in zip(labels, counts)}
