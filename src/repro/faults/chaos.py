"""Chaos jobs: misbehaving work units for exercising the sweep harness.

The hardened :func:`repro.harness.parallel.run_jobs` accepts any job that
exposes ``.key`` and ``.execute()`` alongside the usual
:class:`~repro.harness.parallel.WorkloadJob`.  A :class:`ChaosJob` is such
a job whose *misbehaviour* is the payload: it can raise, kill its own
process, hang past the timeout, return a result that explodes during
unpickling, or fail only on its first k attempts (flaky).  The chaos test
suite (``tests/test_chaos_harness.py``) mixes these with healthy jobs and
asserts that the sweep completes with per-job accounting intact.

ChaosJob is a frozen top-level dataclass so it pickles cleanly into
worker processes, and its cross-attempt state (how many times have I been
tried?) lives in the filesystem (``state_dir``) rather than in the
parent's memory — a retried job runs in a *different* process, possibly
in a rebuilt pool, and must discover its own history.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

#: Recognised misbehaviours.
MODE_OK = "ok"
MODE_RAISE = "raise"
MODE_EXIT = "exit"          # os._exit: no exception, no cleanup, dead worker
MODE_HANG = "hang"          # sleep far past any per-job timeout
MODE_BAD_RESULT = "bad-result"  # result's pickle explodes at the parent
MODE_FLAKY = "flaky"        # fail the first `flaky_failures` attempts

_MODES = (MODE_OK, MODE_RAISE, MODE_EXIT, MODE_HANG, MODE_BAD_RESULT,
          MODE_FLAKY)


class _Unpicklable:
    """A value whose pickle stream raises at *load* time.

    ``__reduce__`` hands pickle a callable that raises, so the bytes
    serialize fine in the worker and detonate in the parent's result
    transport — the truncated/corrupt-result case a real sweep can hit.
    """

    def __reduce__(self):  # pragma: no cover - pickled inside pool workers
        return (_explode, ())


def _explode() -> None:
    raise RuntimeError("result unpicklable (chaos bad-result)")


@dataclass(frozen=True)
class ChaosJob:
    """A work unit that misbehaves on demand.

    ``state_dir`` (required for ``flaky``) holds one attempt-counter file
    per job so retries — which run in fresh processes — can see how many
    times they've been tried.  ``payload`` is echoed back on success so
    tests can verify result integrity and ordering.
    """

    name: str
    mode: str = MODE_OK
    payload: int = 0
    state_dir: str | None = None
    #: ``flaky`` mode: number of leading attempts that crash hard.
    flaky_failures: int = 1
    #: ``hang`` mode: how long to sleep (seconds).
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}")
        if self.mode == MODE_FLAKY and self.state_dir is None:
            raise ValueError("flaky mode requires state_dir")

    @property
    def key(self) -> str:
        return f"chaos:{self.name}:{self.mode}:{self.payload}"

    def _bump_attempts(self) -> int:  # pragma: no cover - pool workers only
        """Record one more attempt on disk; returns the attempt number
        (1-based).  Atomic enough for tests: attempts of one job never
        overlap because the harness retries sequentially."""
        assert self.state_dir is not None
        path = Path(self.state_dir) / f"{self.name}.attempts"
        n = 1
        if path.exists():
            n = int(path.read_text() or "0") + 1
        path.write_text(str(n))
        return n

    def execute(self):
        # The exit/hang/bad-result/flaky branches run only inside pool
        # workers that die without unwinding (os._exit, SIGKILL) or are
        # torn down with the broken pool, so no coverage reporter can ever
        # flush them; the chaos suite asserts their behaviour from the
        # parent side instead.
        if self.mode == MODE_OK:
            return {"name": self.name, "payload": self.payload,
                    "pid": os.getpid()}
        if self.mode == MODE_RAISE:
            raise ValueError(f"chaos raise from {self.name}")
        if self.mode == MODE_EXIT:  # pragma: no cover
            # fd 2 directly: the harness tees OS-level stderr per worker,
            # and a hard exit gives Python no chance to flush wrappers.
            os.write(2, f"chaos: {self.name} exiting hard\n".encode())
            os._exit(17)
        if self.mode == MODE_HANG:  # pragma: no cover
            time.sleep(self.hang_s)
            return {"name": self.name, "payload": self.payload,
                    "pid": os.getpid()}
        if self.mode == MODE_BAD_RESULT:  # pragma: no cover
            return _Unpicklable()
        if self.mode == MODE_FLAKY:  # pragma: no cover
            attempt = self._bump_attempts()
            if attempt <= self.flaky_failures:
                os.write(
                    2,
                    f"chaos: {self.name} flaking on attempt "
                    f"{attempt}\n".encode(),
                )
                os._exit(23)
            return {"name": self.name, "payload": self.payload,
                    "pid": os.getpid(), "attempt": attempt}
        raise AssertionError(  # pragma: no cover - modes validated in init
            f"unhandled mode {self.mode!r}"
        )
