"""repro.faults — deterministic fault injection for estimators and harness.

Two planes (docs/faults.md):

* **Model plane** — :class:`FaultPlan` / :class:`AppFaults` describe how
  hardware-counter delivery is distorted (noise, quantization, drops,
  delay, ATD sampling-rate cuts); :class:`FaultInjector` applies a plan
  deterministically at every ``estimate_interval`` boundary, and
  ``run_workload(faults=plan)`` wires it into DASE/MISE/ASM and the
  DASE-Fair policy.  ``repro fig-degradation`` charts estimate error and
  unfairness against fault intensity.

* **Harness plane** — :class:`ChaosJob` work units that raise, die, hang,
  or return corrupt results, used by the chaos suite to prove the
  hardened sweep harness (timeouts, retries, crash isolation, cache
  quarantine, checkpoint/resume) survives all of them.

The zero-intensity contract: a null plan (or no plan) is bit-identical to
the unfaulted simulator — golden-enforced.
"""

from __future__ import annotations

from repro.faults.chaos import (
    MODE_BAD_RESULT,
    MODE_EXIT,
    MODE_FLAKY,
    MODE_HANG,
    MODE_OK,
    MODE_RAISE,
    ChaosJob,
)
from repro.faults.inject import (
    DeliveredInterval,
    FaultInjector,
    resolve_injector,
)
from repro.faults.plan import (
    DROP_SKIP,
    DROP_STALE,
    AppFaults,
    FaultPlan,
    noise_plan,
)

__all__ = [
    "AppFaults",
    "FaultPlan",
    "noise_plan",
    "DROP_STALE",
    "DROP_SKIP",
    "FaultInjector",
    "DeliveredInterval",
    "resolve_injector",
    "ChaosJob",
    "MODE_OK",
    "MODE_RAISE",
    "MODE_EXIT",
    "MODE_HANG",
    "MODE_BAD_RESULT",
    "MODE_FLAKY",
]
