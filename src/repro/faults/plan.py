"""Fault plans: declarative, seed-driven descriptions of counter distortion.

The DASE/MISE/ASM estimators assume perfect hardware counters delivered
exactly at every ``estimate_interval`` boundary.  Real counter fabrics are
messier: values arrive noisy (sampling, clock-domain crossing), quantized
(narrow registers), late (interconnect backpressure on the status network),
or not at all (packet loss), and the auxiliary tag directory is itself a
*sampled* structure (paper §4.2, Eq. 13), so its ELLCMiss signal degrades
first when its sampling rate is cut.

A :class:`FaultPlan` names which of those distortions to apply, per
application, with what intensity.  It is a pure value object — frozen,
hashable, picklable — so it can ride inside a
:class:`~repro.harness.parallel.WorkloadJob` across a process pool and
participate in job fingerprints.  All randomness is derived from
``plan.seed`` by the :class:`~repro.faults.inject.FaultInjector`, never
from global state, so the same plan produces the same perturbation
sequence in any process.

The **zero-intensity contract**: a plan whose every knob is at its default
(:meth:`FaultPlan.is_null`) must be indistinguishable from no plan at all
— bit-identical estimates, no RNG construction, no record copies.  This is
golden-enforced by ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Drop-interval semantics (see :class:`AppFaults.drop_mode`).
DROP_STALE = "stale"
DROP_SKIP = "skip"


@dataclass(frozen=True)
class AppFaults:
    """Fault intensities for one application's counter stream.

    Every default is the identity — an all-default ``AppFaults`` perturbs
    nothing and draws nothing.
    """

    #: σ of multiplicative lognormal noise applied to each Table-1 counter
    #: (``v' = v · exp(σ·g)``, g ~ N(0,1)); 0 = exact counters.
    noise_sigma: float = 0.0
    #: Quantization step for integer counters (values rounded to multiples
    #: of this); 0/1 = full resolution.
    quantize: int = 0
    #: Probability that an interval's counter packet is lost entirely.
    drop_prob: float = 0.0
    #: What a consumer sees for a dropped interval: ``"stale"`` re-delivers
    #: the previous delivered record (stale-value semantics); ``"skip"``
    #: delivers nothing, forcing the estimate to ``None`` for the interval.
    drop_mode: str = DROP_STALE
    #: Counter-delivery delay in whole intervals: at interval ``t`` the
    #: consumer sees the counters measured during interval ``t − delay``
    #: (skip semantics for the first ``delay`` intervals).
    delay: int = 0
    #: Multiplier (0 < r ≤ 1) on the ATD's effective set-sampling rate:
    #: the ELLCMiss estimate is re-quantized to the coarser granularity a
    #: slower-sampled tag directory would resolve.
    atd_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.quantize < 0:
            raise ValueError("quantize must be >= 0")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if self.drop_mode not in (DROP_STALE, DROP_SKIP):
            raise ValueError(
                f"drop_mode must be {DROP_STALE!r} or {DROP_SKIP!r}"
            )
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if not 0.0 < self.atd_rate <= 1.0:
            raise ValueError("atd_rate must be in (0, 1]")

    @property
    def is_null(self) -> bool:
        """True when this spec is the identity (perturbs nothing)."""
        return (
            self.noise_sigma == 0.0
            and self.quantize <= 1
            and self.drop_prob == 0.0
            and self.delay == 0
            and self.atd_rate == 1.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """Per-application fault intensities plus the seed that drives them.

    ``default`` applies to every application without an explicit entry in
    ``per_app`` (a tuple of ``(app_index, AppFaults)`` pairs — a tuple, not
    a dict, so the plan stays hashable and order-stable under pickling).
    """

    seed: int = 0
    default: AppFaults = field(default_factory=AppFaults)
    per_app: tuple[tuple[int, AppFaults], ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for app, spec in self.per_app:
            if app < 0:
                raise ValueError("per_app indices must be >= 0")
            if app in seen:
                raise ValueError(f"duplicate per_app entry for app {app}")
            if not isinstance(spec, AppFaults):
                raise TypeError("per_app values must be AppFaults")
            seen.add(app)

    def for_app(self, app: int) -> AppFaults:
        for idx, spec in self.per_app:
            if idx == app:
                return spec
        return self.default

    @property
    def is_null(self) -> bool:
        """True when no application is perturbed — the zero-intensity plan
        that must be bit-identical to running with no plan at all."""
        return self.default.is_null and all(
            spec.is_null for _, spec in self.per_app
        )


def noise_plan(sigma: float, seed: int = 0) -> FaultPlan:
    """Convenience: uniform counter noise of the given σ on every app."""
    return FaultPlan(seed=seed, default=AppFaults(noise_sigma=sigma))
