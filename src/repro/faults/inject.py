"""Deterministic delivery of (possibly perturbed) interval records.

One :class:`FaultInjector` per run presents the *delivered view* of each
estimation interval: what the counter fabric handed the estimators, as
opposed to what the simulator measured.  Every consumer that opted in
(DASE, MISE, ASM via :meth:`repro.core.base.SlowdownEstimator.inject_faults`,
and :class:`~repro.policies.sm_alloc.DASEFairPolicy`) calls
:meth:`FaultInjector.deliver` with the interval index; the first call
computes the view and every later call within the same interval returns
the memoized object, so all consumers of one run agree on what "arrived".

Determinism contract (tested by ``tests/test_faults.py``):

* every random draw is seeded from ``(plan.seed, interval, app)`` via a
  SHA-256 digest — independent of query order, of which models attached,
  and of the process the run executes in (inline vs pooled);
* the draw *schedule* per (interval, app) is fixed regardless of which
  fault knobs are active, so runs at different intensities share their
  random numbers — an error-vs-σ curve is a continuous deformation of one
  realization, not a re-roll per point;
* an app whose :class:`AppFaults` is null is passed through untouched (no
  RNG construction, no copies) — the zero-intensity plan delivers the very
  record objects the simulator produced.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.plan import DROP_SKIP, DROP_STALE, AppFaults, FaultPlan
from repro.sim.stats import IntervalRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.audit import AuditLog

#: Integer Table-1 counters perturbed by noise/quantization, in the fixed
#: order their gaussians are drawn.
_MEM_INT_FIELDS = ("requests_served", "time_request", "erb_miss")
#: Float time-integral counters (BLP accounting), same treatment.
_MEM_FLOAT_FIELDS = (
    "demanded_bank_integral",
    "executing_bank_integral",
    "outstanding_time",
)
#: SM-side counters behind α.
_SM_FIELDS = ("busy_time", "stall_time")


@dataclass
class DeliveredInterval:
    """One interval as the estimators received it.

    ``records`` mirrors the simulator's record list; entries for apps in
    ``skipped`` are placeholders (the original record) and consumers must
    treat the app as having produced no estimate.  ``faulted`` lists apps
    whose record was actually perturbed this interval.
    """

    index: int
    records: list[IntervalRecord]
    skipped: frozenset[int] = frozenset()
    faulted: frozenset[int] = frozenset()
    events: list[dict] = field(default_factory=list)


class FaultInjector:
    """Applies a :class:`FaultPlan` to each interval's records, memoized.

    Construct once per run and hand the same instance to every consumer
    (``run_workload(faults=...)`` does this).  ``audit`` (optional) is an
    :class:`repro.obs.AuditLog`; every applied fault is mirrored there so
    the PR-4 audit stream explains perturbed estimates.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_apps: int | None = None,
        audit: "AuditLog | None" = None,
    ) -> None:
        self.plan = plan
        self.n_apps = n_apps
        self.audit = audit
        self.events: list[dict] = []
        self._raw: list[list[IntervalRecord]] = []
        self._memo: dict[int, DeliveredInterval] = {}
        #: Per-app last successfully delivered record (stale-value source).
        self._last: dict[int, IntervalRecord] = {}

    # ------------------------------------------------------------- delivery

    def deliver(
        self, index: int, records: list[IntervalRecord]
    ) -> DeliveredInterval:
        """Delivered view of interval ``index`` (memoized per interval).

        The first consumer of each interval triggers the computation; all
        consumers must present the simulator's own record list, and
        intervals must be delivered in order (the GPU guarantees both).
        """
        view = self._memo.get(index)
        if view is not None:
            return view
        if index != len(self._raw):
            raise RuntimeError(
                f"fault delivery out of order: interval {index} requested, "
                f"{len(self._raw)} raw intervals recorded"
            )
        self._raw.append(records)
        view = self._compute(index, records)
        self._memo[index] = view
        if view.events:
            self.events.extend(view.events)
            if self.audit is not None:
                for ev in view.events:
                    self.audit.record_fault(ev)
        return view

    # ---------------------------------------------------------- computation

    def _compute(
        self, index: int, records: list[IntervalRecord]
    ) -> DeliveredInterval:
        out: list[IntervalRecord] = []
        skipped: set[int] = set()
        faulted: set[int] = set()
        events: list[dict] = []
        for app, rec in enumerate(records):
            af = self.plan.for_app(app)
            if af.is_null:
                out.append(rec)
                continue
            delivered, kinds = self._deliver_app(index, app, rec, af)
            if delivered is None:
                out.append(rec)  # placeholder; consumer must honour skipped
                skipped.add(app)
            else:
                out.append(delivered)
                if delivered is not rec:
                    faulted.add(app)
            if kinds:
                events.append({
                    "interval": index,
                    "cycle": rec.end,
                    "app": app,
                    "kinds": kinds,
                })
        return DeliveredInterval(
            index=index,
            records=out,
            skipped=frozenset(skipped),
            faulted=frozenset(faulted),
            events=events,
        )

    def _rng(self, index: int, app: int) -> random.Random:
        digest = hashlib.sha256(
            f"{self.plan.seed}:{index}:{app}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _deliver_app(
        self, index: int, app: int, rec: IntervalRecord, af: AppFaults
    ) -> tuple[IntervalRecord | None, list[str]]:
        """Delivered record for one app (None = nothing arrived) + fault
        kinds applied.  The draw schedule is fixed: one uniform (drop), one
        gaussian per counter field, one uniform (ATD re-quantization) —
        always consumed in that order so intensities share randomness."""
        rng = self._rng(index, app)
        u_drop = rng.random()
        gauss = [rng.gauss(0.0, 1.0) for _ in range(
            len(_MEM_INT_FIELDS) + len(_MEM_FLOAT_FIELDS) + len(_SM_FIELDS) + 1
        )]
        u_atd = rng.random()

        kinds: list[str] = []
        # Delayed delivery: at interval t the fabric surfaces the counters
        # measured during t − delay; before that, nothing has arrived yet.
        if af.delay > 0:
            kinds.append("delay")
            src_idx = index - af.delay
            if src_idx < 0:
                kinds.append("delay-warmup-skip")
                return None, kinds
            rec = self._raw[src_idx][app]
        # Packet loss.
        if af.drop_prob > 0.0 and u_drop < af.drop_prob:
            if af.drop_mode == DROP_SKIP:
                kinds.append("drop-skip")
                return None, kinds
            assert af.drop_mode == DROP_STALE
            stale = self._last.get(app)
            if stale is None:
                kinds.append("drop-skip")  # nothing to go stale on yet
                return None, kinds
            kinds.append("drop-stale")
            return stale, kinds

        delivered = self._perturb(rec, af, gauss, u_atd, kinds)
        self._last[app] = delivered
        return delivered, kinds

    def _perturb(
        self,
        rec: IntervalRecord,
        af: AppFaults,
        gauss: list[float],
        u_atd: float,
        kinds: list[str],
    ) -> IntervalRecord:
        import math

        sigma = af.noise_sigma
        q = af.quantize if af.quantize > 1 else 0
        if sigma == 0.0 and q == 0 and af.atd_rate == 1.0:
            return rec  # drop/delay only — counters themselves exact

        g = iter(gauss)
        mem = rec.mem
        sm = rec.sm
        mem_kw: dict[str, float] = {}
        for name in _MEM_INT_FIELDS:
            v = getattr(mem, name)
            gv = next(g)
            if sigma > 0.0:
                v = v * math.exp(sigma * gv)
            if q:
                v = round(v / q) * q
            mem_kw[name] = max(0, int(round(v)))
        for name in _MEM_FLOAT_FIELDS:
            v = getattr(mem, name)
            gv = next(g)
            if sigma > 0.0:
                v = v * math.exp(sigma * gv)
            mem_kw[name] = max(0.0, v)
        sm_kw: dict[str, float] = {}
        for name in _SM_FIELDS:
            v = getattr(sm, name)
            gv = next(g)
            if sigma > 0.0:
                v = v * math.exp(sigma * gv)
            sm_kw[name] = max(0.0, v)
        g_ellc = next(g)
        ellc = rec.ellc_miss
        if sigma > 0.0:
            ellc = ellc * math.exp(sigma * g_ellc)
        if af.atd_rate < 1.0:
            # A slower-sampled ATD resolves contention misses at a coarser
            # granularity: stochastic rounding at step 1/rate (unbiased).
            r = af.atd_rate
            ellc = math.floor(ellc * r + u_atd) / r
            kinds.append("atd-rate")
        if sigma > 0.0:
            kinds.append("noise")
        if q:
            kinds.append("quantize")

        new_mem = dataclasses.replace(mem, **mem_kw)
        new_sm = dataclasses.replace(sm, **sm_kw)
        return dataclasses.replace(
            rec,
            mem=new_mem,
            sm=new_sm,
            ellc_miss=max(0.0, ellc),
            extra={**rec.extra, "fault": sorted(set(kinds))},
        )


def resolve_injector(
    faults: "FaultPlan | FaultInjector | None",
    n_apps: int,
    audit: "AuditLog | None" = None,
) -> FaultInjector | None:
    """Coerce a ``faults`` argument into an injector (or None).

    A null plan resolves to None — the zero-intensity path is the *absence*
    of an injector, so bit-identity with an unfaulted run holds by
    construction.
    """
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        if faults.audit is None:
            faults.audit = audit
        return faults
    if isinstance(faults, FaultPlan):
        if faults.is_null:
            return None
        return FaultInjector(faults, n_apps=n_apps, audit=audit)
    raise TypeError(
        f"faults must be a FaultPlan or FaultInjector, not {faults!r}"
    )
