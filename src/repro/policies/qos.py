"""DASE-QoS: slowdown-bound enforcement for a designated application.

The paper leaves QoS as future work ("the DASE can also be leveraged to
design other slowdown-aware mechanisms to provide QoS guarantees"); prior
work it builds on (Aguilera et al. [3]) dynamically allocates SMs toward a
QoS kernel but needs offline profiles.  With DASE the same control loop
runs online:

* every interval, read the target application's estimated slowdown;
* above the bound → take one SM from the currently least-slowed co-runner;
* comfortably below the bound (hysteresis margin) → hand one SM back to
  the co-runner with the highest estimated slowdown.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.core.dase import DASE
from repro.policies.sm_alloc import AllocationPolicy
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class DASEQoSPolicy(AllocationPolicy):
    """Keep ``target_app``'s slowdown at or below ``max_slowdown``."""

    name = "dase-qos"

    def __init__(
        self,
        config: GPUConfig,
        target_app: int,
        max_slowdown: float,
        estimator: DASE | None = None,
        release_margin: float = 0.15,
    ) -> None:
        if max_slowdown < 1.0:
            raise ValueError("a slowdown bound below 1.0 is unsatisfiable")
        if not 0.0 <= release_margin < 1.0:
            raise ValueError("release_margin must be in [0, 1)")
        self.config = config
        self.target_app = target_app
        self.max_slowdown = max_slowdown
        self.estimator = estimator or DASE(config)
        self.release_margin = release_margin
        self.actions: list[tuple[int, str, int, int]] = []  # (cycle, kind, from, to)
        self._own_estimator = estimator is None

    def attach(self, gpu: GPU) -> None:
        if self.target_app >= gpu.n_apps:
            raise ValueError("target_app out of range")
        if self._own_estimator or self.estimator.gpu is None:
            self.estimator.attach(gpu)
        super().attach(gpu)

    def on_interval(self, records: list[IntervalRecord]) -> None:
        gpu = self.gpu
        if any(sm.draining for sm in gpu.sms):
            return
        estimates = self.estimator.latest()
        if not estimates or any(e is None for e in estimates):
            return
        counts = gpu.sm_counts()
        target = self.target_app
        others = [i for i in range(gpu.n_apps) if i != target]
        if not others:
            return
        now = gpu.engine.now
        if estimates[target] > self.max_slowdown:
            # Violation: pull one SM from the least-suffering co-runner.
            donor = min(others, key=lambda i: estimates[i])
            if counts[donor] > 1:
                gpu.migrate_sms(donor, target, 1)
                self.actions.append((now, "acquire", donor, target))
        elif estimates[target] < self.max_slowdown * (1 - self.release_margin):
            # Comfortably within bound: give one SM back to the co-runner
            # hurting the most, if we hold more than an even share.
            even_share = self.config.n_sms // gpu.n_apps
            if counts[target] > even_share:
                taker = max(others, key=lambda i: estimates[i])
                gpu.migrate_sms(target, taker, 1)
                self.actions.append((now, "release", target, taker))

    def violations(self) -> int:
        """Intervals in which the target's estimate exceeded the bound."""
        return sum(
            1
            for row in self.estimator.history
            if row[self.target_app] is not None
            and row[self.target_app] > self.max_slowdown
        )
