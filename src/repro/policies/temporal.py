"""Background-section baselines: temporal multitasking and LEFTOVER.

The paper's §2.2 contrasts spatial multitasking with what GPUs otherwise
offer: *temporal* multitasking (time-slice the whole GPU) and the
*LEFTOVER* policy ("launch a next kernel only when there are enough
remaining resources", which in practice serializes kernels).  These
policies let the benchmarks quantify the motivation: spatial sharing with
fair SM allocation beats both.

Implementation notes: the simulator requires every resident application to
hold at least one SM, so "temporal" here is *near*-temporal — the active
application holds all SMs but one.  Switches use SM draining like every
other reallocation, so a switch costs the drain time of the outgoing
application's resident blocks (the real cost the paper's preemption
citations, e.g. Chimera, try to reduce).
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.policies.sm_alloc import AllocationPolicy
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord


class TimeSlicePolicy(AllocationPolicy):
    """Near-temporal multitasking: rotate (almost) the whole GPU among
    applications every ``quantum_intervals`` estimation intervals."""

    name = "time-slice"

    def __init__(self, config: GPUConfig, quantum_intervals: int = 2) -> None:
        if quantum_intervals < 1:
            raise ValueError("quantum must be at least one interval")
        self.config = config
        self.quantum_intervals = quantum_intervals
        self.active = 0
        self.switches: list[tuple[int, int]] = []  # (cycle, new active app)
        self._intervals_since_switch = 0
        self._applied_initial = False

    def _apply(self, active: int) -> None:
        gpu = self.gpu
        n = gpu.n_apps
        counts = gpu.sm_counts()
        target = [1] * n
        target[active] = self.config.n_sms - (n - 1)
        for app in range(n):
            surplus = counts[app] - target[app]
            if surplus > 0:
                gpu.migrate_sms(app, active, surplus)

    def on_interval(self, records: list[IntervalRecord]) -> None:
        gpu = self.gpu
        if not self._applied_initial:
            self._applied_initial = True
            self._apply(self.active)
            self.switches.append((gpu.engine.now, self.active))
            return
        if any(sm.draining for sm in gpu.sms):
            return  # previous switch still in flight
        self._intervals_since_switch += 1
        if self._intervals_since_switch < self.quantum_intervals:
            return
        self._intervals_since_switch = 0
        self.active = (self.active + 1) % gpu.n_apps
        self.switches.append((gpu.engine.now, self.active))
        self._apply(self.active)


def leftover_partition(config: GPUConfig, specs, restart: bool = True) -> list[int]:
    """LEFTOVER-style launch partition (paper §2.2).

    The first kernel occupies as much of the GPU as its grid can fill
    (everything, for the common larger-than-GPU grid); each later kernel
    gets what is left — at least the one SM the simulator requires so the
    workload remains runnable.  This is the near-serialization the paper
    criticizes: the first application monopolizes the GPU.

    ``specs``: the kernel specs in launch order.  ``restart=False`` lets a
    small grid leave genuine leftovers, the one case LEFTOVER handles well.
    """
    n = len(specs)
    if n < 1:
        raise ValueError("need at least one kernel")
    remaining = config.n_sms
    counts = [0] * n
    for i, spec in enumerate(specs):
        later_min = n - i - 1  # one SM reserved for each later kernel
        avail = remaining - later_min
        if restart:
            want = avail
        else:
            per_sm = min(
                config.max_blocks_per_sm,
                config.max_warps_per_sm // spec.warps_per_block,
            )
            if spec.max_resident_blocks is not None:
                per_sm = min(per_sm, spec.max_resident_blocks)
            want = min(avail, max(1, -(-spec.blocks_total // max(1, per_sm))))
        counts[i] = max(1, want)
        remaining -= counts[i]
    return counts
