"""SM allocation policies (paper §7).

DASE-Fair, every estimation interval:

1. read each application's estimated slowdown from DASE and take the
   reciprocal (Eq. 28) — a linear proxy for normalized performance in [0, 1];
2. predict each application's reciprocal at every candidate SM count with
   the two linear interpolations of Eqs. 29 (more SMs: toward 1.0 at
   SM_all) and 30 (fewer SMs: toward 0.0 at 0);
3. exhaustively search all partitions of the SMs (every app ≥ 1) for the
   one minimizing predicted unfairness (Eq. 2);
4. if it beats the current partition by a hysteresis margin, migrate SMs
   via draining (no new blocks on donor SMs; ownership flips when their
   resident blocks retire).
"""

from __future__ import annotations

import abc
import itertools
from typing import TYPE_CHECKING, Sequence

from repro.config import GPUConfig
from repro.core.dase import DASE
from repro.obs.audit import DecisionAudit
from repro.sim.gpu import GPU
from repro.sim.stats import IntervalRecord

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.inject import FaultInjector
    from repro.obs.audit import AuditLog


def interpolate_reciprocal(
    reciprocal: float, current_sms: int, target_sms: int, total_sms: int
) -> float:
    """Predict the slowdown reciprocal at ``target_sms`` (Eqs. 29-30).

    With more SMs the reciprocal climbs linearly toward 1.0 (the value with
    all SMs, since alone = all SMs); with fewer it falls linearly toward
    0.0 at zero SMs.
    """
    if not 0.0 <= reciprocal <= 1.0:
        reciprocal = min(1.0, max(0.0, reciprocal))
    if current_sms < 1 or target_sms < 0 or target_sms > total_sms:
        raise ValueError("SM counts out of range")
    if target_sms >= current_sms:
        if total_sms == current_sms:
            return 1.0 if target_sms == total_sms else reciprocal
        frac = (target_sms - current_sms) / (total_sms - current_sms)
        return reciprocal + frac * (1.0 - reciprocal)  # Eq. 29
    return reciprocal * target_sms / current_sms  # Eq. 30


def _partitions(total: int, n_apps: int) -> list[tuple[int, ...]]:
    """All compositions of ``total`` SMs into ``n_apps`` parts, each ≥ 1."""
    if n_apps == 1:
        return [(total,)]
    out = []
    for cut in itertools.combinations(range(1, total), n_apps - 1):
        prev = 0
        parts = []
        for c in cut:
            parts.append(c - prev)
            prev = c
        parts.append(total - prev)
        out.append(tuple(parts))
    return out


def best_partition(
    reciprocals: Sequence[float],
    current: Sequence[int],
    total_sms: int,
    scores_out: list[tuple[tuple[int, ...], float]] | None = None,
    budget: int | None = None,
) -> tuple[tuple[int, ...], float]:
    """Exhaustive search (paper: 'we search all possible SM allocation
    schemes') for the partition minimizing predicted unfairness.

    Returns (partition, predicted_unfairness).  When ``scores_out`` is
    given, every candidate's (partition, unfairness) is appended to it in
    search order — the audit layer records them so each decision can be
    replayed (the chosen target is the first minimum of the list).

    ``budget`` restricts the search to partitions of that many SMs instead
    of the whole machine (open-system runs: only the SMs currently owned
    by resident apps are up for reallocation; the idle admission reserve
    and draining departures stay out of the pool).  Interpolation is still
    anchored to ``total_sms`` — Eq. 29's endpoint is the machine size.
    """
    n = len(reciprocals)
    if n != len(current):
        raise ValueError("reciprocals and current partition length mismatch")
    best: tuple[int, ...] | None = None
    best_unf = float("inf")
    for cand in _partitions(total_sms if budget is None else budget, n):
        slowdowns = []
        for r, cur, tgt in zip(reciprocals, current, cand):
            pr = interpolate_reciprocal(r, cur, tgt, total_sms)
            slowdowns.append(1.0 / max(pr, 1e-6))
        unf = max(slowdowns) / min(slowdowns)
        if scores_out is not None:
            scores_out.append((cand, unf))
        if unf < best_unf:
            best_unf, best = unf, cand
    assert best is not None
    return best, best_unf


def interpolation_table(
    reciprocals: Sequence[float],
    current: Sequence[int],
    total_sms: int,
) -> list[list[float]]:
    """Eqs. 29-30 evaluated everywhere: ``table[app][t-1]`` = predicted
    reciprocal of ``app`` at ``t`` SMs, for t in 1..total_sms."""
    return [
        [
            interpolate_reciprocal(r, cur, t, total_sms)
            for t in range(1, total_sms + 1)
        ]
        for r, cur in zip(reciprocals, current)
    ]


class AllocationPolicy(abc.ABC):
    """Base class: a policy attaches to a GPU and may reassign SMs."""

    name = "base"

    def attach(self, gpu: GPU) -> None:
        self.gpu = gpu
        gpu.add_interval_listener(self.on_interval)

    @abc.abstractmethod
    def on_interval(self, records: list[IntervalRecord]) -> None: ...


class EvenPolicy(AllocationPolicy):
    """The paper's baseline: keep the launch-time even split forever."""

    name = "even"

    def on_interval(self, records: list[IntervalRecord]) -> None:
        return


class StaticPolicy(AllocationPolicy):
    """Any fixed launch-time split (used by the Fig. 8a sensitivity study)."""

    name = "static"

    def on_interval(self, records: list[IntervalRecord]) -> None:
        return


class DASEFairPolicy(AllocationPolicy):
    """The paper's fairness-oriented dynamic SM partitioning."""

    name = "dase-fair"

    def __init__(
        self,
        config: GPUConfig,
        estimator: DASE | None = None,
        improvement_margin: float = 0.05,
        min_tb_unfinished: int = 32,
        dry_run: bool = False,
    ) -> None:
        """``improvement_margin``: required relative unfairness improvement
        before migrating (hysteresis against estimate noise).

        ``min_tb_unfinished``: the paper notes the method 'is unsuitable for
        some kernels, which have too less thread blocks or are too short' —
        an application below this many unfinished thread blocks freezes
        reallocation for the interval.

        ``dry_run``: evaluate every interval (and audit the evaluation) but
        never migrate — a shadow scheduler that leaves the run bit-identical
        to an unscheduled one.  Would-migrate decisions are audited with
        action ``"recommend"``.
        """
        self.config = config
        self.estimator = estimator or DASE(config)
        self.improvement_margin = improvement_margin
        self.min_tb_unfinished = min_tb_unfinished
        self.dry_run = dry_run
        self.decisions: list[tuple[int, tuple[int, ...]]] = []  # (cycle, target)
        self._own_estimator = estimator is None
        #: Audit sink (repro.obs.audit), resolved once at attach time.
        self._audit: "AuditLog | None" = None
        #: Fault injector (repro.faults) shared with the estimators, or
        #: None for the exact-counter path.
        self._faults: "FaultInjector | None" = None
        #: Resident roster of the previous decision (open-system runs);
        #: a change suspends hysteresis for one decision so the partition
        #: re-interpolates promptly after an arrival or departure.
        self._last_roster: tuple[int, ...] | None = None

    def inject_faults(self, injector: "FaultInjector | None") -> None:
        """Route the policy's interval inputs through the shared injector
        so scheduling decisions see the same delivered view the estimators
        do (also forwarded to a privately-owned estimator)."""
        self._faults = injector
        if self._own_estimator:
            self.estimator.inject_faults(injector)

    def use_estimator(self, estimator: DASE) -> None:
        """Adopt an externally-managed DASE (e.g. the harness's) instead of
        the private one, so one estimator drives both the accuracy readout
        and the policy — and the audit log carries a single DASE stream."""
        if getattr(self, "gpu", None) is not None:
            raise RuntimeError("cannot swap estimators after attach")
        self.estimator = estimator
        self._own_estimator = False

    def attach(self, gpu: GPU) -> None:
        # The estimator must observe the interval *before* the policy acts.
        if self._own_estimator:
            self.estimator.attach(gpu)
        elif self.estimator.gpu is None:
            self.estimator.attach(gpu)
        super().attach(gpu)
        if gpu.obs is not None:
            self._audit = gpu.obs.audit

    def on_interval(self, records: list[IntervalRecord]) -> None:
        gpu = self.gpu
        audit = self._audit
        inj = self._faults
        if inj is not None:
            # Decide from the delivered view, not the ground truth — the
            # memoized injector guarantees it matches what the estimators
            # saw this interval.
            records = inj.deliver(
                len(gpu.interval_history) - 1, records
            ).records
        # Let an in-flight migration settle before deciding again.
        if any(sm.draining for sm in gpu.sms):
            if audit is not None:
                self._record_hold(audit, "migration-draining")
            return
        if not all(gpu.app_active):
            # Open-system run with a partial roster: decide over the
            # resident apps only.
            self._on_interval_open(records, audit)
            return
        if any(r.tb_unfinished < self.min_tb_unfinished for r in records):
            if audit is not None:
                self._record_hold(audit, "too-few-thread-blocks")
            return
        recs = self.estimator.latest_reciprocals()
        if not recs or any(r is None for r in recs):
            if audit is not None:
                self._record_hold(audit, "no-estimate", recs)
            return
        current = gpu.sm_counts()
        if min(current) < 1:
            if audit is not None:
                self._record_hold(audit, "app-without-sm", recs)
            return
        self._last_roster = tuple(range(gpu.n_apps))
        scores = [] if audit is not None else None
        target, predicted = best_partition(
            recs, current, self.config.n_sms, scores_out=scores
        )

        slowdowns = [1.0 / max(r, 1e-6) for r in recs]
        current_unf = max(slowdowns) / min(slowdowns)
        if tuple(current) == target:
            if audit is not None:
                self._record_scored(
                    audit, "hold", "already-optimal", recs, current,
                    target, current_unf, predicted, scores, None,
                )
            return
        if predicted > current_unf * (1.0 - self.improvement_margin):
            if audit is not None:
                self._record_scored(
                    audit, "hold", "hysteresis", recs, current,
                    target, current_unf, predicted, scores, None,
                )
            return
        plan = self._plan(current, target)
        if audit is not None:
            self._record_scored(
                audit, "recommend" if self.dry_run else "migrate",
                "improvement", recs, current, target, current_unf,
                predicted, scores, plan,
            )
        if self.dry_run:
            return
        self.decisions.append((gpu.engine.now, target))
        self._apply(plan)

    def _on_interval_open(
        self, records: list[IntervalRecord], audit: "AuditLog | None"
    ) -> None:
        """Partial-roster decision: repartition only the SMs owned by
        resident (active, ≥ 1 SM) applications.

        A roster change since the previous decision drops the hysteresis
        margin to zero for this decision — after an arrival or departure
        the current split is an accident of admission, so the policy
        re-interpolates immediately instead of defending the status quo
        (reason ``"membership-change"`` in the audit record).
        """
        gpu = self.gpu
        current = gpu.sm_counts()
        roster = tuple(
            i for i in range(gpu.n_apps)
            if gpu.app_active[i] and current[i] > 0
        )
        changed = self._last_roster is not None and roster != self._last_roster
        self._last_roster = roster
        if len(roster) < 2:
            if audit is not None:
                self._record_hold(audit, "single-resident-app")
            return
        if any(
            records[i].tb_unfinished < self.min_tb_unfinished for i in roster
        ):
            if audit is not None:
                self._record_hold(audit, "too-few-thread-blocks")
            return
        recs_all = self.estimator.latest_reciprocals()
        if not recs_all or any(recs_all[i] is None for i in roster):
            if audit is not None:
                self._record_hold(audit, "no-estimate", recs_all)
            return
        sub_recs = [recs_all[i] for i in roster]
        sub_cur = [current[i] for i in roster]
        scores = [] if audit is not None else None
        sub_target, predicted = best_partition(
            sub_recs, sub_cur, self.config.n_sms,
            scores_out=scores, budget=sum(sub_cur),
        )
        target_full = list(current)
        for i, t in zip(roster, sub_target):
            target_full[i] = t
        target = tuple(target_full)

        slowdowns = [1.0 / max(r, 1e-6) for r in sub_recs]
        current_unf = max(slowdowns) / min(slowdowns)
        # Audit records stay roster-local (reciprocals/current/target all
        # index the roster); the plan's app indices are global because it
        # describes the actual migrate_sms calls.
        if target == tuple(current):
            if audit is not None:
                self._record_scored(
                    audit, "hold", "already-optimal", sub_recs, sub_cur,
                    sub_target, current_unf, predicted, scores, None,
                )
            return
        margin = 0.0 if changed else self.improvement_margin
        if predicted > current_unf * (1.0 - margin):
            if audit is not None:
                self._record_scored(
                    audit, "hold", "hysteresis", sub_recs, sub_cur,
                    sub_target, current_unf, predicted, scores, None,
                )
            return
        plan = self._plan(current, target)
        if audit is not None:
            self._record_scored(
                audit, "recommend" if self.dry_run else "migrate",
                "membership-change" if changed else "improvement",
                sub_recs, sub_cur, sub_target, current_unf,
                predicted, scores, plan,
            )
        if self.dry_run:
            return
        self.decisions.append((gpu.engine.now, target))
        self._apply(plan)

    # ------------------------------------------------------------- auditing

    def _record_hold(
        self,
        audit: "AuditLog",
        reason: str,
        reciprocals: list[float | None] | None = None,
    ) -> None:
        gpu = self.gpu
        audit.record_decision(DecisionAudit(
            policy=self.name,
            interval=len(gpu.interval_history) - 1,
            cycle=gpu.engine.now,
            current=tuple(gpu.sm_counts()),
            action="hold",
            reason=reason,
            reciprocals=None if reciprocals is None else list(reciprocals),
        ))

    def _record_scored(
        self,
        audit: "AuditLog",
        action: str,
        reason: str,
        reciprocals: Sequence[float],
        current: Sequence[int],
        target: tuple[int, ...],
        current_unf: float,
        predicted: float,
        scores: list[tuple[tuple[int, ...], float]],
        plan: list[tuple[int, int, int]] | None,
    ) -> None:
        gpu = self.gpu
        audit.record_decision(DecisionAudit(
            policy=self.name,
            interval=len(gpu.interval_history) - 1,
            cycle=gpu.engine.now,
            current=tuple(current),
            action=action,
            reason=reason,
            reciprocals=list(reciprocals),
            target=target,
            current_unfairness=current_unf,
            predicted_unfairness=predicted,
            interpolation=interpolation_table(
                reciprocals, current, self.config.n_sms
            ),
            candidates=scores,
            plan=plan,
        ))

    # ------------------------------------------------------------ migration

    @staticmethod
    def _plan(
        current: Sequence[int], target: Sequence[int]
    ) -> list[tuple[int, int, int]]:
        """Donor→taker transfer triples, in ``migrate_sms`` call order."""
        deltas = [t - c for c, t in zip(current, target)]
        donors = [(i, -d) for i, d in enumerate(deltas) if d < 0]
        takers = [(i, d) for i, d in enumerate(deltas) if d > 0]
        plan: list[tuple[int, int, int]] = []
        di = ti = 0
        while di < len(donors) and ti < len(takers):
            d_app, d_avail = donors[di]
            t_app, t_need = takers[ti]
            k = min(d_avail, t_need)
            plan.append((d_app, t_app, k))
            d_avail -= k
            t_need -= k
            donors[di] = (d_app, d_avail)
            takers[ti] = (t_app, t_need)
            if d_avail == 0:
                di += 1
            if t_need == 0:
                ti += 1
        return plan

    def _apply(self, plan: list[tuple[int, int, int]]) -> None:
        for d_app, t_app, k in plan:
            self.gpu.migrate_sms(d_app, t_app, k)
