"""Profile-based fairness policy (the Aguilera et al. [3, 4] approach).

The paper's §7 declines to compare against these policies because they
"are required isolated kernel profiling information to compute application
slowdowns" — which is unobtainable for data-dependent kernels.  In a
simulator we *can* obtain it, so this module implements the profiled
oracle as an upper-bound reference for DASE-Fair:

1. offline, profile each kernel alone at every SM count → IPC(s);
2. online, predict each application's slowdown under any partition as
   IPC(all SMs) / IPC(assigned SMs) — ignoring memory interference, which
   profiling alone cannot see;
3. pick the partition minimizing predicted unfairness.

Comparing DASE-Fair against this oracle quantifies how much of the
profile-based policies' benefit DASE achieves *without* profiling.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.policies.sm_alloc import AllocationPolicy, _partitions
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import KernelSpec
from repro.sim.stats import IntervalRecord


def profile_kernel(
    spec: KernelSpec,
    config: GPUConfig,
    sm_counts: list[int] | None = None,
    cycles: int = 30_000,
    stream_id: int = 0,
) -> dict[int, float]:
    """Offline profile: alone IPC of ``spec`` at each SM count."""
    sm_counts = sm_counts or list(range(1, config.n_sms + 1))
    out: dict[int, float] = {}
    for n in sm_counts:
        gpu = GPU(config, [LaunchedKernel(spec, stream_id=stream_id)],
                  sm_partition=[n])
        gpu.run(cycles)
        out[n] = gpu.ipc(0)
    return out


class ProfiledFairPolicy(AllocationPolicy):
    """Static best partition from offline profiles, applied once."""

    name = "profiled-fair"

    def __init__(
        self,
        config: GPUConfig,
        profiles: list[dict[int, float]],
        improvement_margin: float = 0.02,
    ) -> None:
        if not profiles:
            raise ValueError("need one profile per application")
        for p in profiles:
            if not p or any(v <= 0 for v in p.values()):
                raise ValueError("profiles must map SM count → positive IPC")
        self.config = config
        self.profiles = profiles
        self.improvement_margin = improvement_margin
        self.decisions: list[tuple[int, tuple[int, ...]]] = []

    def predicted_slowdown(self, app: int, sms: int) -> float:
        """IPC(all SMs) / IPC(sms), interpolating missing SM counts."""
        prof = self.profiles[app]
        full = prof[max(prof)]
        if sms in prof:
            return max(1.0, full / prof[sms])
        below = max((s for s in prof if s < sms), default=None)
        above = min((s for s in prof if s > sms), default=None)
        if below is None:
            ipc = prof[above] * sms / above
        elif above is None:
            ipc = prof[below]
        else:
            frac = (sms - below) / (above - below)
            ipc = prof[below] + frac * (prof[above] - prof[below])
        return max(1.0, full / ipc)

    def best_partition(self) -> tuple[tuple[int, ...], float]:
        n = len(self.profiles)
        best, best_unf = None, float("inf")
        for cand in _partitions(self.config.n_sms, n):
            slow = [self.predicted_slowdown(a, s) for a, s in enumerate(cand)]
            unf = max(slow) / min(slow)
            if unf < best_unf:
                best, best_unf = cand, unf
        return best, best_unf

    def on_interval(self, records: list[IntervalRecord]) -> None:
        gpu = self.gpu
        if self.decisions or any(sm.draining for sm in gpu.sms):
            return  # static: decide once
        current = gpu.sm_counts()
        target, predicted = self.best_partition()
        slow = [self.predicted_slowdown(a, s) for a, s in enumerate(current)]
        current_unf = max(slow) / min(slow)
        if tuple(current) == target:
            self.decisions.append((gpu.engine.now, target))
            return
        if predicted > current_unf * (1 - self.improvement_margin):
            self.decisions.append((gpu.engine.now, tuple(current)))
            return
        self.decisions.append((gpu.engine.now, target))
        deltas = [t - c for c, t in zip(current, target)]
        donors = [(i, -d) for i, d in enumerate(deltas) if d < 0]
        takers = [(i, d) for i, d in enumerate(deltas) if d > 0]
        di = ti = 0
        while di < len(donors) and ti < len(takers):
            d_app, d_avail = donors[di]
            t_app, t_need = takers[ti]
            k = min(d_avail, t_need)
            gpu.migrate_sms(d_app, t_app, k)
            d_avail -= k
            t_need -= k
            donors[di] = (d_app, d_avail)
            takers[ti] = (t_app, t_need)
            if d_avail == 0:
                di += 1
            if t_need == 0:
                ti += 1
