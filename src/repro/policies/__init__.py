"""SM allocation policies: the even baseline, the paper's DASE-Fair, and
the DASE-QoS extension (the paper's stated future work)."""

from repro.policies.profiled import ProfiledFairPolicy, profile_kernel
from repro.policies.qos import DASEQoSPolicy
from repro.policies.temporal import TimeSlicePolicy, leftover_partition
from repro.policies.sm_alloc import (
    AllocationPolicy,
    DASEFairPolicy,
    EvenPolicy,
    StaticPolicy,
    best_partition,
    interpolate_reciprocal,
)

__all__ = [
    "AllocationPolicy",
    "EvenPolicy",
    "StaticPolicy",
    "DASEFairPolicy",
    "DASEQoSPolicy",
    "ProfiledFairPolicy",
    "profile_kernel",
    "TimeSlicePolicy",
    "leftover_partition",
    "best_partition",
    "interpolate_reciprocal",
]
