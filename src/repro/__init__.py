"""repro — reproduction of "Run-Time Performance Estimation and
Fairness-Oriented Scheduling Policy for Concurrent GPGPU Applications"
(Hu, Shu, Fan, Lu — ICPP 2016).

Public API tour:

* :class:`GPUConfig` — the simulated architecture (paper Table 2 defaults).
* :class:`KernelSpec` / :data:`repro.workloads.SUITE` — synthetic kernels
  standing in for the paper's 15 benchmark applications.
* :class:`GPU` — the cycle-level simulator substrate.
* :class:`DASE`, :class:`MISE`, :class:`ASM` — slowdown estimators
  (:mod:`repro.core`).
* :class:`DASEFairPolicy` / :class:`EvenPolicy` — SM allocation policies
  (:mod:`repro.policies`).
* :mod:`repro.harness` — the paper's matched-instruction evaluation
  methodology and one driver per figure/table.
"""

from repro.config import BASELINE, CacheConfig, DRAMTimings, GPUConfig
from repro.metrics import (
    error_distribution,
    estimation_error,
    harmonic_speedup,
    slowdown,
    unfairness,
)
from repro.sim import GPU, AccessPattern, KernelSpec, LaunchedKernel

__version__ = "1.0.0"

__all__ = [
    "BASELINE",
    "CacheConfig",
    "DRAMTimings",
    "GPUConfig",
    "GPU",
    "KernelSpec",
    "LaunchedKernel",
    "AccessPattern",
    "slowdown",
    "unfairness",
    "harmonic_speedup",
    "estimation_error",
    "error_distribution",
]
