"""Post-hoc analysis over saved experiment artifacts.

After ``pytest benchmarks/ --benchmark-only`` populates ``results/*.json``
(see :mod:`repro.harness.persist`), these helpers assemble the
paper-vs-measured summary — the table EXPERIMENTS.md is written from —
without re-running anything.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass

from repro.harness.persist import load_result

#: Paper headline numbers each artifact is compared against.
PAPER_REFERENCE: dict[str, dict[str, float]] = {
    "fig5_two_app_error": {"DASE": 0.088, "MISE": 0.363, "ASM": 0.328},
    "fig6_four_app_error": {"DASE": 0.114, "MISE": 0.626, "ASM": 0.58},
}


@dataclass(frozen=True)
class SummaryRow:
    experiment: str
    quantity: str
    paper: str
    measured: str
    verdict: str  # "shape-ok" / "check"


def _fmt(v: float) -> str:
    return f"{100 * v:.1f}%"


def available_results(directory: str | os.PathLike | None = None) -> list[str]:
    """Names of saved artifacts in the results directory."""
    d = pathlib.Path(directory or os.environ.get("REPRO_RESULTS_DIR", "results"))
    if not d.is_dir():
        return []
    return sorted(p.stem for p in d.glob("*.json"))


def summarize_accuracy(
    name: str, directory: str | os.PathLike | None = None
) -> list[SummaryRow]:
    """Rows for a Fig-5/6 style accuracy artifact."""
    data = load_result(name, directory)
    paper = PAPER_REFERENCE.get(name, {})
    rows = []
    means = data.get("means", {})
    dase = means.get("DASE")
    for model, err in sorted(means.items()):
        ref = paper.get(model)
        verdict = "shape-ok"
        if model != "DASE" and dase is not None and err <= 2 * dase:
            verdict = "check"  # a baseline nearly matching DASE is suspicious
        if model == "DASE" and err > 0.2:
            verdict = "check"
        rows.append(
            SummaryRow(
                experiment=name,
                quantity=f"{model} mean error",
                paper=_fmt(ref) if ref is not None else "—",
                measured=_fmt(err),
                verdict=verdict,
            )
        )
    return rows


def summarize_fig9(
    directory: str | os.PathLike | None = None,
) -> list[SummaryRow]:
    data = load_result("fig9_dase_fair", directory)
    even = data["unfairness_even"]
    fair = data["unfairness_fair"]
    gains = [1 - fair[k] / even[k] for k in even]
    mean_gain = sum(gains) / len(gains)
    hsp_e, hsp_f = data["hspeedup_even"], data["hspeedup_fair"]
    hsp_gain = sum(hsp_f[k] / hsp_e[k] - 1 for k in hsp_e) / len(hsp_e)
    return [
        SummaryRow("fig9_dase_fair", "unfairness improvement", ">16.1%",
                   _fmt(mean_gain), "shape-ok" if mean_gain > 0 else "check"),
        SummaryRow("fig9_dase_fair", "H-speedup improvement", ">3.7%",
                   _fmt(hsp_gain), "shape-ok" if hsp_gain > -0.05 else "check"),
    ]


def full_summary(directory: str | os.PathLike | None = None) -> list[SummaryRow]:
    """All rows derivable from whatever artifacts exist."""
    rows: list[SummaryRow] = []
    names = set(available_results(directory))
    for name in ("fig5_two_app_error", "fig6_four_app_error"):
        if name in names:
            rows.extend(summarize_accuracy(name, directory))
    if "fig9_dase_fair" in names:
        rows.extend(summarize_fig9(directory))
    if "fig2_unfairness" in names:
        data = load_result("fig2_unfairness", directory)
        worst_key = max(data["unfairness"], key=data["unfairness"].get)
        worst = data["unfairness"][worst_key]
        rows.append(
            SummaryRow("fig2_unfairness", f"worst unfairness ({worst_key})",
                       "2.51 (SD pair)", f"{worst:.2f}",
                       "shape-ok" if worst > 1.8 else "check")
        )
    return rows


def render_summary(rows: list[SummaryRow]) -> str:
    from repro.harness.report import table

    if not rows:
        return ("no artifacts found — run "
                "`pytest benchmarks/ --benchmark-only` first")
    return table(
        ["experiment", "quantity", "paper", "measured", "verdict"],
        [[r.experiment, r.quantity, r.paper, r.measured, r.verdict]
         for r in rows],
    )
