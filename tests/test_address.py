"""Unit tests for address decomposition (256 B partition interleave)."""

import pytest
from hypothesis import given, strategies as st

from repro.config import CacheConfig, GPUConfig
from repro.sim.address import AddressMapper

CFG = GPUConfig()


@pytest.fixture()
def mapper():
    return AddressMapper(CFG)


def test_same_line_same_coordinates(mapper):
    a = mapper.decode(0x1000)
    b = mapper.decode(0x1000 + 127)  # same 128 B line
    assert a == b


def test_granule_pairs_share_a_partition_and_row(mapper):
    """Two consecutive lines of one 256 B granule — a *wide* access — land
    in the same partition, bank and row (the locality wide accesses rely on)."""
    for granule in (0, 7, 123):
        line = 2 * granule
        a = mapper.decode(line * CFG.l2.line_bytes)
        b = mapper.decode((line + 1) * CFG.l2.line_bytes)
        assert a.partition == b.partition
        assert a.bank == b.bank
        assert a.row == b.row
        assert b.local_line == a.local_line + 1


def test_granules_interleave_across_partitions(mapper):
    partitions = [
        mapper.decode(2 * g * CFG.l2.line_bytes).partition
        for g in range(CFG.n_partitions)
    ]
    assert sorted(partitions) == list(range(CFG.n_partitions))


def test_local_lines_walk_rows_then_banks(mapper):
    """Consecutive partition-local lines fill a row, then the next bank."""
    first = mapper.decode(mapper.encode(0, 0))
    for i in range(CFG.lines_per_row):
        d = mapper.decode(mapper.encode(0, i))
        assert d.partition == 0
        assert d.bank == first.bank
        assert d.row == first.row
        assert d.local_line == i
    rolled = mapper.decode(mapper.encode(0, CFG.lines_per_row))
    assert rolled.bank == (first.bank + 1) % CFG.n_banks


def test_bank_wraps_to_next_row(mapper):
    local = CFG.lines_per_row * CFG.n_banks
    d = mapper.decode(mapper.encode(0, local))
    assert d.bank == 0
    assert d.row == 1


def test_cache_set_within_range(mapper):
    for addr in (0, 12345 * 128, 999_999_999):
        d = mapper.decode(addr)
        assert 0 <= d.cache_set < CFG.l2.n_sets


def test_negative_address_rejected(mapper):
    with pytest.raises(ValueError):
        mapper.decode(-1)


def test_encode_validates(mapper):
    with pytest.raises(ValueError):
        mapper.encode(CFG.n_partitions, 0)
    with pytest.raises(ValueError):
        mapper.encode(0, -1)


def test_non_power_of_two_line_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=96 * 100, line_bytes=100, assoc=8)


def test_non_power_of_two_interleave_rejected():
    with pytest.raises(ValueError):
        GPUConfig(interleave_lines=3)


def test_single_line_interleave_supported():
    cfg = GPUConfig(interleave_lines=1)
    m = AddressMapper(cfg)
    parts = [m.decode(i * 128).partition for i in range(cfg.n_partitions)]
    assert sorted(parts) == list(range(cfg.n_partitions))


@given(st.integers(min_value=0, max_value=2**40))
def test_property_decode_encode_roundtrip(addr):
    m = AddressMapper(CFG)
    d = m.decode(addr)
    line_addr = d.line * CFG.l2.line_bytes
    assert m.encode(d.partition, d.local_line) == line_addr
    assert m.line_of(addr) == d.line


@given(st.integers(min_value=0, max_value=2**40))
def test_property_set_tag_roundtrip(addr):
    """(cache_set, tag) reconstructs the partition-local line number."""
    m = AddressMapper(CFG)
    d = m.decode(addr)
    assert d.local_line == d.tag * CFG.l2.n_sets + d.cache_set


@given(st.integers(min_value=0, max_value=2**40))
def test_property_bank_row_roundtrip(addr):
    """(row, bank, line-within-row) reconstructs the local line number."""
    m = AddressMapper(CFG)
    d = m.decode(addr)
    within = d.local_line % CFG.lines_per_row
    assert m.local_coords(d.bank, d.row, within) == d.local_line


@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=2**24),
)
def test_property_encode_decode_roundtrip(partition, local_line):
    m = AddressMapper(CFG)
    d = m.decode(m.encode(partition, local_line))
    assert d.partition == partition
    assert d.local_line == local_line


@given(st.integers(min_value=0, max_value=2**39))
def test_property_partition_balance(base):
    """Any 12-line aligned window covers every partition equally."""
    m = AddressMapper(CFG)
    window = CFG.n_partitions * CFG.interleave_lines
    start = (base // window) * window
    parts = [m.decode((start + i) * 128).partition for i in range(window)]
    from collections import Counter

    assert all(v == CFG.interleave_lines for v in Counter(parts).values())
