"""Tests for result persistence."""

import dataclasses

import pytest

from repro.harness.persist import load_result, save_result


@dataclasses.dataclass
class Nested:
    x: float
    tags: tuple


def test_roundtrip(tmp_path):
    payload = {"a": 1, "b": [1.23456789, "s"], "c": Nested(0.5, ("t",))}
    path = save_result("demo", payload, directory=tmp_path)
    assert path.exists()
    back = load_result("demo", directory=tmp_path)
    assert back["a"] == 1
    assert back["b"][0] == pytest.approx(1.234568)
    assert back["c"] == {"x": 0.5, "tags": ["t"]}


def test_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "r"))
    path = save_result("x", {"v": 1})
    assert path.parent == tmp_path / "r"
    assert load_result("x") == {"v": 1}


def test_bad_name_rejected(tmp_path):
    with pytest.raises(ValueError):
        save_result("a/b", {}, directory=tmp_path)
    with pytest.raises(ValueError):
        save_result("", {}, directory=tmp_path)


def test_non_serializable_falls_back_to_str(tmp_path):
    class Weird:
        def __str__(self):
            return "weird"

    save_result("w", {"o": Weird()}, directory=tmp_path)
    assert load_result("w", directory=tmp_path) == {"o": "weird"}
