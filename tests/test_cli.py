"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "table3" in out


def test_table1(capsys):
    assert main(["table1", "--apps", "2"]) == 0
    out = capsys.readouterr().out
    assert "ATD" in out and "per partition" in out


def test_run_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "NOPE"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig_parsers_accept_limit():
    args = build_parser().parse_args(["fig5", "--limit", "3"])
    assert args.limit == 3
    assert args.experiment == "fig5"


def test_fig_parsers_accept_jobs_and_cache_dir():
    args = build_parser().parse_args(
        ["fig5", "--limit", "2", "--jobs", "4", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.cache_dir == "/tmp/c"
    # default: inline execution, cache from $REPRO_CACHE_DIR only
    args = build_parser().parse_args(["fig9"])
    assert args.jobs is None and args.cache_dir is None


def test_run_parser_accepts_trace_flags():
    args = build_parser().parse_args(
        ["run", "SD", "SB", "--trace", "t.json", "--trace-format", "html"]
    )
    assert args.trace == "t.json"
    assert args.trace_format == "html"
    args = build_parser().parse_args(["run", "SD", "SB"])
    assert args.trace is None and args.trace_format == "chrome"


def test_trace_parser_defaults():
    args = build_parser().parse_args(["trace", "SD", "SB"])
    assert args.apps == ["SD", "SB"]
    assert args.out == "obs_run"
    assert args.format == "chrome,csv,html"
    assert args.models == "DASE,MISE,ASM"


def test_fig_parsers_accept_progress_flags():
    args = build_parser().parse_args(
        ["fig5", "--progress", "--sweep-log", "s.jsonl"]
    )
    assert args.progress is True
    assert args.sweep_log == "s.jsonl"


def test_inspect_requires_path():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["inspect"])


def test_list_includes_obs_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and "inspect" in out


@pytest.mark.slow
def test_trace_inspect_end_to_end(tmp_path, capsys):
    out_dir = str(tmp_path / "obs_run")
    rc = main([
        "trace", "SD", "SB", "--cycles", "15000", "--models", "DASE",
        "--out", out_dir,
    ])
    assert rc == 0
    for name in ("trace.json", "events.csv", "report.html", "run.json"):
        assert (tmp_path / "obs_run" / name).is_file()
    out = capsys.readouterr().out
    assert "workload: SD+SB" in out
    assert main(["inspect", out_dir]) == 0
    assert "workload: SD+SB" in capsys.readouterr().out


@pytest.mark.slow
def test_run_trace_flag_writes_trace(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    rc = main([
        "run", "SD", "SB", "--cycles", "15000", "--models", "DASE",
        "--trace", trace_path,
    ])
    assert rc == 0
    import json

    payload = json.loads((tmp_path / "trace.json").read_text())
    assert payload["traceEvents"]


def test_inspect_unrecognized_file_fails(tmp_path):
    junk = tmp_path / "junk.json"
    junk.write_text("[]")
    with pytest.raises(SystemExit):
        main(["inspect", str(junk)])


@pytest.mark.slow
def test_run_workload_end_to_end(capsys):
    rc = main(["run", "QR", "CT", "--cycles", "30000", "--models", "DASE"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "unfairness" in out
    assert "QR" in out and "CT" in out
    assert "DASE mean error" in out
