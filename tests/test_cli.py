"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "table3" in out


def test_table1(capsys):
    assert main(["table1", "--apps", "2"]) == 0
    out = capsys.readouterr().out
    assert "ATD" in out and "per partition" in out


def test_run_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "NOPE"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig_parsers_accept_limit():
    args = build_parser().parse_args(["fig5", "--limit", "3"])
    assert args.limit == 3
    assert args.experiment == "fig5"


def test_fig_parsers_accept_jobs_and_cache_dir():
    args = build_parser().parse_args(
        ["fig5", "--limit", "2", "--jobs", "4", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.cache_dir == "/tmp/c"
    # default: inline execution, cache from $REPRO_CACHE_DIR only
    args = build_parser().parse_args(["fig9"])
    assert args.jobs is None and args.cache_dir is None


def test_run_parser_accepts_trace_flags():
    args = build_parser().parse_args(
        ["run", "SD", "SB", "--trace", "t.json", "--trace-format", "html"]
    )
    assert args.trace == "t.json"
    assert args.trace_format == "html"
    args = build_parser().parse_args(["run", "SD", "SB"])
    assert args.trace is None and args.trace_format == "chrome"


def test_trace_parser_defaults():
    args = build_parser().parse_args(["trace", "SD", "SB"])
    assert args.apps == ["SD", "SB"]
    assert args.out == "obs_run"
    assert args.format == "chrome,csv,html"
    assert args.models == "DASE,MISE,ASM"


def test_fig_parsers_accept_progress_flags():
    args = build_parser().parse_args(
        ["fig5", "--progress", "--sweep-log", "s.jsonl"]
    )
    assert args.progress is True
    assert args.sweep_log == "s.jsonl"


def test_inspect_requires_path():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["inspect"])


def test_list_includes_obs_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and "inspect" in out


@pytest.mark.slow
def test_trace_inspect_end_to_end(tmp_path, capsys):
    out_dir = str(tmp_path / "obs_run")
    rc = main([
        "trace", "SD", "SB", "--cycles", "15000", "--models", "DASE",
        "--out", out_dir,
    ])
    assert rc == 0
    for name in ("trace.json", "events.csv", "report.html", "run.json"):
        assert (tmp_path / "obs_run" / name).is_file()
    out = capsys.readouterr().out
    assert "workload: SD+SB" in out
    assert main(["inspect", out_dir]) == 0
    assert "workload: SD+SB" in capsys.readouterr().out


@pytest.mark.slow
def test_run_trace_flag_writes_trace(tmp_path, capsys):
    trace_path = str(tmp_path / "trace.json")
    rc = main([
        "run", "SD", "SB", "--cycles", "15000", "--models", "DASE",
        "--trace", trace_path,
    ])
    assert rc == 0
    import json

    payload = json.loads((tmp_path / "trace.json").read_text())
    assert payload["traceEvents"]


def test_inspect_unrecognized_file_fails(tmp_path):
    junk = tmp_path / "junk.json"
    junk.write_text("[]")
    with pytest.raises(SystemExit):
        main(["inspect", str(junk)])


def test_inspect_missing_and_corrupt_fail_with_one_line_message(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["inspect", str(tmp_path / "nope")])
    msg = str(exc.value)
    assert msg.startswith("repro inspect:") and "\n" not in msg

    corrupt = tmp_path / "run.json"
    corrupt.write_text("{broken")
    with pytest.raises(SystemExit) as exc:
        main(["inspect", str(tmp_path)])
    msg = str(exc.value)
    assert "not valid JSON" in msg and "\n" not in msg


def test_trace_parser_audit_and_policy_flags():
    args = build_parser().parse_args(["trace", "SD", "SB", "--audit"])
    assert args.audit is True and args.policy == "none"
    args = build_parser().parse_args(
        ["trace", "SD", "SB", "--policy", "dase-fair"]
    )
    assert args.policy == "dase-fair" and args.audit is False
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "SD", "SB", "--policy", "bogus"])


def test_diff_parser_flags():
    args = build_parser().parse_args(
        ["diff", "a", "b", "--rel-tol", "0.01", "--only",
         "workload.estimates", "--json"]
    )
    assert args.a == "a" and args.b == "b"
    assert args.rel_tol == 0.01
    assert args.only == "workload.estimates"
    assert args.json is True


def test_diff_missing_input_fails_with_one_line_message(tmp_path):
    with pytest.raises(SystemExit) as exc:
        main(["diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
    msg = str(exc.value)
    assert msg.startswith("repro diff:") and "\n" not in msg


def test_diff_cli_verdicts(tmp_path, capsys):
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"x": 1.0, "y": [1, 2]}))
    b.write_text(json.dumps({"x": 1.0, "y": [1, 2]}))
    assert main(["diff", str(a), str(b)]) == 0
    assert "IDENTICAL" in capsys.readouterr().out

    b.write_text(json.dumps({"x": 1.5, "y": [1, 2]}))
    assert main(["diff", str(a), str(b)]) == 1
    assert "DRIFT" in capsys.readouterr().out

    assert main(["diff", str(a), str(b), "--json"]) == 1
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["schema"] == "repro.obs.diff/1"
    assert verdict["identical"] is False
    assert verdict["drift"][0]["path"] == "x"


@pytest.mark.slow
def test_trace_audit_end_to_end(tmp_path, capsys):
    import json

    out_dir = str(tmp_path / "obs_run")
    rc = main([
        "trace", "SD", "SB", "--cycles", "24000", "--models", "DASE",
        "--audit", "--out", out_dir, "--format", "html",
    ])
    assert rc == 0
    audit_payload = json.loads(
        (tmp_path / "obs_run" / "audit.json").read_text()
    )
    assert audit_payload["schema"] == "repro.obs.audit/1"
    assert audit_payload["summary"]["model_records"] > 0
    assert audit_payload["summary"]["decision_records"] > 0
    html = (tmp_path / "obs_run" / "report.html").read_text()
    assert "relative error per interval" in html
    assert "DASE-Fair decision timeline" in html
    manifest = json.loads((tmp_path / "obs_run" / "run.json").read_text())
    assert manifest["audit"]["model_records"] > 0
    assert manifest["files"]["audit"] == "audit.json"
    out = capsys.readouterr().out
    assert "audit:" in out


@pytest.mark.slow
def test_run_workload_end_to_end(capsys):
    rc = main(["run", "QR", "CT", "--cycles", "30000", "--models", "DASE"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "unfairness" in out
    assert "QR" in out and "CT" in out
    assert "DASE mean error" in out


def test_backend_flag_on_run_fig_and_trace_parsers():
    p = build_parser()
    assert p.parse_args(["run", "SD", "SB"]).backend is None
    for argv in (
        ["run", "SD", "SB", "--backend", "vectorized"],
        ["fig5", "--backend", "vectorized"],
        ["fig2", "--backend", "vectorized"],
        ["trace", "SD", "SB", "--out", "t.jsonl", "--backend", "vectorized"],
    ):
        assert p.parse_args(argv).backend == "vectorized"
    assert p.parse_args(["run", "SD", "--backend", "reference"]).backend == \
        "reference"


def test_backend_flag_rejects_unknown_name(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "SD", "--backend", "turbo"])
    assert "invalid choice" in capsys.readouterr().err


def test_run_backend_end_to_end_matches_reference(capsys):
    pytest.importorskip("numpy")
    assert main(["run", "SD", "SB", "--cycles", "30000"]) == 0
    ref_out = capsys.readouterr().out
    assert main(
        ["run", "SD", "SB", "--cycles", "30000", "--backend", "vectorized"]
    ) == 0
    assert capsys.readouterr().out == ref_out


def test_fig_parsers_accept_sweep_trace_flags():
    args = build_parser().parse_args(
        ["fig5", "--limit", "1", "--sweep-trace", "/tmp/st",
         "--profile-sweep"]
    )
    assert args.sweep_trace == "/tmp/st"
    assert args.profile_sweep is True
    args = build_parser().parse_args(["fig5"])
    assert args.sweep_trace is None and args.profile_sweep is False


def test_profile_sweep_requires_sweep_trace():
    with pytest.raises(SystemExit, match="requires --sweep-trace"):
        main(["fig5", "--limit", "1", "--profile-sweep"])


def _small_sweep_artifacts(tmp_path, profile=False):
    """Produce real sweep artifacts cheaply: a ChaosJob sweep through
    run_jobs with the bus on, then the CLI artifact writer."""
    from repro.cli import _write_sweep_artifacts
    from repro.faults import ChaosJob
    from repro.harness.parallel import run_jobs

    out = tmp_path / "sweep"
    bus_dir = out / "bus"
    jobs = [ChaosJob(name=f"j{i}", payload=i) for i in range(3)]
    outs = run_jobs(jobs, n_jobs=1, bus=bus_dir, profile=profile)
    assert all(o.ok for o in outs)
    _write_sweep_artifacts(str(out), str(bus_dir), profile)
    return out


def test_sweep_artifacts_and_inspect_sweep(tmp_path, capsys):
    out = _small_sweep_artifacts(tmp_path, profile=True)
    assert (out / "trace.json").is_file()
    assert (out / "sweep.json").is_file()
    assert (out / "report.html").is_file()
    assert (out / "profile.pstats").is_file()
    capsys.readouterr()

    assert main(["inspect", str(out), "--sweep"]) == 0
    text = capsys.readouterr().out
    assert "3 jobs, 3 ok, 0 failed" in text
    assert "job latency" in text and "p95" in text

    assert main(["inspect", str(out / "sweep.json")]) == 0
    assert "3 jobs" in capsys.readouterr().out

    assert main(["inspect", str(out), "--sweep", "--json"]) == 0
    import json as _json

    payload = _json.loads(capsys.readouterr().out)
    assert payload["kind"] == "sweep"
    assert payload["n_jobs"] == 3


def test_diff_two_sweep_manifests_cli(tmp_path, capsys):
    import json as _json

    a = _small_sweep_artifacts(tmp_path / "a")
    # The same sweep re-run elsewhere: only wall-clock and worker noise
    # differ, and the auto-applied sweep ignore set skips all of it.
    payload = _json.loads((a / "sweep.json").read_text())
    payload["wall_s"] = payload["wall_s"] + 100.0
    payload["workers"] = {"999": {"jobs": 3, "busy_s": 1.0, "cpu_s": 1.0,
                                  "rss_peak_kb": 1}}
    b = tmp_path / "b.json"
    b.write_text(_json.dumps(payload))
    assert main(["diff", str(a / "sweep.json"), str(b)]) == 0

    # But a failure-count regression is drift (exit code 1).
    payload["ok"], payload["failed"] = 2, 1
    b.write_text(_json.dumps(payload))
    assert main(["diff", str(a / "sweep.json"), str(b)]) == 1


# ------------------------------------------------------------------- store


def test_store_parser_flags():
    p = build_parser()
    args = p.parse_args(["store", "list"])
    assert args.store_command == "list" and args.store == "results/store"
    args = p.parse_args(["store", "show", "fig2@-1", "--store", "/tmp/s"])
    assert args.ref == "fig2@-1" and args.store == "/tmp/s"
    args = p.parse_args(
        ["store", "record", "--scenario", "fig2", "--payload", "p.json",
         "--seed", "7"]
    )
    assert args.scenario == "fig2" and args.seed == 7
    args = p.parse_args(["store", "gc", "--keep", "3"])
    assert args.keep == 3
    args = p.parse_args(
        ["store", "diff", "fig2@0", "fig2@1", "--rel-tol", "0.01"]
    )
    assert args.a == "fig2@0" and args.b == "fig2@1"
    args = p.parse_args(["trajectory", "--html", "t.html"])
    assert args.html == "t.html" and args.store == "results/store"
    assert args.bench == "BENCH_trajectory.json"


def test_fig_parsers_accept_store_and_seed():
    p = build_parser()
    for fig in ("fig2", "fig5", "fig9", "fig-degradation", "fig-churn"):
        args = p.parse_args([fig, "--store", "/tmp/s"])
        assert args.store == "/tmp/s", fig
        assert hasattr(args, "seed"), fig
    assert p.parse_args(["fig2"]).store is None
    assert p.parse_args(["fig2", "--seed", "9"]).seed == 9


def test_store_cli_end_to_end(tmp_path, capsys):
    import json as _json

    store_dir = str(tmp_path / "store")
    payload = {"combos": ["SD+SB"], "unfairness": {"SD+SB": 2.5},
               "sd_alone_bw": 0.4}
    pfile = tmp_path / "payload.json"
    pfile.write_text(_json.dumps(payload))

    assert main(["store", "list", "--store", store_dir]) == 0
    assert "holds no recordings" in capsys.readouterr().out

    assert main(["store", "record", "--store", store_dir,
                 "--scenario", "fig2", "--payload", str(pfile),
                 "--seed", "1"]) == 0
    assert "recorded fig2" in capsys.readouterr().out

    assert main(["store", "list", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "repro.store.fig2/1" in out

    assert main(["store", "show", "fig2@-1", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "scenario" in out

    assert main(["store", "show", "fig2@-1", "--store", store_dir,
                 "--payload"]) == 0
    exported = capsys.readouterr().out
    assert _json.loads(exported) == payload
    assert exported == _json.dumps(payload, indent=1, sort_keys=True) + "\n"

    assert main(["store", "gc", "--store", store_dir]) == 0
    assert "0 orphan" in capsys.readouterr().out


def test_store_import_reexport_byte_identical_cli(tmp_path, capsys):
    import json as _json

    legacy = {"pair": ["SD", "SB"], "errors": {"clean": 11.5}}
    src = tmp_path / "degradation.json"
    src.write_text(_json.dumps(legacy, indent=1, sort_keys=True) + "\n")
    store_dir = str(tmp_path / "store")
    assert main(["store", "import", str(src), "--store", store_dir]) == 0
    assert "imported" in capsys.readouterr().out
    assert main(["store", "show", "degradation@-1", "--store", store_dir,
                 "--payload"]) == 0
    assert capsys.readouterr().out == src.read_text()


def test_store_diff_cli_verdicts(tmp_path, capsys):
    import json as _json

    store_dir = str(tmp_path / "store")
    pfile = tmp_path / "p.json"
    for unf in (2.5, 2.5, 3.5):
        pfile.write_text(_json.dumps({"combos": ["SD+SB"],
                                      "unfairness": {"SD+SB": unf}}))
        assert main(["store", "record", "--store", store_dir,
                     "--scenario", "fig2", "--payload", str(pfile),
                     "--seed", "1"]) == 0
    capsys.readouterr()

    # Identical recordings diff clean even though provenance differs:
    # the store ignore set skips provenance and record_id.
    assert main(["store", "diff", "fig2@0", "fig2@1",
                 "--store", store_dir]) == 0
    assert "IDENTICAL" in capsys.readouterr().out

    # A perturbed payload is drift (exit code 1).
    assert main(["store", "diff", "fig2@0", "fig2@2",
                 "--store", store_dir]) == 1
    assert "DRIFT" in capsys.readouterr().out

    # Unknown reference: the one-line error contract.
    with pytest.raises(SystemExit) as exc:
        main(["store", "diff", "fig2@0", "fig9@0", "--store", store_dir])
    msg = str(exc.value)
    assert msg.startswith("repro store:") and "\n" not in msg


def test_store_corrupt_and_missing_index_one_line(tmp_path, capsys):
    import json as _json

    store_dir = tmp_path / "store"

    # Corrupt index: every store entry point reports one line, exit 1.
    store_dir.mkdir()
    (store_dir / "index.json").write_text("{broken")
    for argv in (
        ["store", "list", "--store", str(store_dir)],
        ["inspect", str(store_dir)],
        ["diff", str(store_dir), str(store_dir)],
        ["trajectory", "--store", str(store_dir)],
    ):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        msg = str(exc.value)
        assert "not valid JSON" in msg and "\n" not in msg, argv

    # Missing index but records present: same contract.
    (store_dir / "index.json").unlink()
    records = store_dir / "records"
    records.mkdir()
    (records / ("ab" * 32 + ".json")).write_text("{}")
    for argv in (
        ["store", "list", "--store", str(store_dir)],
        ["diff", str(store_dir), str(store_dir)],
    ):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        msg = str(exc.value)
        assert "restore the index or re-import" in msg and "\n" not in msg


def test_inspect_autodetects_store_artifacts(tmp_path, capsys):
    import json as _json

    store_dir = str(tmp_path / "store")
    pfile = tmp_path / "p.json"
    pfile.write_text(_json.dumps({"combos": ["SD+SB"],
                                  "unfairness": {"SD+SB": 2.0},
                                  "sd_alone_bw": 0.3}))
    assert main(["store", "record", "--store", store_dir,
                 "--scenario", "fig2", "--payload", str(pfile),
                 "--seed", "1"]) == 0
    capsys.readouterr()

    # A store directory inspects as its index.
    assert main(["inspect", store_dir]) == 0
    out = capsys.readouterr().out
    assert "store" in out and "fig2" in out

    # A single record file inspects as a record summary with metrics.
    from repro.store import ResultStore

    rec = ResultStore(store_dir).load("fig2@-1")
    rec_path = ResultStore(store_dir).record_path(rec.record_id)
    assert main(["inspect", str(rec_path)]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "unfairness.mean" in out


def test_trajectory_cli_table_json_and_html(tmp_path, capsys):
    import json as _json

    store_dir = str(tmp_path / "store")
    pfile = tmp_path / "p.json"
    for bw in (0.25, 0.30):
        pfile.write_text(_json.dumps({"combos": ["SD+SB"],
                                      "unfairness": {"SD+SB": 2.0},
                                      "sd_alone_bw": bw}))
        assert main(["store", "record", "--store", store_dir,
                     "--scenario", "fig2", "--payload", str(pfile),
                     "--seed", "1"]) == 0
    capsys.readouterr()

    assert main(["trajectory", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "sd_alone_bw" in out

    assert main(["trajectory", "--store", store_dir, "--json"]) == 0
    series = _json.loads(capsys.readouterr().out)
    assert len(series["fig2"]["points"]) == 2

    html = tmp_path / "traj.html"
    assert main(["trajectory", "--store", store_dir,
                 "--html", str(html)]) == 0
    text = html.read_text()
    assert "<svg" in text and "fig2" in text


@pytest.mark.slow
def test_fig3_store_recording_end_to_end(tmp_path, capsys):
    """`repro fig3 --store` routes the driver's payload through the
    registry; same scenario + seed → identical record id (zero drift)."""
    store_dir = str(tmp_path / "store")
    for _ in range(2):
        assert main(["fig3", "--store", store_dir, "--seed", "1"]) == 0
    capsys.readouterr()
    assert main(["store", "diff", "fig3@0", "fig3@1",
                 "--store", store_dir]) == 0
    assert "IDENTICAL" in capsys.readouterr().out
    from repro.store import ResultStore

    store = ResultStore(store_dir)
    a, b = (e["record_id"] for e in store.index())
    assert a == b


class TestEmptyInitializedStore:
    """An empty-but-initialized store dir (e.g. a touched index.json) is
    "no records", not an error: friendly line, exit 0."""

    @staticmethod
    def _empty_store(tmp_path):
        store = tmp_path / "store"
        (store / "records").mkdir(parents=True)
        (store / "index.json").touch()  # zero bytes: initialized, empty
        return str(store)

    def test_store_list_empty_initialized(self, tmp_path, capsys):
        store = self._empty_store(tmp_path)
        assert main(["store", "list", "--store", store]) == 0
        assert "holds no recordings" in capsys.readouterr().out

    def test_trajectory_empty_initialized(self, tmp_path, capsys):
        store = self._empty_store(tmp_path)
        assert main(["trajectory", "--store", store]) == 0
        assert "holds no recordings" in capsys.readouterr().out

    def test_corrupt_index_still_one_line_error(self, tmp_path):
        store = tmp_path / "store"
        (store / "records").mkdir(parents=True)
        (store / "index.json").write_text("{this is not json")
        with pytest.raises(SystemExit, match="corrupt"):
            main(["store", "list", "--store", str(store)])


class TestServeSubmitParsers:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--state-dir", "/tmp/s"])
        assert args.policy == "fair" and args.port == 0
        assert args.jobs == 1 and not args.allow_chaos

    def test_serve_requires_state_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_submit_parser_builds_specs(self):
        from repro.cli import _build_submission

        args = build_parser().parse_args(
            ["submit", "SD", "SB", "--cycles", "24000", "--tenant", "a"]
        )
        kind, spec = _build_submission(args)
        assert kind == "workload"
        assert spec["apps"] == ["SD", "SB"] and spec["cycles"] == 24000

        args = build_parser().parse_args(
            ["submit", "--workloads", "SD+SB,NN+VA"]
        )
        kind, spec = _build_submission(args)
        assert kind == "sweep"
        assert spec["workloads"] == [["SD", "SB"], ["NN", "VA"]]

        args = build_parser().parse_args(["submit", "--scenario", "fig2"])
        kind, spec = _build_submission(args)
        assert kind == "scenario" and spec["name"] == "fig2"

        args = build_parser().parse_args(["submit", "--scenario", "ab12cd34"])
        kind, spec = _build_submission(args)
        assert kind == "scenario" and spec["id"] == "ab12cd34"

    def test_submit_requires_exactly_one_target(self):
        args = build_parser().parse_args(["submit"])
        from repro.cli import _build_submission

        with pytest.raises(SystemExit, match="exactly one"):
            _build_submission(args)
        args = build_parser().parse_args(
            ["submit", "SD", "--scenario", "fig2"]
        )
        with pytest.raises(SystemExit, match="exactly one"):
            _build_submission(args)
