"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "table3" in out


def test_table1(capsys):
    assert main(["table1", "--apps", "2"]) == 0
    out = capsys.readouterr().out
    assert "ATD" in out and "per partition" in out


def test_run_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["run", "NOPE"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig_parsers_accept_limit():
    args = build_parser().parse_args(["fig5", "--limit", "3"])
    assert args.limit == 3
    assert args.experiment == "fig5"


def test_fig_parsers_accept_jobs_and_cache_dir():
    args = build_parser().parse_args(
        ["fig5", "--limit", "2", "--jobs", "4", "--cache-dir", "/tmp/c"]
    )
    assert args.jobs == 4
    assert args.cache_dir == "/tmp/c"
    # default: inline execution, cache from $REPRO_CACHE_DIR only
    args = build_parser().parse_args(["fig9"])
    assert args.jobs is None and args.cache_dir is None


@pytest.mark.slow
def test_run_workload_end_to_end(capsys):
    rc = main(["run", "QR", "CT", "--cycles", "30000", "--models", "DASE"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "unfairness" in out
    assert "QR" in out and "CT" in out
    assert "DASE mean error" in out
