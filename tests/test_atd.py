"""Unit tests for the sampled auxiliary tag directory."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.atd import AuxTagDirectory


def test_contention_miss_detected():
    """Shared-miss + ATD-hit = contention miss."""
    atd = AuxTagDirectory(n_sets=8, assoc=2, sample_sets=8)
    assert atd.observe(0, tag=1, shared_hit=False) is False  # cold in both
    # Now the ATD holds tag 1; a shared miss on it is contention.
    assert atd.observe(0, tag=1, shared_hit=False) is True
    assert atd.sampled_contention_misses == 1


def test_no_contention_when_shared_hits():
    atd = AuxTagDirectory(n_sets=8, assoc=2, sample_sets=8)
    atd.observe(0, tag=1, shared_hit=False)
    assert atd.observe(0, tag=1, shared_hit=True) is False
    assert atd.sampled_contention_misses == 0


def test_cold_miss_not_contention():
    atd = AuxTagDirectory(n_sets=8, assoc=2, sample_sets=8)
    assert atd.observe(0, tag=5, shared_hit=False) is False


def test_atd_lru_matches_cache_policy():
    """A tag evicted from the ATD by the app's own accesses is a capacity
    miss, not a contention miss."""
    atd = AuxTagDirectory(n_sets=8, assoc=2, sample_sets=8)
    atd.observe(0, 1, shared_hit=False)
    atd.observe(0, 2, shared_hit=False)
    atd.observe(0, 3, shared_hit=False)  # evicts tag 1 from the ATD
    assert atd.observe(0, 1, shared_hit=False) is False  # own capacity miss


def test_unsampled_sets_ignored():
    atd = AuxTagDirectory(n_sets=64, assoc=2, sample_sets=8)
    unsampled = next(s for s in range(64) if not atd.is_sampled(s))
    atd.observe(unsampled, 1, shared_hit=False)
    atd.observe(unsampled, 1, shared_hit=False)
    assert atd.sampled_accesses == 0
    assert atd.sampled_contention_misses == 0


def test_scaling_by_sample_fraction():
    atd = AuxTagDirectory(n_sets=64, assoc=2, sample_sets=8)
    assert atd.sample_fraction == pytest.approx(8 / 64)
    sampled = next(s for s in range(64) if atd.is_sampled(s))
    atd.observe(sampled, 1, shared_hit=False)
    atd.observe(sampled, 1, shared_hit=False)  # contention
    assert atd.estimated_contention_misses() == pytest.approx(8.0)


def test_reset_counters_keeps_tag_state():
    atd = AuxTagDirectory(n_sets=8, assoc=2, sample_sets=8)
    atd.observe(0, 1, shared_hit=False)
    atd.reset_counters()
    assert atd.sampled_contention_misses == 0
    # Tag state persisted: next shared miss on tag 1 is still contention.
    assert atd.observe(0, 1, shared_hit=False) is True


def test_sample_sets_capped_at_n_sets():
    atd = AuxTagDirectory(n_sets=4, assoc=2, sample_sets=100)
    assert atd.sample_fraction == 1.0


def test_zero_sample_sets_rejected():
    with pytest.raises(ValueError):
        AuxTagDirectory(n_sets=8, assoc=2, sample_sets=0)


@given(st.lists(st.integers(0, 5), min_size=1, max_size=200))
def test_property_fully_sampled_atd_counts_exactly_shared_misses_that_would_hit(tags):
    """With 100% sampling and an identical cache running alongside, the ATD
    flags exactly the accesses where a private cache would hit but the
    shared outcome was a miss (here: shared always misses)."""
    from repro.config import CacheConfig
    from repro.sim.cache import SetAssocCache

    atd = AuxTagDirectory(n_sets=4, assoc=2, sample_sets=4)
    private = SetAssocCache(CacheConfig(size_bytes=4 * 2 * 128, assoc=2))
    expected = 0
    for t in tags:
        would_hit = private.access(t % 4, t, app=0)
        got = atd.observe(t % 4, t, shared_hit=False)
        if would_hit:
            expected += 1
        assert got == would_hit
    assert atd.sampled_contention_misses == expected
