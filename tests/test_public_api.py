"""The public API surface must stay importable and complete."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.config",
        "repro.metrics",
        "repro.hwcost",
        "repro.cli",
        "repro.sim",
        "repro.sim.engine",
        "repro.sim.address",
        "repro.sim.kernel",
        "repro.sim.sm",
        "repro.sim.cache",
        "repro.sim.atd",
        "repro.sim.dram",
        "repro.sim.gpu",
        "repro.sim.stats",
        "repro.core",
        "repro.core.base",
        "repro.core.classify",
        "repro.core.dase",
        "repro.core.mise",
        "repro.core.asm",
        "repro.core.sampling",
        "repro.policies",
        "repro.policies.sm_alloc",
        "repro.policies.qos",
        "repro.policies.profiled",
        "repro.policies.temporal",
        "repro.workloads",
        "repro.workloads.suite",
        "repro.workloads.generator",
        "repro.harness",
        "repro.harness.runner",
        "repro.harness.experiments",
        "repro.harness.figures",
        "repro.harness.report",
        "repro.obs.bus",
        "repro.service",
        "repro.service.protocol",
        "repro.service.queue",
        "repro.service.daemon",
        "repro.service.client",
        "repro.store",
        "repro.store.records",
        "repro.store.registry",
        "repro.store.trajectory",
    ],
)
def test_module_imports_and_has_docstring(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} lacks a module docstring"


def test_subpackage_all_exports_resolve():
    for pkg_name in ("repro.sim", "repro.core", "repro.policies",
                     "repro.workloads", "repro.harness", "repro.store"):
        pkg = importlib.import_module(pkg_name)
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{pkg_name}.{name}"


def test_public_classes_documented():
    """Every public class and function in __all__ carries a docstring."""
    for pkg_name in ("repro", "repro.sim", "repro.core", "repro.policies",
                     "repro.workloads", "repro.harness"):
        pkg = importlib.import_module(pkg_name)
        for name in pkg.__all__:
            obj = getattr(pkg, name)
            if callable(obj):
                assert obj.__doc__, f"{pkg_name}.{name} lacks a docstring"
