"""Tests for the MISE/ASM priority-epoch rotator."""

import pytest

from repro.config import GPUConfig
from repro.core.sampling import PriorityRotator, RateAccumulators
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec


def make_gpu(epoch=1000, interval=10_000, gap_ratio=1):
    cfg = GPUConfig(interval_cycles=interval)
    specs = [
        KernelSpec("a", compute_per_mem=5, warps_per_block=4),
        KernelSpec("b", compute_per_mem=5, warps_per_block=4),
    ]
    gpu = GPU(cfg, specs)
    rot = PriorityRotator(cfg, epoch_cycles=epoch, gap_ratio=gap_ratio)
    rot.attach(gpu)
    return gpu, rot


class TestRotation:
    def test_initial_phase_prioritizes_app0(self):
        gpu, rot = make_gpu()
        assert gpu.partitions[0].priority_app == 0

    def test_phases_alternate_priority_and_none(self):
        gpu, rot = make_gpu(epoch=1000)
        seq = []
        for _ in range(6):
            seq.append(gpu.partitions[0].priority_app)
            gpu.run(1000)
        assert seq == [0, None, 1, None, 0, None]

    def test_accumulators_fill_both_kinds(self):
        gpu, rot = make_gpu(epoch=500)
        gpu.run(20_000)
        acc = rot.acc
        for i in range(2):
            assert acc.prio_time[i] > 0
            assert acc.shared_time[i] > 0
            assert acc.prio_requests[i] > 0
            assert acc.shared_requests[i] > 0

    def test_priority_epochs_split_evenly(self):
        gpu, rot = make_gpu(epoch=500)
        gpu.run(20_000)
        assert rot.acc.prio_time[0] == pytest.approx(rot.acc.prio_time[1], rel=0.3)

    def test_shared_time_half_of_total(self):
        """Odd phases are no-priority gaps: half the epochs."""
        gpu, rot = make_gpu(epoch=500)
        gpu.run(20_000)
        total_shared = rot.acc.shared_time[0]
        assert total_shared == pytest.approx(20_000 / 2, rel=0.15)

    def test_double_attach_rejected(self):
        gpu, rot = make_gpu()
        with pytest.raises(RuntimeError):
            rot.attach(gpu)

    def test_default_epoch_from_interval(self):
        cfg = GPUConfig(interval_cycles=50_000)
        rot = PriorityRotator(cfg)
        assert rot.epoch_cycles == 2500

    def test_gap_ratio_lengthens_no_priority_phases(self):
        gpu, rot = make_gpu(epoch=500, gap_ratio=3)
        gpu.run(20_000)
        acc = rot.acc
        total_prio = acc.prio_time[0] + acc.prio_time[1]
        total_shared = acc.shared_time[0]
        assert total_shared > total_prio * 2

    def test_bad_gap_ratio_rejected(self):
        with pytest.raises(ValueError):
            PriorityRotator(GPUConfig(), gap_ratio=0)


class TestAccumulators:
    def test_snapshot_delta_roundtrip(self):
        a = RateAccumulators.zeros(2)
        snap = a.snapshot()
        a.prio_requests[0] += 10
        a.shared_time[1] += 5
        d = a.snapshot().delta(snap)
        assert d.prio_requests == [10, 0]
        assert d.shared_time == [0, 5]

    def test_snapshot_is_independent_copy(self):
        a = RateAccumulators.zeros(1)
        snap = a.snapshot()
        a.prio_time[0] = 99
        assert snap.prio_time[0] == 0


class TestPriorityEffect:
    def test_priority_app_gets_better_service_under_saturation(self):
        """When the DRAM is saturated, the prioritized app's service rate
        during its epochs beats its no-priority rate."""
        cfg = GPUConfig(interval_cycles=30_000)
        flood = KernelSpec("f", compute_per_mem=0, warps_per_block=6)
        victim = KernelSpec("v", compute_per_mem=2, warps_per_block=6)
        gpu = GPU(cfg, [victim, flood])
        rot = PriorityRotator(cfg, epoch_cycles=1500)
        rot.attach(gpu)
        gpu.run(60_000)
        acc = rot.acc
        arsr = acc.prio_requests[0] / acc.prio_time[0]
        srsr = acc.shared_requests[0] / acc.shared_time[0]
        assert arsr > srsr * 1.1
