"""Tests for the per-SM L1 data cache and store traffic."""

import pytest

from repro.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.kernel import AccessPattern, KernelSpec


def cfg(**over):
    over.setdefault("n_sms", 1)
    over.setdefault("interval_cycles", 50_000)
    return GPUConfig(**over)


class TestL1:
    def test_hot_set_within_l1_hits(self):
        """A tiny hot set (≤ 128 lines) lives in the 16 KB L1."""
        spec = KernelSpec(
            "h", compute_per_mem=5, warps_per_block=4, reuse_fraction=1.0,
            hot_set_lines=64,
        )
        gpu = GPU(cfg(), [spec])
        gpu.run(20_000)
        c = gpu.sm_counters[0]
        hit_rate = c.l1_hits / (c.l1_hits + c.l1_misses)
        assert hit_rate > 0.8
        # And those hits never reach the shared L2.
        m = gpu.mem_stats.apps[0]
        assert m.l2_hits + m.l2_misses < c.l1_hits

    def test_streaming_never_hits_l1(self):
        spec = KernelSpec("s", compute_per_mem=5, warps_per_block=4)
        gpu = GPU(cfg(), [spec])
        gpu.run(20_000)
        c = gpu.sm_counters[0]
        assert c.l1_hits == 0
        assert c.l1_misses > 0

    def test_l1_disabled_config(self):
        spec = KernelSpec(
            "h", compute_per_mem=5, warps_per_block=4, reuse_fraction=1.0,
            hot_set_lines=64,
        )
        gpu = GPU(cfg(l1_enabled=False), [spec])
        gpu.run(20_000)
        c = gpu.sm_counters[0]
        assert c.l1_hits == 0 and c.l1_misses == 0
        assert gpu.sms[0].l1 is None
        # Hot-set reuse now shows up at the shared L2 instead.
        assert gpu.mem_stats.apps[0].l2_hits > 0

    def test_l1_hit_faster_than_l2_path(self):
        """All-L1-hit kernels run at near-peak IPC despite low TLP."""
        hot = KernelSpec(
            "h", compute_per_mem=10, warps_per_block=4, reuse_fraction=1.0,
            hot_set_lines=32, max_resident_blocks=2,
        )
        gpu = GPU(cfg(), [hot])
        gpu.run(20_000)
        assert gpu.sm_counters[0].alpha < 0.2

    def test_l1_flushed_on_ownership_change(self):
        spec_a = KernelSpec(
            "a", compute_per_mem=5, warps_per_block=4, insts_per_warp=40,
        )
        spec_b = KernelSpec("b", compute_per_mem=5, warps_per_block=4)
        gpu = GPU(cfg(n_sms=2), [spec_a, spec_b], sm_partition=[1, 1])
        gpu.run(1_000)
        sm = gpu.sms[0]
        assert sum(sm.l1.occupancy_by_app().values()) > 0
        gpu.migrate_sms(0, 1, 99)  # clamps to keep one SM — drain nothing
        # Drain SM 0 manually and reassign.
        done = []
        sm.start_draining(done.append)
        gpu.run(200_000)
        assert done
        sm.assign_app(1)
        assert sum(sm.l1.occupancy_by_app().values()) == 0


class TestStores:
    def test_pure_store_kernel_never_stalls_long(self):
        spec = KernelSpec(
            "w", compute_per_mem=5, warps_per_block=4, store_fraction=1.0,
        )
        gpu = GPU(cfg(), [spec])
        gpu.run(30_000)
        # Stores are fire-and-forget: the warp waits only l1_latency.
        assert gpu.sm_counters[0].alpha < 0.1
        # Yet the memory system sees the traffic.
        assert gpu.mem_stats.apps[0].requests_served > 0

    def test_store_traffic_counted_in_bandwidth(self):
        load = KernelSpec("l", compute_per_mem=20, warps_per_block=4)
        store = KernelSpec(
            "s", compute_per_mem=20, warps_per_block=4, store_fraction=1.0,
        )
        bw = {}
        for name, spec in (("load", load), ("store", store)):
            gpu = GPU(cfg(), [spec])
            gpu.run(30_000)
            bw[name] = gpu.bandwidth_utilization(0)
        # Store kernels push at least as much bandwidth (no stall throttle).
        assert bw["store"] >= bw["load"] * 0.8

    def test_mixed_store_fraction(self):
        spec = KernelSpec(
            "m", compute_per_mem=5, warps_per_block=4, store_fraction=0.5,
        )
        gpu = GPU(cfg(), [spec])
        gpu.run(20_000)
        assert gpu.mem_stats.apps[0].requests_served > 0

    def test_bad_store_fraction_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("x", compute_per_mem=1, store_fraction=1.5)

    def test_next_mem_access_tags_stores(self):
        from repro.sim.kernel import WarpStream

        spec = KernelSpec("x", compute_per_mem=1, store_fraction=1.0)
        s = WarpStream(spec, 0, 0, 0, 1, 128)
        s.next_compute_burst()
        addrs, is_store = s.next_mem_access()
        assert is_store and addrs

    def test_loads_by_default(self):
        from repro.sim.kernel import WarpStream

        spec = KernelSpec("x", compute_per_mem=1)
        s = WarpStream(spec, 0, 0, 0, 1, 128)
        s.next_compute_burst()
        _, is_store = s.next_mem_access()
        assert not is_store
