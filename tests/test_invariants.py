"""Property-based invariants of the whole simulator.

Hypothesis generates random kernel mixes and partitionings; every run must
satisfy conservation and accounting laws regardless of the workload.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.kernel import AccessPattern, KernelSpec

CFG = GPUConfig(n_sms=4, n_partitions=2, interval_cycles=4_000)


kernel_strategy = st.builds(
    KernelSpec,
    name=st.just("k"),
    compute_per_mem=st.integers(min_value=0, max_value=60),
    pattern=st.sampled_from(list(AccessPattern)),
    warps_per_block=st.integers(min_value=1, max_value=8),
    insts_per_warp=st.integers(min_value=10, max_value=500),
    reuse_fraction=st.floats(min_value=0.0, max_value=0.9),
    hot_set_lines=st.integers(min_value=8, max_value=2048),
    working_set_lines=st.integers(min_value=64, max_value=1 << 14),
    accesses_per_mem_inst=st.integers(min_value=1, max_value=3),
    max_resident_blocks=st.one_of(st.none(), st.integers(1, 4)),
)


def run_random_gpu(kernels, cycles=8_000):
    gpu = GPU(CFG, kernels)
    gpu.run(cycles)
    return gpu


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(kernel_strategy, min_size=1, max_size=3))
def test_property_conservation_laws(kernels):
    gpu = run_random_gpu(kernels)
    now = gpu.engine.now
    for app in range(gpu.n_apps):
        m = gpu.mem_stats.apps[app]
        # L2 accesses split exactly into hits and misses.
        assert m.l2_hits >= 0 and m.l2_misses >= 0
        # Misses are conserved as served + outstanding DRAM requests.
        assert m.l2_misses == m.requests_served + gpu.mem_stats.outstanding(app)
        # Row hits + row misses = requests scheduled into banks.
        assert m.row_hits + m.row_misses >= m.requests_served
        # Extra row-buffer misses are a subset of row misses.
        assert m.erb_miss <= m.row_misses
        # Data-bus occupancy: burst × requests dispatched so far, which is
        # bounded by served (complete) and served + in-flight.
        burst = CFG.time_per_request
        in_flight = gpu.mem_stats.outstanding(app)
        assert m.requests_served * burst <= m.data_bus_time
        assert m.data_bus_time <= (m.requests_served + in_flight) * burst
        # Time integrals are bounded by elapsed time × structural capacity.
        assert m.outstanding_time <= now + 1e-6
        assert m.executing_bank_integral <= (
            now * CFG.n_partitions * CFG.n_banks + 1e-6
        )
        assert m.demanded_bank_integral >= m.executing_bank_integral - 1e-6


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(kernel_strategy, min_size=1, max_size=3))
def test_property_sm_time_accounting(kernels):
    gpu = run_random_gpu(kernels)
    now = gpu.engine.now
    counts = gpu.sm_counts()
    for app in range(gpu.n_apps):
        c = gpu.sm_counters[app]
        # busy + stall never exceeds wall time × owned SMs.
        assert c.busy_time + c.stall_time <= c.sm_time + 1e-6
        assert c.sm_time <= now * CFG.n_sms + 1e-6
        assert 0.0 <= c.alpha <= 1.0
        # Issued instructions bounded by busy issue slots.
        assert c.instructions <= c.busy_time * CFG.issue_width + CFG.n_sms * 200


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    st.lists(kernel_strategy, min_size=2, max_size=2),
    st.integers(min_value=1, max_value=3),
)
def test_property_partition_ownership_is_total(kernels, first_share):
    gpu = GPU(CFG, kernels, sm_partition=[first_share, CFG.n_sms - first_share])
    gpu.run(6_000)
    owned = [sm.app for sm in gpu.sms]
    assert all(o in (0, 1) for o in owned)
    assert sum(1 for o in owned if o == 0) == first_share


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(kernel_strategy, min_size=1, max_size=2), st.integers(0, 2**16))
def test_property_determinism_across_replays(kernels, seed):
    import dataclasses

    cfg = dataclasses.replace(CFG, seed=seed)
    outcomes = []
    for _ in range(2):
        gpu = GPU(cfg, kernels)
        gpu.run(6_000)
        outcomes.append(
            (
                tuple(p.instructions for p in gpu.progress),
                tuple(a.requests_served for a in gpu.mem_stats.apps),
                tuple(a.row_hits for a in gpu.mem_stats.apps),
            )
        )
    assert outcomes[0] == outcomes[1]


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(kernel_strategy, min_size=2, max_size=3))
def test_property_interval_records_partition_time(kernels):
    gpu = run_random_gpu(kernels, cycles=12_000)
    assert len(gpu.interval_history) == 3
    for row in gpu.interval_history:
        for rec in row:
            assert rec.cycles == 4_000
            assert rec.tb_running >= 0
            assert rec.tb_unfinished >= rec.tb_running or rec.tb_unfinished >= 0
            assert rec.ellc_miss >= 0.0
