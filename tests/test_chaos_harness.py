"""Chaos tests for the hardened sweep harness.

Misbehaving workers — raising, dying without unwinding, hanging past the
per-job timeout, returning results whose pickle explodes at the parent —
must never abort a sweep: ``run_jobs`` returns ordered
:class:`JobOutcome` objects with per-job failure classification and retry
accounting while healthy sibling jobs complete normally.  The same layer
covers the replay cache's quarantine-and-recompute path and
partial-sweep checkpoint resume.

Pooled chaos tests use ``retries >= 2`` deliberately: when a worker dies
without unwinding, the pool cannot say *which* concurrent job killed it,
so every started-but-unfinished job in that generation may be charged an
attempt (see the blame rules in ``repro/harness/parallel.py``).
"""

import json
import os
import time

import pytest

from repro.faults import (
    MODE_BAD_RESULT,
    MODE_EXIT,
    MODE_FLAKY,
    MODE_HANG,
    MODE_RAISE,
    ChaosJob,
)
from repro.harness import scaled_config
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.parallel import (
    FAIL_CRASH,
    FAIL_EXCEPTION,
    FAIL_TIMEOUT,
    FAIL_TRANSPORT,
    WorkloadJob,
    run_jobs,
    set_sweep_defaults,
    sweep_defaults,
)
from repro.harness.replay_cache import (
    TMP_SWEEP_AGE_S,
    AloneReplayCache,
    entry_checksum,
)
from repro.workloads import SUITE

CFG = scaled_config()
SMALL = 30_000


def ok_jobs(n, **kw):
    return [ChaosJob(name=f"ok{i}", payload=100 + i, **kw) for i in range(n)]


# ------------------------------------------------------------------- inline


class TestInlineChaos:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosJob(name="x", mode="maybe")
        with pytest.raises(ValueError, match="requires state_dir"):
            ChaosJob(name="x", mode=MODE_FLAKY)

    def test_generic_job_dispatch(self):
        (out,) = run_jobs([ChaosJob(name="solo", payload=42)], n_jobs=1)
        assert out.ok and out.result["payload"] == 42
        assert out.attempts == 1 and out.failure_kind is None

    def test_raise_captured_with_retry_accounting(self):
        jobs = [ChaosJob(name="boom", mode=MODE_RAISE), *ok_jobs(2)]
        outs = run_jobs(jobs, n_jobs=1, retries=2, backoff_s=0.0)
        assert [o.index for o in outs] == [0, 1, 2]
        assert not outs[0].ok
        assert outs[0].failure_kind == FAIL_EXCEPTION
        assert outs[0].attempts == 3  # first try + 2 retries
        assert "chaos raise from boom" in outs[0].error
        assert outs[1].ok and outs[1].result["payload"] == 100
        assert outs[2].ok and outs[2].result["payload"] == 101

    def test_ambient_sweep_defaults(self):
        before = sweep_defaults()
        try:
            set_sweep_defaults(retries=2, backoff_s=0.0)
            assert sweep_defaults()["retries"] == 2
            # run_jobs picks the ambient retries up when passed None
            (out,) = run_jobs([ChaosJob(name="x", mode=MODE_RAISE)], n_jobs=1)
            assert out.attempts == 3
            with pytest.raises(ValueError, match="retries"):
                set_sweep_defaults(retries=-1)
        finally:
            set_sweep_defaults(**before)
        assert sweep_defaults() == before


# ------------------------------------------------------------------- pooled


@pytest.mark.slow
class TestPooledChaos:
    def test_hard_exit_blamed_with_stderr_tail(self):
        jobs = [ChaosJob(name="dead", mode=MODE_EXIT), *ok_jobs(3)]
        outs = run_jobs(jobs, n_jobs=2, retries=2, backoff_s=0.0)
        assert [o.index for o in outs] == [0, 1, 2, 3]
        dead = outs[0]
        assert not dead.ok
        assert dead.failure_kind == FAIL_CRASH
        assert dead.attempts == 3
        assert "died without unwinding" in dead.error
        assert dead.stderr_tail and "exiting hard" in dead.stderr_tail
        for o, payload in zip(outs[1:], (100, 101, 102)):
            assert o.ok and o.result["payload"] == payload

    def test_timeout_kills_hung_worker(self):
        jobs = [ChaosJob(name="zzz", mode=MODE_HANG, hang_s=120.0),
                *ok_jobs(2)]
        t0 = time.time()
        outs = run_jobs(jobs, n_jobs=2, timeout_s=1.5, retries=0,
                        backoff_s=0.0)
        assert time.time() - t0 < 60  # did not wait out the 120 s sleep
        hung = outs[0]
        assert not hung.ok and hung.failure_kind == FAIL_TIMEOUT
        assert "timeout" in hung.error
        # siblings of a timeout kill are explained victims: no attempt tax
        assert outs[1].ok and outs[2].ok
        assert outs[1].attempts == 1 or outs[1].resumed is False

    def test_bad_result_classified_as_transport(self):
        jobs = [ChaosJob(name="poison", mode=MODE_BAD_RESULT), *ok_jobs(2)]
        outs = run_jobs(jobs, n_jobs=2, retries=0, backoff_s=0.0)
        poison = outs[0]
        assert not poison.ok and poison.failure_kind == FAIL_TRANSPORT
        assert "result was lost" in poison.error
        assert outs[1].ok and outs[2].ok

    def test_flaky_job_succeeds_on_retry(self, tmp_path):
        jobs = [
            ChaosJob(name="shaky", mode=MODE_FLAKY, flaky_failures=1,
                     state_dir=str(tmp_path), payload=7),
            *ok_jobs(2),
        ]
        outs = run_jobs(jobs, n_jobs=2, retries=3, backoff_s=0.0)
        shaky = outs[0]
        assert shaky.ok, shaky.error
        assert shaky.result["payload"] == 7
        # The disk counter is the ground truth that a retry ran: harness
        # `attempts` may stay 1 when the crashed execution was classified
        # an innocent victim of an explained pool break (e.g. a sibling's
        # finished result was lost in the same teardown).
        assert shaky.result["attempt"] >= 2
        assert outs[1].ok and outs[2].ok

    def test_mixed_chaos_sweep_never_aborts(self, tmp_path):
        """The kitchen sink: every misbehaviour at once, healthy jobs and
        per-job accounting intact."""
        jobs = [
            ChaosJob(name="a-ok", payload=1),
            ChaosJob(name="boom", mode=MODE_RAISE),
            ChaosJob(name="dead", mode=MODE_EXIT),
            ChaosJob(name="shaky", mode=MODE_FLAKY, flaky_failures=1,
                     state_dir=str(tmp_path), payload=4),
            ChaosJob(name="z-ok", payload=5),
        ]
        outs = run_jobs(jobs, n_jobs=2, retries=3, backoff_s=0.0)
        assert [o.index for o in outs] == [0, 1, 2, 3, 4]
        assert outs[0].ok and outs[0].result["payload"] == 1
        assert not outs[1].ok and outs[1].failure_kind == FAIL_EXCEPTION
        assert not outs[2].ok and outs[2].failure_kind == FAIL_CRASH
        assert outs[3].ok and outs[3].result["payload"] == 4
        assert outs[4].ok and outs[4].result["payload"] == 5

    def test_retried_workload_matches_clean_run(self, tmp_path):
        """A real workload that shares a generation with a crasher still
        produces the exact same result a clean sweep produces."""
        wl = WorkloadJob(apps=("QR", "CT"), config=CFG,
                         shared_cycles=SMALL, models=())
        clean = run_jobs([wl], n_jobs=1)[0].unwrap()
        outs = run_jobs(
            [ChaosJob(name="dead", mode=MODE_EXIT), wl],
            n_jobs=2, retries=2, backoff_s=0.0,
        )
        assert not outs[0].ok
        assert outs[1].unwrap().to_dict() == clean.to_dict()


# ---------------------------------------------------- replay-cache hardening


class TestReplayCacheHardening:
    def _store(self, tmp_path):
        cache = AloneReplayCache(tmp_path)
        cache.put(SUITE["QR"], 0, CFG, 1000, 777)
        return cache, tmp_path / f"{cache.key(SUITE['QR'], 0, CFG, 1000)}.json"

    def test_truncated_entry_quarantined_and_recomputed(self, tmp_path):
        _, path = self._store(tmp_path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        fresh = AloneReplayCache(tmp_path)
        assert fresh.get(SUITE["QR"], 0, CFG, 1000) is None
        assert fresh.quarantined == 1
        assert not path.exists()
        assert (tmp_path / "quarantine" / path.name).exists()
        # the recompute path: a new put restores a good entry
        fresh.put(SUITE["QR"], 0, CFG, 1000, 777)
        assert AloneReplayCache(tmp_path).get(SUITE["QR"], 0, CFG, 1000) == 777

    def test_bit_flip_inside_valid_json_quarantined(self, tmp_path):
        _, path = self._store(tmp_path)
        entry = json.loads(path.read_text())
        entry["alone_cycles"] = 778  # flipped bit, checksum now stale
        path.write_text(json.dumps(entry))
        fresh = AloneReplayCache(tmp_path)
        assert fresh.get(SUITE["QR"], 0, CFG, 1000) is None
        assert fresh.quarantined == 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_legacy_entry_without_checksum_not_trusted(self, tmp_path):
        _, path = self._store(tmp_path)
        entry = json.loads(path.read_text())
        del entry["checksum"]
        path.write_text(json.dumps(entry))
        fresh = AloneReplayCache(tmp_path)
        assert fresh.get(SUITE["QR"], 0, CFG, 1000) is None
        assert fresh.quarantined == 1

    def test_checksum_covers_every_field(self, tmp_path):
        _, path = self._store(tmp_path)
        entry = json.loads(path.read_text())
        body = {k: v for k, v in entry.items() if k != "checksum"}
        assert entry["checksum"] == entry_checksum(body)
        body["instructions"] += 1
        assert entry["checksum"] != entry_checksum(body)

    def test_quarantined_entries_not_counted_as_present(self, tmp_path):
        cache, path = self._store(tmp_path)
        assert len(cache) == 1
        path.write_text("garbage")
        fresh = AloneReplayCache(tmp_path)
        fresh.get(SUITE["QR"], 0, CFG, 1000)
        assert len(fresh) == 0  # quarantine/ is not part of the cache

    def test_orphan_tmp_files_swept_by_age(self, tmp_path):
        stale = tmp_path / ".deadbeef.json.abc.tmp"
        stale.write_text("{")
        old = time.time() - TMP_SWEEP_AGE_S - 10
        os.utime(stale, (old, old))
        young = tmp_path / ".cafe.json.def.tmp"
        young.write_text("{")
        cache = AloneReplayCache(tmp_path)
        assert cache.tmp_swept == 1
        assert not stale.exists()
        assert young.exists()  # may be a concurrent writer's in-flight file

    @pytest.mark.slow
    def test_corrupt_cache_recovered_end_to_end(self, tmp_path):
        """A sweep over a damaged cache recomputes and heals, producing
        the same result as an uncached run."""
        from repro.harness.parallel import run_workloads

        clean = run_workloads(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL, models=(),
        )[0].unwrap()
        warm = run_workloads(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL, models=(),
            cache_dir=str(tmp_path),
        )[0].unwrap()
        for entry in tmp_path.glob("*.json"):
            entry.write_text(entry.read_text()[:20])  # truncate every entry
        healed = run_workloads(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL, models=(),
            cache_dir=str(tmp_path),
        )[0]
        assert healed.ok
        assert healed.unwrap().to_dict() == clean.to_dict() == warm.to_dict()
        assert len(list((tmp_path / "quarantine").glob("*.json"))) == 2
        # cache healed in place: entries verify again
        again = AloneReplayCache(tmp_path)
        assert len(again) == 2


# ------------------------------------------------------- checkpoint resume


@pytest.mark.slow
class TestCheckpointResume:
    def _jobs(self):
        return [
            WorkloadJob(apps=("QR", "CT"), config=CFG,
                        shared_cycles=SMALL, models=()),
            WorkloadJob(apps=("NN", "VA"), config=CFG,
                        shared_cycles=SMALL, models=()),
        ]

    def test_resume_skips_completed_jobs(self, tmp_path):
        jobs = self._jobs()
        first = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        assert all(o.ok and not o.resumed for o in first)
        t0 = time.perf_counter()
        second = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        assert time.perf_counter() - t0 < 0.5  # no simulation happened
        assert all(o.ok and o.resumed for o in second)
        for a, b in zip(first, second):
            assert a.unwrap().to_dict() == b.unwrap().to_dict()

    def test_interrupted_sweep_resumes_partial(self, tmp_path):
        """Dropping the checkpoint's last line (the interruption case the
        file format is designed for) recomputes only that job."""
        jobs = self._jobs()
        run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        cp = SweepCheckpoint(tmp_path, jobs)
        lines = cp.path.read_text().splitlines()
        assert len(lines) == 2
        cp.path.write_text(lines[0] + "\n")
        outs = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        assert outs[0].resumed and not outs[1].resumed
        assert outs[0].ok and outs[1].ok
        # the recomputed job was re-appended: a third run resumes both
        outs = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        assert all(o.resumed for o in outs)

    def test_torn_line_skipped_not_fatal(self, tmp_path):
        jobs = self._jobs()
        run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        cp = SweepCheckpoint(tmp_path, jobs)
        text = cp.path.read_text()
        cp.path.write_text(text[: len(text) - 40])  # tear the final line
        assert len(cp.load()) == 1
        assert cp.skipped_lines == 1
        outs = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        assert all(o.ok for o in outs)
        assert outs[0].resumed and not outs[1].resumed

    def test_different_sweep_gets_different_checkpoint(self, tmp_path):
        jobs = self._jobs()
        run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        reordered = list(reversed(jobs))
        outs = run_jobs(reordered, n_jobs=1, checkpoint=tmp_path)
        # same jobs, different order → different identity, nothing resumed
        assert not any(o.resumed for o in outs)
        assert len(list(tmp_path.glob("sweep-*.jsonl"))) == 2

    def test_foreign_results_never_resurrected(self, tmp_path):
        jobs = self._jobs()
        run_jobs(jobs, n_jobs=1, checkpoint=tmp_path)
        # same sweep shape but different cycle budget → different fingerprints
        longer = [
            WorkloadJob(apps=j.apps, config=CFG,
                        shared_cycles=SMALL + 1000, models=())
            for j in jobs
        ]
        cp = SweepCheckpoint(tmp_path, longer)
        assert cp.load() == {}

    def test_pooled_resume_matches_inline(self, tmp_path):
        jobs = self._jobs()
        inline = run_jobs(jobs, n_jobs=1, checkpoint=tmp_path / "a")
        pooled = run_jobs(jobs, n_jobs=2, checkpoint=tmp_path / "b")
        for a, b in zip(inline, pooled):
            assert a.unwrap().to_dict() == b.unwrap().to_dict()
        resumed = run_jobs(jobs, n_jobs=2, checkpoint=tmp_path / "a")
        assert all(o.resumed for o in resumed)
        for a, b in zip(inline, resumed):
            assert a.unwrap().to_dict() == b.unwrap().to_dict()
