"""Tests for the process-pool sweep runner and the alone-replay cache."""

import pytest

from repro.config import GPUConfig
from repro.harness import scaled_config
from repro.harness.parallel import (
    WorkloadJob,
    execute_job,
    run_jobs,
    run_workloads,
)
from repro.harness.replay_cache import (
    AloneReplayCache,
    config_fingerprint,
    resolve_cache,
    spec_fingerprint,
)
from repro.workloads import SUITE

CFG = scaled_config()
SMALL = 30_000


class TestFingerprints:
    def test_spec_fingerprint_stable(self):
        a = spec_fingerprint(SUITE["QR"], 0)
        assert a == spec_fingerprint(SUITE["QR"], 0)

    def test_spec_fingerprint_depends_on_stream(self):
        assert spec_fingerprint(SUITE["QR"], 0) != spec_fingerprint(SUITE["QR"], 1)

    def test_spec_fingerprint_depends_on_spec(self):
        assert spec_fingerprint(SUITE["QR"], 0) != spec_fingerprint(SUITE["CT"], 0)

    def test_config_fingerprint_depends_on_fields(self):
        assert config_fingerprint(GPUConfig()) != config_fingerprint(
            GPUConfig(n_sms=8)
        )
        assert config_fingerprint(GPUConfig()) != config_fingerprint(
            GPUConfig(seed=999)
        )

    def test_config_fingerprint_stable(self):
        assert config_fingerprint(GPUConfig()) == config_fingerprint(GPUConfig())


class TestAloneReplayCache:
    def test_miss_then_hit(self, tmp_path):
        cache = AloneReplayCache(tmp_path)
        spec = SUITE["QR"]
        assert cache.get(spec, 0, CFG, 1000) is None
        cache.put(spec, 0, CFG, 1000, 777)
        assert cache.get(spec, 0, CFG, 1000) == 777
        assert cache.misses == 1 and cache.hits == 1 and cache.stores == 1

    def test_persists_across_instances(self, tmp_path):
        AloneReplayCache(tmp_path).put(SUITE["QR"], 0, CFG, 1000, 777)
        fresh = AloneReplayCache(tmp_path)
        assert fresh.get(SUITE["QR"], 0, CFG, 1000) == 777
        assert len(fresh) == 1

    def test_key_separates_instruction_counts(self, tmp_path):
        cache = AloneReplayCache(tmp_path)
        cache.put(SUITE["QR"], 0, CFG, 1000, 111)
        cache.put(SUITE["QR"], 0, CFG, 2000, 222)
        assert cache.get(SUITE["QR"], 0, CFG, 1000) == 111
        assert cache.get(SUITE["QR"], 0, CFG, 2000) == 222

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = AloneReplayCache(tmp_path)
        key = cache.key(SUITE["QR"], 0, CFG, 1000)
        (tmp_path / f"{key}.json").write_text("not json {")
        assert cache.get(SUITE["QR"], 0, CFG, 1000) is None

    def test_rejects_non_directory(self, tmp_path):
        f = tmp_path / "afile"
        f.write_text("x")
        with pytest.raises(ValueError, match="not a directory"):
            AloneReplayCache(f)
        with pytest.raises(ValueError, match="not a directory"):
            run_workloads([("QR", "CT")], cache_dir=str(f))

    def test_resolve_cache(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None) is None
        assert resolve_cache(tmp_path).directory == tmp_path
        inst = AloneReplayCache(tmp_path)
        assert resolve_cache(inst) is inst
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache(None).directory == tmp_path / "env"


class TestJobExecution:
    def test_inline_matches_pool_ordering(self):
        jobs = [
            WorkloadJob(apps=("QR", "CT"), config=CFG,
                        shared_cycles=SMALL, models=()),
            WorkloadJob(apps=("NN", "VA"), config=CFG,
                        shared_cycles=SMALL, models=()),
        ]
        outcomes = run_jobs(jobs, n_jobs=1)
        assert [o.index for o in outcomes] == [0, 1]
        assert outcomes[0].unwrap().names == ["QR", "CT"]
        assert outcomes[1].unwrap().names == ["NN", "VA"]

    def test_failure_captured_not_raised(self):
        jobs = [
            WorkloadJob(apps=("QR", "NOPE"), config=CFG, shared_cycles=SMALL),
            WorkloadJob(apps=("QR", "CT"), config=CFG,
                        shared_cycles=SMALL, models=()),
        ]
        outcomes = run_jobs(jobs, n_jobs=1)
        assert not outcomes[0].ok and "NOPE" in outcomes[0].error
        assert outcomes[1].ok  # the sweep continued past the failure
        with pytest.raises(RuntimeError, match="QR\\+NOPE"):
            outcomes[0].unwrap()

    def test_unknown_policy_rejected(self):
        job = WorkloadJob(apps=("QR", "CT"), config=CFG,
                          shared_cycles=SMALL, models=(), policy="bogus")
        with pytest.raises(ValueError, match="unknown policy"):
            execute_job(job)

    def test_run_workloads_uses_cache_dir(self, tmp_path):
        out1 = run_workloads(
            [("QR", "CT")], config=CFG, shared_cycles=SMALL,
            models=(), cache_dir=str(tmp_path),
        )
        assert out1[0].ok
        assert len(AloneReplayCache(tmp_path)) == 2  # one entry per app

    def test_empty_job_list(self):
        assert run_jobs([], n_jobs=4) == []

    def test_job_key(self):
        job = WorkloadJob(apps=("QR", SUITE["CT"]))
        assert job.key == "QR+CT"


@pytest.mark.slow
class TestProcessPool:
    def test_pool_failure_capture_and_order(self, tmp_path):
        jobs = [
            WorkloadJob(apps=("QR", "CT"), config=CFG,
                        shared_cycles=SMALL, models=(),
                        cache_dir=str(tmp_path)),
            WorkloadJob(apps=("QR", "NOPE"), config=CFG, shared_cycles=SMALL),
            WorkloadJob(apps=("NN", "VA"), config=CFG,
                        shared_cycles=SMALL, models=(),
                        cache_dir=str(tmp_path)),
        ]
        outcomes = run_jobs(jobs, n_jobs=2)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert outcomes[0].ok and outcomes[2].ok and not outcomes[1].ok
        assert "KeyError" in outcomes[1].error
        # workers shared the on-disk cache directory
        assert len(AloneReplayCache(tmp_path)) == 4
