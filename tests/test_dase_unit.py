"""Unit tests for the DASE estimator on synthetic interval records."""

import pytest

from repro.config import GPUConfig
from repro.core.classify import request_max
from repro.core.dase import DASE
from repro.sim.stats import AppMemCounters, AppSMCounters, IntervalRecord

CFG = GPUConfig()
CYCLES = 50_000
RMAX = request_max(CYCLES, CFG)


def record(
    app=0,
    requests=1000,
    ellc=0.0,
    erb=0,
    alpha=0.0,
    sm_count=8,
    demanded=None,
    executing=None,
    outstanding=None,
    time_request=None,
    tb_running=8,
    tb_unfinished=100_000,
) -> IntervalRecord:
    outstanding = CYCLES * 0.8 if outstanding is None else outstanding
    demanded = 10.0 * outstanding if demanded is None else demanded
    executing = 9.0 * outstanding if executing is None else executing
    time_request = 60 * requests if time_request is None else time_request
    mem = AppMemCounters(
        requests_served=requests,
        time_request=time_request,
        erb_miss=erb,
        demanded_bank_integral=demanded,
        executing_bank_integral=executing,
        outstanding_time=outstanding,
    )
    sm = AppSMCounters(
        instructions=10_000,
        busy_time=(1 - alpha) * CYCLES * sm_count,
        stall_time=alpha * CYCLES * sm_count,
        sm_time=CYCLES * sm_count,
    )
    return IntervalRecord(
        app=app, start=0, end=CYCLES, mem=mem, sm=sm, ellc_miss=ellc,
        sm_count=sm_count, sm_total=16, tb_running=tb_running,
        tb_unfinished=tb_unfinished,
    )


def estimate(records, **kw):
    model = DASE(CFG, **kw)
    return model.estimate_interval(records)


class TestNMBBPath:
    def test_no_interference_scales_by_sm_ratio(self):
        """A clean NMBB app on 8 of 16 SMs: slowdown ≈ 2 (Eq. 23)."""
        r = record(alpha=0.0, demanded=0, executing=0, erb=0, ellc=0)
        (est,) = estimate([r])
        assert est == pytest.approx(2.0)

    def test_interference_raises_estimate(self):
        quiet = record(alpha=0.0, demanded=0, executing=0)
        noisy = record(alpha=0.5, demanded=10 * CYCLES, executing=2 * CYCLES,
                       outstanding=CYCLES)
        (e_quiet,) = estimate([quiet])
        (e_noisy,) = estimate([noisy])
        assert e_noisy > e_quiet

    def test_row_buffer_term_contributes(self):
        base = record(alpha=0.4, demanded=0, executing=0)
        rb = record(alpha=0.4, demanded=0, executing=0, erb=3000)
        (e0,) = estimate([base])
        (e1,) = estimate([rb])
        assert e1 > e0

    def test_cache_term_contributes(self):
        base = record(alpha=0.4, demanded=0, executing=0)
        cc = record(alpha=0.4, demanded=0, executing=0, ellc=3000.0)
        (e0,) = estimate([base])
        (e1,) = estimate([cc])
        assert e1 > e0

    def test_interference_capped_by_stall_time(self):
        """Huge DRAM-side interference cannot exceed what the pipeline
        actually lost: t_int ≤ α·T."""
        r = record(alpha=0.2, demanded=50 * CYCLES, executing=1 * CYCLES,
                   outstanding=CYCLES, erb=10**6)
        (est,) = estimate([r])
        # ratio ≤ 1/(1-α) = 1.25; assigned sd ≤ 1.25 → all-SM ≤ 2.5
        assert est <= 2.5 + 1e-6

    def test_tb_supply_caps_scaling(self):
        """Eq. 24: an app already running its last blocks cannot speed up."""
        r = record(alpha=0.0, demanded=0, executing=0,
                   tb_running=8, tb_unfinished=8)
        (est,) = estimate([r])
        assert est == pytest.approx(1.0)

    def test_tb_supply_partial_cap(self):
        r = record(alpha=0.0, demanded=0, executing=0,
                   tb_running=8, tb_unfinished=12)
        (est,) = estimate([r])
        assert est == pytest.approx(1.5)

    def test_bw_cap_limits_scaling(self):
        """Eq. 25: an app near the bandwidth ceiling cannot scale 2×."""
        r = record(requests=int(RMAX * 0.62), alpha=0.0,
                   demanded=0, executing=0)
        (est,) = estimate([r])
        assert est == pytest.approx(1.0 / 0.62, rel=0.05)

    def test_scaling_disabled(self):
        r = record(alpha=0.0, demanded=0, executing=0)
        (est,) = estimate([r], scale_to_all_sms=False)
        assert est == pytest.approx(1.0)

    def test_alpha_clamp_uses_pure_ratio(self):
        cfg_clamp = GPUConfig(alpha_clamp=0.3)
        r = record(alpha=0.5, demanded=10 * CYCLES, executing=0,
                   outstanding=CYCLES, tb_unfinished=10**6)
        est_clamped = DASE(cfg_clamp).estimate_interval([r])[0]
        cfg_noclamp = GPUConfig(alpha_clamp=0.99)
        est_damped = DASE(cfg_noclamp).estimate_interval([r])[0]
        assert est_clamped > est_damped

    def test_estimates_floored_at_one(self):
        r = record(alpha=0.0, demanded=0, executing=0, sm_count=16)
        (est,) = estimate([r])
        assert est >= 1.0


class TestMBBPath:
    def mbb_record(self, requests, alpha=0.9, ellc=0.0, app=0, sm_count=8):
        return record(app=app, requests=requests, alpha=alpha, ellc=ellc,
                      sm_count=sm_count)

    def test_mbb_slowdown_is_request_ratio(self):
        """Eqs. 16-18: slowdown = Σ requests / own corrected requests."""
        a = self.mbb_record(int(RMAX * 0.7), app=0)
        b = record(app=1, requests=int(RMAX * 0.35), alpha=0.0)
        model = DASE(CFG)
        ests = model.estimate_interval([a, b])
        total = a.mem.requests_served + b.mem.requests_served
        assert ests[0] == pytest.approx(total / a.mem.requests_served)
        assert model.breakdowns[0][0].mbb is True

    def test_mbb_does_not_scale_with_sms(self):
        a = self.mbb_record(int(RMAX * 0.8), sm_count=4)
        b = record(app=1, requests=int(RMAX * 0.3), alpha=0.0, sm_count=12)
        ests = estimate([a, b])
        total = a.mem.requests_served + b.mem.requests_served
        # No ×4 factor despite having only 4 of 16 SMs.
        assert ests[0] == pytest.approx(total / a.mem.requests_served)

    def test_contention_misses_increase_mbb_slowdown(self):
        clean = self.mbb_record(int(RMAX * 0.7))
        dirty = self.mbb_record(int(RMAX * 0.7), ellc=RMAX * 0.1)
        b = record(app=1, requests=int(RMAX * 0.35), alpha=0.0)
        (e_clean, _) = estimate([clean, b])
        (e_dirty, _) = estimate([dirty, b])
        assert e_dirty > e_clean


class TestBookkeeping:
    def test_history_grows(self):
        model = DASE(CFG)
        r = record()
        model.estimate_interval([r])  # direct call does not append history
        model._on_interval([r])
        model._on_interval([r])
        assert len(model.history) == 2

    def test_mean_estimate_skips_warmup(self):
        model = DASE(CFG)
        model.history = [[10.0], [2.0], [4.0]]
        assert model.mean_estimate(0, warmup_intervals=1) == pytest.approx(3.0)

    def test_mean_estimate_falls_back_when_all_warmup(self):
        model = DASE(CFG)
        model.history = [[5.0]]
        assert model.mean_estimate(0, warmup_intervals=1) == 5.0

    def test_mean_estimate_none_when_empty(self):
        model = DASE(CFG)
        model.history = [[None], [None]]
        assert model.mean_estimate(0) is None

    def test_latest_reciprocals(self):
        model = DASE(CFG)
        model.history = [[2.0, 4.0]]
        assert model.latest_reciprocals() == [0.5, 0.25]

    def test_double_attach_rejected(self):
        from repro.sim.gpu import GPU
        from repro.sim.kernel import KernelSpec

        gpu = GPU(CFG, [KernelSpec("x", compute_per_mem=5)])
        model = DASE(CFG)
        model.attach(gpu)
        with pytest.raises(RuntimeError):
            model.attach(gpu)
