"""Tests for the text report renderers."""

from repro.harness.experiments import (
    AccuracyResult,
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig9Result,
    SensitivityResult,
)
from repro.harness.report import (
    pct,
    render_accuracy,
    render_distribution,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig9,
    render_sensitivity,
    table,
)


def test_table_alignment():
    out = table(["a", "bbbb"], [["xx", "y"], ["1", "22222"]])
    lines = out.splitlines()
    assert lines[0].startswith("a ")
    assert len(lines) == 4
    assert "-" in lines[1]


def test_pct():
    assert pct(0.123) == "12.3%"
    assert pct(1.0) == "100.0%"


def test_render_fig2():
    res = Fig2Result(
        combos=[("SD", "SB")],
        unfairness={"SD+SB": 2.5},
        slowdowns={"SD+SB": [3.4, 1.4]},
        breakdown={"SD+SB": {"SD": 0.1, "SB": 0.5, "wasted": 0.3, "idle": 0.1}},
        sd_alone_bw=0.4,
    )
    out = render_fig2(res)
    assert "SD+SB" in out and "2.50" in out and "40.0%" in out


def test_render_fig3():
    res = Fig3Result(points=[(10.0, 0.1), (20.0, 0.2)], correlation=0.999)
    out = render_fig3(res)
    assert "0.999" in out


def test_render_fig4():
    res = Fig4Result(alone_rate=420.0, shared_rates={"SA": (300.0, 139.0)})
    out = render_fig4(res)
    assert "SB+SA" in out and "439" in out and "420" in out


def test_render_accuracy():
    res = AccuracyResult(
        workloads=[("SD", "SB")],
        per_workload={"SD+SB": {"DASE": 0.05, "MISE": 0.4}},
        errors={"DASE": [0.05], "MISE": [0.4]},
    )
    out = render_accuracy(res, "title")
    assert "title" in out and "5.0%" in out and "MEAN" in out


def test_render_distribution():
    dists = {"DASE": {"<10%": 0.7, ">10%": 0.3}}
    out = render_distribution(dists)
    assert "70.0%" in out


def test_render_sensitivity():
    res = SensitivityResult(labels=["6+10"], dase_errors={"6+10": 0.08})
    out = render_sensitivity(res, "Fig 8a")
    assert "6+10" in out and "8.0%" in out


def test_render_fig9():
    res = Fig9Result(
        workloads=["SD+SB"],
        unfairness_even={"SD+SB": 2.5},
        unfairness_fair={"SD+SB": 1.5},
        hspeedup_even={"SD+SB": 0.5},
        hspeedup_fair={"SD+SB": 0.55},
    )
    out = render_fig9(res)
    assert "SD+SB" in out
    assert "40.0%" in out  # unfairness improvement
    assert res.mean_unfairness_improvement == 1 - 1.5 / 2.5
    assert res.mean_hspeedup_improvement == 0.55 / 0.5 - 1
