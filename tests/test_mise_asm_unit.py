"""Unit tests for the MISE and ASM baselines on synthetic inputs."""

import pytest

from repro.config import GPUConfig
from repro.core.asm import ASM
from repro.core.mise import MISE
from repro.core.sampling import PriorityRotator, RateAccumulators
from repro.sim.stats import AppMemCounters, AppSMCounters, IntervalRecord

CFG = GPUConfig()


def record(app=0, alpha=0.5, requests=1000, ellc=0.0, time_request=None):
    cycles = 50_000
    return IntervalRecord(
        app=app, start=0, end=cycles,
        mem=AppMemCounters(
            requests_served=requests,
            time_request=time_request if time_request is not None else 60 * requests,
        ),
        sm=AppSMCounters(
            busy_time=(1 - alpha) * cycles, stall_time=alpha * cycles,
            sm_time=cycles, instructions=1000,
        ),
        ellc_miss=ellc, sm_count=8, sm_total=16,
        tb_running=8, tb_unfinished=1000,
    )


def delta(n_apps=1, **kw):
    d = RateAccumulators.zeros(n_apps)
    for key, vals in kw.items():
        getattr(d, key)[: len(vals)] = list(vals)
    return d


class TestMISEUnit:
    def make(self):
        return MISE(CFG, PriorityRotator(CFG))

    def test_intensive_app_uses_raw_ratio(self):
        m = self.make()
        d = delta(
            prio_time=[1000.0], prio_requests=[400.0],
            shared_time=[1000.0], shared_requests=[200.0],
        )
        est = m._estimate_app(record(alpha=0.9), d)
        assert est == pytest.approx(2.0)

    def test_non_intensive_app_damped_by_alpha(self):
        m = self.make()
        d = delta(
            prio_time=[1000.0], prio_requests=[400.0],
            shared_time=[1000.0], shared_requests=[200.0],
        )
        est = m._estimate_app(record(alpha=0.1), d)
        assert est == pytest.approx(1 - 0.1 + 0.1 * 2.0)

    def test_ratio_floored_at_one(self):
        m = self.make()
        d = delta(
            prio_time=[1000.0], prio_requests=[100.0],
            shared_time=[1000.0], shared_requests=[300.0],
        )
        est = m._estimate_app(record(alpha=0.9), d)
        assert est == 1.0

    def test_no_prio_samples_gives_none(self):
        m = self.make()
        d = delta(prio_time=[0.0], shared_time=[1000.0], shared_requests=[10.0])
        assert m._estimate_app(record(), d) is None

    def test_no_traffic_means_no_interference(self):
        m = self.make()
        d = delta(prio_time=[1000.0], shared_time=[1000.0])
        assert m._estimate_app(record(), d) == 1.0

    def test_intensity_threshold_configurable(self):
        m = MISE(CFG, PriorityRotator(CFG), intensive_alpha=0.95)
        d = delta(
            prio_time=[1000.0], prio_requests=[400.0],
            shared_time=[1000.0], shared_requests=[200.0],
        )
        est = m._estimate_app(record(alpha=0.9), d)
        # 0.9 < 0.95 → damped path.
        assert est == pytest.approx(1 - 0.9 + 0.9 * 2.0)


class TestASMUnit:
    def make(self):
        return ASM(CFG, PriorityRotator(CFG))

    def test_car_ratio(self):
        a = self.make()
        d = delta(
            prio_time=[1000.0], prio_accesses=[500.0],
            shared_time=[1000.0], shared_accesses=[250.0],
        )
        est = a._estimate_app(record(ellc=0.0), d)
        assert est == pytest.approx(2.0)

    def test_contention_correction_raises_estimate(self):
        a = self.make()
        d = delta(
            prio_time=[1000.0], prio_accesses=[500.0],
            shared_time=[1000.0], shared_accesses=[250.0],
        )
        clean = a._estimate_app(record(ellc=0.0), d)
        dirty = a._estimate_app(record(ellc=2000.0), d)
        assert dirty > clean

    def test_correction_capped(self):
        a = self.make()
        d = delta(
            prio_time=[1000.0], prio_accesses=[500.0],
            shared_time=[1000.0], shared_accesses=[250.0],
        )
        est = a._estimate_app(record(ellc=10**9), d)
        # wasted capped at half the priority time → at most 2× the raw CAR.
        assert est <= 4.0 + 1e-9

    def test_floor_at_one(self):
        a = self.make()
        d = delta(
            prio_time=[1000.0], prio_accesses=[100.0],
            shared_time=[1000.0], shared_accesses=[400.0],
        )
        assert a._estimate_app(record(), d) == 1.0

    def test_missing_epochs_give_none(self):
        a = self.make()
        d = delta(shared_time=[1000.0], shared_accesses=[10.0])
        assert a._estimate_app(record(), d) is None


class TestNeitherScalesToAllSMs:
    """The paper's core criticism: CPU models ignore the SM dimension."""

    def test_mise_blind_to_sm_count(self):
        m = MISE(CFG, PriorityRotator(CFG))
        d = delta(
            prio_time=[1000.0], prio_requests=[200.0],
            shared_time=[1000.0], shared_requests=[200.0],
        )
        r_small = record(alpha=0.9)
        r_small = IntervalRecord(**{**vars(r_small), "sm_count": 2})
        r_large = record(alpha=0.9)
        assert m._estimate_app(r_small, d) == m._estimate_app(r_large, d)

    def test_asm_blind_to_sm_count(self):
        a = ASM(CFG, PriorityRotator(CFG))
        d = delta(
            prio_time=[1000.0], prio_accesses=[200.0],
            shared_time=[1000.0], shared_accesses=[200.0],
        )
        r_small = record()
        r_small = IntervalRecord(**{**vars(r_small), "sm_count": 2})
        assert a._estimate_app(r_small, d) == a._estimate_app(record(), d)
