"""The determinism contract behind parallel + cached execution.

Identical ``(workload, config, seed)`` inputs must produce identical
:class:`WorkloadResult` objects whether the run happens inline, in a
worker process, or is reconstructed through the on-disk caches.  Without
this, a warm-cache or pooled sweep could silently diverge from the serial
seed path.
"""

import dataclasses

import pytest

from repro.harness import (
    AloneReplayCache,
    WorkloadJob,
    run_jobs,
    run_workload,
    scaled_config,
)
from repro.harness.persist import atomic_write_json, load_json
from repro.harness.runner import WorkloadResult

CFG = scaled_config()
CYCLES = 40_000
APPS = ("QR", "CT")
MODELS = ("DASE", "MISE", "ASM")


def assert_results_identical(a: WorkloadResult, b: WorkloadResult) -> None:
    """Field-by-field exact equality (no tolerances: the sim is bit-exact)."""
    for f in dataclasses.fields(WorkloadResult):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        assert va == vb, f"field {f.name!r} differs: {va!r} != {vb!r}"


@pytest.fixture(scope="module")
def inline_result():
    return run_workload(APPS, config=CFG, shared_cycles=CYCLES, models=MODELS)


@pytest.mark.slow
class TestDeterminism:
    def test_inline_rerun_identical(self, inline_result):
        again = run_workload(APPS, config=CFG, shared_cycles=CYCLES,
                             models=MODELS)
        assert_results_identical(inline_result, again)

    def test_process_pool_identical(self, inline_result):
        job = WorkloadJob(apps=APPS, config=CFG, shared_cycles=CYCLES,
                          models=MODELS)
        outcomes = run_jobs([job, job], n_jobs=2)
        for outcome in outcomes:
            assert_results_identical(inline_result, outcome.unwrap())

    def test_alone_cache_roundtrip_identical(self, inline_result, tmp_path):
        cold_cache = AloneReplayCache(tmp_path)
        cold = run_workload(APPS, config=CFG, shared_cycles=CYCLES,
                            models=MODELS, alone_cache=cold_cache)
        assert cold_cache.stores == len(APPS)
        assert_results_identical(inline_result, cold)

        warm_cache = AloneReplayCache(tmp_path)
        warm = run_workload(APPS, config=CFG, shared_cycles=CYCLES,
                            models=MODELS, alone_cache=warm_cache)
        assert warm_cache.hits == len(APPS)  # replays came from disk
        assert warm_cache.stores == 0
        assert_results_identical(inline_result, warm)

    def test_serialization_roundtrip_identical(self, inline_result, tmp_path):
        path = atomic_write_json(tmp_path / "result.json",
                                 inline_result.to_dict())
        restored = WorkloadResult.from_dict(load_json(path))
        assert_results_identical(inline_result, restored)

    def test_pool_and_cache_compose(self, inline_result, tmp_path):
        """Pooled run on a warm cache still equals the inline seed run."""
        seed_cache = AloneReplayCache(tmp_path)
        run_workload(APPS, config=CFG, shared_cycles=CYCLES, models=MODELS,
                     alone_cache=seed_cache)
        job = WorkloadJob(apps=APPS, config=CFG, shared_cycles=CYCLES,
                          models=MODELS, cache_dir=str(tmp_path))
        (outcome,) = run_jobs([job], n_jobs=2)
        assert_results_identical(inline_result, outcome.unwrap())
