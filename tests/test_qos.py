"""Tests for the DASE-QoS policy extension."""

import pytest

from repro.config import GPUConfig
from repro.core.dase import DASE
from repro.policies import DASEQoSPolicy
from repro.sim.gpu import GPU
from repro.sim.kernel import KernelSpec


def make_gpu(n_sms=8, interval=4_000):
    cfg = GPUConfig(n_sms=n_sms, interval_cycles=interval)
    specs = [
        KernelSpec("t", compute_per_mem=10, warps_per_block=4, insts_per_warp=200),
        KernelSpec("o", compute_per_mem=10, warps_per_block=4, insts_per_warp=200),
    ]
    return cfg, GPU(cfg, specs)


class TestConstruction:
    def test_bad_bound_rejected(self):
        cfg, _ = make_gpu()
        with pytest.raises(ValueError):
            DASEQoSPolicy(cfg, target_app=0, max_slowdown=0.5)

    def test_bad_margin_rejected(self):
        cfg, _ = make_gpu()
        with pytest.raises(ValueError):
            DASEQoSPolicy(cfg, 0, 2.0, release_margin=1.5)

    def test_target_out_of_range(self):
        cfg, gpu = make_gpu()
        pol = DASEQoSPolicy(cfg, target_app=5, max_slowdown=2.0)
        with pytest.raises(ValueError):
            pol.attach(gpu)


class TestControlLoop:
    def test_violation_acquires_sm(self):
        cfg, gpu = make_gpu()
        est = DASE(cfg)
        pol = DASEQoSPolicy(cfg, target_app=0, max_slowdown=1.5, estimator=est)
        pol.attach(gpu)
        est.history = [[3.0, 1.2]]  # target way over bound
        pol.on_interval([])
        assert pol.actions and pol.actions[0][1] == "acquire"
        gpu.run(60_000)
        # Another interval may trigger more moves; target never shrinks
        # below the even share while violating.
        assert gpu.sm_counts()[0] >= 4

    def test_within_bound_no_action(self):
        cfg, gpu = make_gpu()
        est = DASE(cfg)
        pol = DASEQoSPolicy(cfg, 0, max_slowdown=3.0, estimator=est)
        pol.attach(gpu)
        est.history = [[2.9, 2.9]]  # inside bound, inside margin band
        pol.on_interval([])
        assert pol.actions == []

    def test_release_when_comfortable_and_above_even_share(self):
        # Huge interval: no live estimates interfere with the forced ones.
        cfg, gpu = make_gpu(interval=1_000_000)
        est = DASE(cfg)
        pol = DASEQoSPolicy(cfg, 0, max_slowdown=4.0, estimator=est)
        pol.attach(gpu)
        gpu.run(100)
        # Manually skew ownership toward the target first.
        gpu.migrate_sms(1, 0, 2)
        gpu.run(60_000)
        assert gpu.sm_counts() == [6, 2]
        est.history = [[1.2, 3.0]]  # target comfortably inside bound
        pol.on_interval([])
        assert ("release", 0, 1) == pol.actions[-1][1:]

    def test_never_drains_donors_last_sm(self):
        cfg, gpu = make_gpu(n_sms=2)
        est = DASE(cfg)
        pol = DASEQoSPolicy(cfg, 0, max_slowdown=1.1, estimator=est)
        pol.attach(gpu)
        est.history = [[5.0, 1.0]]
        pol.on_interval([])
        gpu.run(60_000)
        assert gpu.sm_counts()[1] >= 1

    def test_violations_counter(self):
        cfg, gpu = make_gpu()
        est = DASE(cfg)
        pol = DASEQoSPolicy(cfg, 0, max_slowdown=2.0, estimator=est)
        pol.attach(gpu)
        est.history = [[2.5, 1.0], [1.5, 1.0], [None, 1.0], [2.1, 1.0]]
        assert pol.violations() == 2
