"""Integration tests for the top-level GPU."""

import pytest

from repro.config import GPUConfig
from repro.sim.gpu import GPU, LaunchedKernel
from repro.sim.kernel import AccessPattern, KernelSpec


def cfg(**over):
    over.setdefault("interval_cycles", 5_000)
    return GPUConfig(**over)


def spec(name="k", **over):
    over.setdefault("compute_per_mem", 10)
    over.setdefault("warps_per_block", 4)
    return KernelSpec(name, **over)


class TestConstruction:
    def test_default_even_partition(self):
        gpu = GPU(cfg(), [spec("a"), spec("b")])
        assert gpu.sm_counts() == [8, 8]

    def test_uneven_default_partition(self):
        gpu = GPU(cfg(), [spec("a"), spec("b"), spec("c")])
        assert gpu.sm_counts() == [6, 5, 5]

    def test_explicit_partition(self):
        gpu = GPU(cfg(), [spec("a"), spec("b")], sm_partition=[4, 12])
        assert gpu.sm_counts() == [4, 12]

    def test_first_app_gets_first_sms(self):
        gpu = GPU(cfg(), [spec("a"), spec("b")], sm_partition=[3, 13])
        assert [sm.app for sm in gpu.sms[:3]] == [0, 0, 0]
        assert all(sm.app == 1 for sm in gpu.sms[3:])

    def test_partition_must_cover_each_app(self):
        with pytest.raises(ValueError):
            GPU(cfg(), [spec("a"), spec("b")], sm_partition=[0, 16])

    def test_partition_cannot_exceed_sms(self):
        with pytest.raises(ValueError):
            GPU(cfg(), [spec("a"), spec("b")], sm_partition=[10, 10])

    def test_partition_length_mismatch(self):
        with pytest.raises(ValueError):
            GPU(cfg(), [spec("a")], sm_partition=[8, 8])

    def test_no_kernels_rejected(self):
        with pytest.raises(ValueError):
            GPU(cfg(), [])


class TestExecution:
    def test_run_advances_clock(self):
        gpu = GPU(cfg(), [spec()])
        assert gpu.run(10_000) == 10_000

    def test_incremental_runs_accumulate(self):
        gpu = GPU(cfg(), [spec()])
        gpu.run(5_000)
        gpu.run(5_000)
        assert gpu.engine.now == 10_000

    def test_instructions_flow(self):
        gpu = GPU(cfg(), [spec()])
        gpu.run(10_000)
        assert gpu.progress[0].instructions > 1000

    def test_run_until_instructions(self):
        gpu = GPU(cfg(), [spec()])
        end = gpu.run_until_instructions(0, 5_000)
        assert gpu.progress[0].instructions >= 5_000
        # Overshoot bounded by one warp burst.
        assert gpu.progress[0].instructions < 5_000 + 200
        assert end == gpu.engine.now

    def test_run_until_instructions_timeout(self):
        gpu = GPU(cfg(), [spec()])
        with pytest.raises(RuntimeError):
            gpu.run_until_instructions(0, 10**12, max_cycles=1_000)

    def test_non_restarting_kernel_finishes(self):
        k = LaunchedKernel(
            spec(blocks_total=2, insts_per_warp=50), restart=False
        )
        gpu = GPU(cfg(n_sms=1), [k])
        gpu.run(200_000)
        assert gpu.progress[0].blocks_finished == 2
        assert gpu.progress[0].instructions == 2 * 4 * 50

    def test_restarting_kernel_never_runs_dry(self):
        k = LaunchedKernel(spec(blocks_total=2, insts_per_warp=50), restart=True)
        gpu = GPU(cfg(n_sms=1), [k])
        gpu.run(50_000)
        assert gpu.progress[0].restarts > 0
        assert gpu.progress[0].instructions > 2 * 4 * 50


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        results = []
        for _ in range(2):
            gpu = GPU(cfg(), [spec("a"), spec("b", pattern=AccessPattern.RANDOM)])
            gpu.run(15_000)
            results.append(
                (
                    tuple(p.instructions for p in gpu.progress),
                    tuple(a.requests_served for a in gpu.mem_stats.apps),
                )
            )
        assert results[0] == results[1]

    def test_different_seed_differs(self):
        outs = []
        for seed in (1, 2):
            gpu = GPU(cfg(seed=seed), [spec(pattern=AccessPattern.RANDOM)])
            gpu.run(15_000)
            outs.append(gpu.progress[0].instructions)
        assert outs[0] != outs[1]

    def test_stream_id_reproduces_shared_streams(self):
        """An alone replay with stream_id=1 sees app 1's exact streams."""
        shared = GPU(cfg(), [spec("a"), spec("b")])
        shared.run(10_000)
        alone = GPU(cfg(), [LaunchedKernel(spec("b"), stream_id=1)])
        alone.run(10_000)
        # Same address space slice: partition traffic shape matches.
        assert alone.mem_stats.apps[0].requests_served > 0


class TestIntervals:
    def test_interval_records_emitted(self):
        gpu = GPU(cfg(interval_cycles=2_000), [spec("a"), spec("b")])
        gpu.run(10_000)
        assert len(gpu.interval_history) == 5
        assert all(len(row) == 2 for row in gpu.interval_history)

    def test_interval_deltas_sum_to_totals(self):
        gpu = GPU(cfg(interval_cycles=2_000), [spec()])
        gpu.run(10_000)
        total = sum(r[0].mem.requests_served for r in gpu.interval_history)
        assert total == gpu.mem_stats.apps[0].requests_served

    def test_interval_listener_called(self):
        gpu = GPU(cfg(interval_cycles=2_000), [spec()])
        seen = []
        gpu.add_interval_listener(lambda recs: seen.append(recs[0].end))
        gpu.run(6_000)
        assert seen == [2_000, 4_000, 6_000]

    def test_record_sm_counts(self):
        gpu = GPU(cfg(interval_cycles=2_000), [spec("a"), spec("b")],
                  sm_partition=[4, 12])
        gpu.run(2_000)
        rec_a, rec_b = gpu.interval_history[0]
        assert rec_a.sm_count == 4
        assert rec_b.sm_count == 12
        assert rec_a.sm_total == 16

    def test_alpha_in_unit_interval(self):
        gpu = GPU(cfg(interval_cycles=2_000), [spec()])
        gpu.run(10_000)
        for row in gpu.interval_history:
            assert 0.0 <= row[0].sm.alpha <= 1.0


class TestBandwidthAccounting:
    def test_utilization_bounded(self):
        gpu = GPU(cfg(), [spec(compute_per_mem=2)])
        gpu.run(20_000)
        assert 0.0 < gpu.bandwidth_utilization() <= 1.0

    def test_per_app_utilization_sums_to_total(self):
        gpu = GPU(cfg(), [spec("a"), spec("b")])
        gpu.run(20_000)
        total = gpu.bandwidth_utilization()
        per = gpu.bandwidth_utilization(0) + gpu.bandwidth_utilization(1)
        assert per == pytest.approx(total)

    def test_breakdown_sums_to_one(self):
        gpu = GPU(cfg(), [spec("a"), spec("b", compute_per_mem=3)])
        gpu.run(20_000)
        b = gpu.bandwidth_breakdown()
        assert sum(b.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(v >= 0 for v in b.values())

    def test_idle_gpu_breakdown(self):
        gpu = GPU(cfg(), [spec(compute_per_mem=3000, insts_per_warp=3001)])
        b = gpu.bandwidth_breakdown()
        assert b["idle"] == 1.0


class TestMemoryConservation:
    def test_l2_misses_conserved_as_dram_requests(self):
        """At any instant, L2 misses = served requests + in-flight ones."""
        gpu = GPU(cfg(), [spec("a"), spec("b", pattern=AccessPattern.RANDOM)])
        gpu.run(20_000)
        for app in range(2):
            m = gpu.mem_stats.apps[app]
            in_flight = gpu.mem_stats.outstanding(app)
            assert m.l2_misses == m.requests_served + in_flight
            assert in_flight >= 0

    def test_outstanding_bounded_by_warp_count(self):
        """Each warp has at most one memory instruction in flight."""
        gpu = GPU(cfg(), [spec()])
        gpu.run(20_000)
        max_warps = gpu.config.n_sms * gpu.config.max_warps_per_sm
        assert 0 <= gpu.mem_stats.outstanding(0) <= max_warps
