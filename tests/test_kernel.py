"""Unit tests for kernel specs and warp address streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import (
    APP_SPACE_LINES,
    AccessPattern,
    KernelProgress,
    KernelSpec,
    WarpStream,
)

LINE = 128


def stream(spec, app=0, block=0, warp=0, seed=1):
    return WarpStream(spec, app, block, warp, seed, LINE)


class TestKernelSpecValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("x", compute_per_mem=-1)

    def test_bad_reuse_fraction_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("x", compute_per_mem=1, reuse_fraction=1.5)

    def test_zero_warps_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("x", compute_per_mem=1, warps_per_block=0)

    def test_tiny_inst_budget_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("x", compute_per_mem=1, insts_per_warp=1)

    def test_mem_fraction(self):
        assert KernelSpec("x", compute_per_mem=3).mem_fraction == 0.25


class TestWarpStream:
    def test_deterministic_replay(self):
        spec = KernelSpec("x", compute_per_mem=10, pattern=AccessPattern.RANDOM)
        a, b = stream(spec), stream(spec)
        for _ in range(50):
            assert a.next_compute_burst() == b.next_compute_burst()
            assert a.next_mem_addresses() == b.next_mem_addresses()

    def test_different_warps_differ(self):
        spec = KernelSpec("x", compute_per_mem=10, pattern=AccessPattern.RANDOM)
        a, b = stream(spec, warp=0), stream(spec, warp=1)
        seq_a = [tuple(a.next_mem_addresses()) for _ in (a.next_compute_burst(),) * 5]
        seq_b = [tuple(b.next_mem_addresses()) for _ in (b.next_compute_burst(),) * 5]
        assert seq_a != seq_b

    def test_instruction_budget_exhausted(self):
        spec = KernelSpec("x", compute_per_mem=4, insts_per_warp=100)
        s = stream(spec)
        total = 0
        while not s.done:
            burst = s.next_compute_burst()
            addrs = s.next_mem_addresses()
            total += burst + 1
            assert len(addrs) == 1
        assert total == 100

    def test_always_ends_with_memory_instruction(self):
        spec = KernelSpec("x", compute_per_mem=7, insts_per_warp=50)
        s = stream(spec)
        while not s.done:
            s.next_compute_burst()
            assert s.remaining_insts >= 1  # burst reserved the mem inst
            s.next_mem_addresses()
        assert s.remaining_insts == 0

    def test_zero_compute_kernel(self):
        spec = KernelSpec("x", compute_per_mem=0, insts_per_warp=10)
        s = stream(spec)
        assert s.next_compute_burst() == 0

    def test_streaming_addresses_are_sequential_lines(self):
        spec = KernelSpec(
            "x", compute_per_mem=1, pattern=AccessPattern.STREAM, burst_jitter=0
        )
        s = stream(spec)
        lines = []
        for _ in range(10):
            s.next_compute_burst()
            lines.append(s.next_mem_addresses()[0] // LINE)
        assert lines == list(range(lines[0], lines[0] + 10))

    def test_strided_addresses(self):
        spec = KernelSpec(
            "x", compute_per_mem=1, pattern=AccessPattern.STRIDED, stride_lines=5
        )
        s = stream(spec)
        lines = []
        for _ in range(5):
            s.next_compute_burst()
            lines.append(s.next_mem_addresses()[0] // LINE)
        assert [b - a for a, b in zip(lines, lines[1:])] == [5] * 4

    def test_random_addresses_stay_in_working_set(self):
        spec = KernelSpec(
            "x", compute_per_mem=1, pattern=AccessPattern.RANDOM,
            working_set_lines=64, hot_set_lines=16,
        )
        s = stream(spec, app=2)
        base = 2 * APP_SPACE_LINES
        for _ in range(100):
            s.next_compute_burst()
            line = s.next_mem_addresses()[0] // LINE
            assert base <= line < base + 16 + 64 + 100_000

    def test_reuse_hits_hot_set(self):
        spec = KernelSpec(
            "x", compute_per_mem=1, pattern=AccessPattern.STREAM,
            reuse_fraction=1.0, hot_set_lines=8,
        )
        s = stream(spec, app=1)
        base = APP_SPACE_LINES
        for _ in range(50):
            s.next_compute_burst()
            line = s.next_mem_addresses()[0] // LINE
            assert base <= line < base + 8

    def test_apps_have_disjoint_address_spaces(self):
        spec = KernelSpec("x", compute_per_mem=1, pattern=AccessPattern.RANDOM)
        s0, s1 = stream(spec, app=0), stream(spec, app=1)
        for _ in range(20):
            s0.next_compute_burst()
            s1.next_compute_burst()
            a0 = s0.next_mem_addresses()[0] // LINE
            a1 = s1.next_mem_addresses()[0] // LINE
            assert a0 < APP_SPACE_LINES <= a1 < 2 * APP_SPACE_LINES

    def test_uncoalesced_generates_multiple_addresses(self):
        spec = KernelSpec("x", compute_per_mem=1, accesses_per_mem_inst=4)
        s = stream(spec)
        s.next_compute_burst()
        assert len(s.next_mem_addresses()) == 4

    @given(st.integers(min_value=0, max_value=60), st.integers(2, 500))
    @settings(max_examples=30, deadline=None)
    def test_property_burst_respects_budget(self, cpm, budget):
        spec = KernelSpec("x", compute_per_mem=cpm, insts_per_warp=budget)
        s = stream(spec)
        issued = 0
        while not s.done:
            b = s.next_compute_burst()
            assert b >= 0
            s.next_mem_addresses()
            issued += b + 1
        assert issued == budget


class TestKernelProgress:
    def test_sequential_dispatch(self):
        prog = KernelProgress(KernelSpec("x", compute_per_mem=1, blocks_total=3))
        assert [prog.next_block_id() for _ in range(3)] == [0, 1, 2]
        assert prog.blocks_remaining == 0

    def test_restart_after_exhaustion(self):
        prog = KernelProgress(KernelSpec("x", compute_per_mem=1, blocks_total=2))
        ids = [prog.next_block_id() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]  # globally unique across restarts
        assert prog.restarts == 2

    def test_blocks_remaining_within_grid(self):
        prog = KernelProgress(KernelSpec("x", compute_per_mem=1, blocks_total=4))
        prog.next_block_id()
        assert prog.blocks_remaining == 3
