"""Unit tests for the model/decision audit layer (repro.obs.audit)."""

import json

import pytest

from repro.harness import run_workload, scaled_config
from repro.obs import Observation
from repro.obs.audit import (
    AUDIT_SCHEMA,
    AuditLog,
    DecisionAudit,
    ModelAudit,
    export_audit_json,
)
from repro.obs.tracer import PID_SIM, EventTracer
from repro.policies import DASEFairPolicy
from repro.policies.sm_alloc import best_partition, interpolation_table


def _model(model="DASE", app=0, interval=0, cycle=12_000, est=2.0, **kw):
    return ModelAudit(
        model=model, app=app, interval=interval, cycle=cycle,
        estimate=est, reciprocal=None if est is None else 1.0 / est, **kw,
    )


def _decision(action="hold", reason="already-optimal", **kw):
    return DecisionAudit(
        policy="dase-fair", interval=0, cycle=12_000, current=(8, 8),
        action=action, reason=reason, **kw,
    )


# ----------------------------------------------------------------- AuditLog


def test_record_and_series():
    log = AuditLog()
    log.record_model(_model(interval=0, cycle=12_000, est=2.0))
    log.record_model(_model(interval=1, cycle=24_000, est=3.0))
    log.record_model(_model(model="MISE", est=1.5))
    log.record_model(_model(app=1, est=None, skip_reason="degenerate"))
    assert log.models() == ["DASE", "MISE"]
    assert log.series("DASE", 0) == [(12_000, 2.0), (24_000, 3.0)]
    assert log.series("DASE", 1) == [(12_000, None)]
    # error_series vs actual=2.0: |2-2|/2=0, |3-2|/2=0.5; None skipped.
    assert log.error_series("DASE", 0, 2.0) == [(12_000, 0.0), (24_000, 0.5)]
    assert log.error_series("DASE", 1, 2.0) == []
    assert log.error_series("DASE", 0, 0.0) == []


def test_migrations_filter_and_summary():
    log = AuditLog()
    log.record_decision(_decision("hold", "migration-draining"))
    log.record_decision(_decision(
        "migrate", "improvement", target=(11, 5),
        plan=[(1, 0, 3)],
    ))
    log.record_decision(_decision("recommend", "improvement", target=(11, 5)))
    assert [d.action for d in log.migrations()] == ["migrate", "recommend"]
    s = log.summary()
    assert s["decision_records"] == 3
    assert s["decision_actions"] == {"hold": 1, "migrate": 1, "recommend": 1}
    assert s["decision_reasons"] == {"improvement": 2, "migration-draining": 1}


def test_tracer_mirroring():
    tracer = EventTracer(capacity=64)
    log = AuditLog(tracer=tracer)
    log.record_model(_model(est=2.5))
    log.record_model(_model(app=1, est=None, skip_reason="degenerate"))
    log.record_decision(_decision(
        "migrate", "improvement", target=(11, 5),
        current_unfairness=1.4, predicted_unfairness=1.1,
    ))
    counts = tracer.counts_by_name()
    assert counts == {"audit.model": 2, "policy.decision": 1}
    # Event tuples: (ts, ph, name, pid, tid, dur, args).  Model instants
    # land on the app's pid; decisions on the sim track.
    events = tracer.events()
    assert events[0][3] == 0 and events[0][6]["est"] == 2.5
    assert events[1][6]["skip"] == "degenerate"
    dec = events[2]
    assert dec[3] == PID_SIM
    assert dec[6]["target"] == "11+5"
    assert dec[6]["current"] == "8+8"


def test_to_dict_and_export_roundtrip(tmp_path):
    log = AuditLog()
    log.record_model(_model(inputs={"alpha": 0.5}, terms={"mbb": 1.0}))
    log.record_decision(_decision(
        "migrate", "improvement", reciprocals=[0.5, 0.9], target=(11, 5),
        current_unfairness=1.4, predicted_unfairness=1.1,
        interpolation=[[0.1] * 16, [0.2] * 16],
        candidates=[((8, 8), 1.4), ((11, 5), 1.1)],
        plan=[(1, 0, 3)],
    ))
    payload = export_audit_json(log, tmp_path / "audit.json")
    on_disk = json.loads((tmp_path / "audit.json").read_text())
    assert on_disk == json.loads(json.dumps(payload))
    assert on_disk["schema"] == AUDIT_SCHEMA
    assert on_disk["models"][0]["inputs"] == {"alpha": 0.5}
    dec = on_disk["decisions"][0]
    assert dec["target"] == [11, 5]
    assert dec["candidates"][1] == {"partition": [11, 5], "unfairness": 1.1}
    assert dec["plan"] == [[1, 0, 3]]


def test_csv_exports():
    log = AuditLog()
    log.record_model(_model(est=None, skip_reason="degenerate-interval"))
    log.record_model(_model(est=2.0, inputs={"alpha": 0.25}))
    log.record_decision(_decision(
        "migrate", "improvement", target=(11, 5),
        candidates=[((8, 8), 1.4)], plan=[(1, 0, 3)],
    ))
    lines = log.model_audits_csv().strip().splitlines()
    assert lines[0].startswith("model,interval,cycle,app,estimate")
    assert "degenerate-interval" in lines[1]
    assert '""alpha"": 0.25' in lines[2]
    dlines = log.decision_audits_csv().strip().splitlines()
    assert len(dlines) == 2
    assert "8+8" in dlines[1] and "11+5" in dlines[1]


def test_observation_audit_wiring():
    # audit=True builds a log linked to the bundle's tracer.
    obs = Observation(audit=True)
    assert isinstance(obs.audit, AuditLog)
    assert obs.audit.tracer is obs.tracer
    # A detached AuditLog gets linked on construction.
    log = AuditLog()
    obs2 = Observation(audit=log)
    assert obs2.audit is log and log.tracer is obs2.tracer
    # Default: auditing off.
    assert Observation().audit is None


# ------------------------------------------------- policy search observables


def test_best_partition_scores_out_lists_every_candidate():
    scores = []
    target, unf = best_partition([0.5, 0.9], (8, 8), 16, scores_out=scores)
    assert len(scores) == 15  # compositions of 16 into 2 parts, each ≥ 1
    assert (target, unf) in scores
    assert unf == min(u for _, u in scores)
    # The chosen target is the *first* minimum in search order, so the
    # recorded list replays the tie-break exactly.
    firsts = [c for c, u in scores if u == unf]
    assert firsts[0] == target
    # scores_out=None (the untraced path) returns the same result.
    assert best_partition([0.5, 0.9], (8, 8), 16) == (target, unf)


def test_interpolation_table_matches_eq_29_30():
    table = interpolation_table([0.5, 0.9], (8, 8), 16)
    assert len(table) == 2 and all(len(row) == 16 for row in table)
    # Eq. 30 at fewer SMs: linear toward 0; Eq. 29 at all SMs: exactly 1.
    assert table[0][3] == pytest.approx(0.5 * 4 / 8)
    assert table[0][7] == pytest.approx(0.5)
    assert table[0][15] == pytest.approx(1.0)
    # Monotone non-decreasing in the SM count.
    for row in table:
        assert all(a <= b + 1e-12 for a, b in zip(row, row[1:]))


# ------------------------------------------------------------ end-to-end run


@pytest.mark.slow
def test_audited_run_records_all_layers():
    cfg = scaled_config()
    obs = Observation(audit=True)
    res = run_workload(
        ["SD", "SB"], config=cfg, shared_cycles=24_000,
        models=("DASE", "MISE", "ASM"),
        policy=DASEFairPolicy(cfg, dry_run=True), trace=obs,
    )
    audit = obs.audit
    n_intervals = 24_000 // cfg.interval_cycles
    assert len(audit.model_audits) == 3 * 2 * n_intervals
    assert len(audit.decision_audits) == n_intervals

    dase = [a for a in audit.model_audits if a.model == "DASE"]
    for a in dase:
        if a.estimate is None:
            assert a.skip_reason
            continue
        # The DASE story carries the paper's inputs and intermediates.
        for key in ("alpha", "blp", "erb_miss", "ellc_miss"):
            assert key in a.inputs
        for key in ("mbb", "time_interference", "slowdown_all"):
            assert key in a.terms
        assert a.reciprocal == pytest.approx(1.0 / max(a.estimate, 1.0))

    for d in audit.decision_audits:
        assert d.action in ("hold", "recommend")  # dry_run never migrates
        assert sum(d.current) == cfg.n_sms
        if d.candidates:
            # min() returns the first minimum in iteration order, which is
            # exactly the search-order tie-break best_partition applies.
            assert d.target == min(d.candidates, key=lambda cu: cu[1])[0]
            assert d.predicted_unfairness == min(u for _, u in d.candidates)
    # Shadow scheduling + auditing never touches the result.
    assert res.final_sm_partition == res.sm_partition

    # finalize_run published the audit gauges.
    snap = obs.registry.snapshot()
    assert snap["run/audit/model_records"]["value"] == len(audit.model_audits)
    assert snap["run/audit/decision_records"]["value"] == len(
        audit.decision_audits
    )


@pytest.mark.slow
def test_shared_dase_produces_single_audit_stream():
    """The runner hands its DASE to the policy, so an audited run carries
    one DASE record per app per interval — not two."""
    cfg = scaled_config()
    obs = Observation(audit=True)
    run_workload(
        ["SD", "SB"], config=cfg, shared_cycles=24_000, models=("DASE",),
        policy=DASEFairPolicy(cfg, dry_run=True), trace=obs,
    )
    n_intervals = 24_000 // cfg.interval_cycles
    dase = [a for a in obs.audit.model_audits if a.model == "DASE"]
    assert len(dase) == 2 * n_intervals
